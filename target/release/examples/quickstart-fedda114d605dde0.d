/root/repo/target/release/examples/quickstart-fedda114d605dde0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-fedda114d605dde0: examples/quickstart.rs

examples/quickstart.rs:
