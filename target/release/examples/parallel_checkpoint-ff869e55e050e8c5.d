/root/repo/target/release/examples/parallel_checkpoint-ff869e55e050e8c5.d: examples/parallel_checkpoint.rs

/root/repo/target/release/examples/parallel_checkpoint-ff869e55e050e8c5: examples/parallel_checkpoint.rs

examples/parallel_checkpoint.rs:
