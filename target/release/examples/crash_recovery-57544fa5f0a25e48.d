/root/repo/target/release/examples/crash_recovery-57544fa5f0a25e48.d: examples/crash_recovery.rs

/root/repo/target/release/examples/crash_recovery-57544fa5f0a25e48: examples/crash_recovery.rs

examples/crash_recovery.rs:
