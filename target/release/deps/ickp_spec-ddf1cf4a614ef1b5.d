/root/repo/target/release/deps/ickp_spec-ddf1cf4a614ef1b5.d: crates/spec/src/lib.rs crates/spec/src/bta.rs crates/spec/src/compile.rs crates/spec/src/driver.rs crates/spec/src/error.rs crates/spec/src/infer.rs crates/spec/src/opt.rs crates/spec/src/phase.rs crates/spec/src/plan.rs crates/spec/src/residual.rs crates/spec/src/shape.rs

/root/repo/target/release/deps/libickp_spec-ddf1cf4a614ef1b5.rlib: crates/spec/src/lib.rs crates/spec/src/bta.rs crates/spec/src/compile.rs crates/spec/src/driver.rs crates/spec/src/error.rs crates/spec/src/infer.rs crates/spec/src/opt.rs crates/spec/src/phase.rs crates/spec/src/plan.rs crates/spec/src/residual.rs crates/spec/src/shape.rs

/root/repo/target/release/deps/libickp_spec-ddf1cf4a614ef1b5.rmeta: crates/spec/src/lib.rs crates/spec/src/bta.rs crates/spec/src/compile.rs crates/spec/src/driver.rs crates/spec/src/error.rs crates/spec/src/infer.rs crates/spec/src/opt.rs crates/spec/src/phase.rs crates/spec/src/plan.rs crates/spec/src/residual.rs crates/spec/src/shape.rs

crates/spec/src/lib.rs:
crates/spec/src/bta.rs:
crates/spec/src/compile.rs:
crates/spec/src/driver.rs:
crates/spec/src/error.rs:
crates/spec/src/infer.rs:
crates/spec/src/opt.rs:
crates/spec/src/phase.rs:
crates/spec/src/plan.rs:
crates/spec/src/residual.rs:
crates/spec/src/shape.rs:
