/root/repo/target/release/deps/ickp_bench-c42c77d6f5aba096.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/ickp_bench-c42c77d6f5aba096: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/synthrun.rs:
crates/bench/src/table1.rs:
crates/bench/src/timing.rs:
