/root/repo/target/release/deps/table2_backends-d6504c7a9b70cd8b.d: crates/bench/benches/table2_backends.rs

/root/repo/target/release/deps/table2_backends-d6504c7a9b70cd8b: crates/bench/benches/table2_backends.rs

crates/bench/benches/table2_backends.rs:
