/root/repo/target/release/deps/fig7_incremental-70169853092dce2c.d: crates/bench/benches/fig7_incremental.rs

/root/repo/target/release/deps/fig7_incremental-70169853092dce2c: crates/bench/benches/fig7_incremental.rs

crates/bench/benches/fig7_incremental.rs:
