/root/repo/target/release/deps/ickp_prng-dad01ac62f474250.d: crates/prng/src/lib.rs

/root/repo/target/release/deps/ickp_prng-dad01ac62f474250: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
