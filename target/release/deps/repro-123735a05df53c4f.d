/root/repo/target/release/deps/repro-123735a05df53c4f.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-123735a05df53c4f: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
