/root/repo/target/release/deps/ickp_analysis-32306c201cae895c.d: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

/root/repo/target/release/deps/libickp_analysis-32306c201cae895c.rlib: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

/root/repo/target/release/deps/libickp_analysis-32306c201cae895c.rmeta: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

crates/analysis/src/lib.rs:
crates/analysis/src/attributes.rs:
crates/analysis/src/bta.rs:
crates/analysis/src/engine.rs:
crates/analysis/src/error.rs:
crates/analysis/src/eta.rs:
crates/analysis/src/seffect.rs:
crates/analysis/src/vars.rs:
