/root/repo/target/release/deps/dirty_fraction-030014b58fc52735.d: crates/bench/benches/dirty_fraction.rs

/root/repo/target/release/deps/dirty_fraction-030014b58fc52735: crates/bench/benches/dirty_fraction.rs

crates/bench/benches/dirty_fraction.rs:
