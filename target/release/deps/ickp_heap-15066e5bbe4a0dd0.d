/root/repo/target/release/deps/ickp_heap-15066e5bbe4a0dd0.d: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs

/root/repo/target/release/deps/ickp_heap-15066e5bbe4a0dd0: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs

crates/heap/src/lib.rs:
crates/heap/src/class.rs:
crates/heap/src/error.rs:
crates/heap/src/gc.rs:
crates/heap/src/graph.rs:
crates/heap/src/heap.rs:
crates/heap/src/ids.rs:
crates/heap/src/snapshot.rs:
crates/heap/src/value.rs:
