/root/repo/target/release/deps/repro-3f9091591534f931.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-3f9091591534f931: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
