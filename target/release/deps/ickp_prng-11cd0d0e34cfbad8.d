/root/repo/target/release/deps/ickp_prng-11cd0d0e34cfbad8.d: crates/prng/src/lib.rs

/root/repo/target/release/deps/libickp_prng-11cd0d0e34cfbad8.rlib: crates/prng/src/lib.rs

/root/repo/target/release/deps/libickp_prng-11cd0d0e34cfbad8.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
