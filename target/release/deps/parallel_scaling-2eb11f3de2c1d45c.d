/root/repo/target/release/deps/parallel_scaling-2eb11f3de2c1d45c.d: crates/bench/benches/parallel_scaling.rs

/root/repo/target/release/deps/parallel_scaling-2eb11f3de2c1d45c: crates/bench/benches/parallel_scaling.rs

crates/bench/benches/parallel_scaling.rs:
