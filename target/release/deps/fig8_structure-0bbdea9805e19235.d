/root/repo/target/release/deps/fig8_structure-0bbdea9805e19235.d: crates/bench/benches/fig8_structure.rs

/root/repo/target/release/deps/fig8_structure-0bbdea9805e19235: crates/bench/benches/fig8_structure.rs

crates/bench/benches/fig8_structure.rs:
