/root/repo/target/release/deps/ickp_synth-b0aff7aaec440115.d: crates/synth/src/lib.rs

/root/repo/target/release/deps/ickp_synth-b0aff7aaec440115: crates/synth/src/lib.rs

crates/synth/src/lib.rs:
