/root/repo/target/release/deps/ickp_bench-6212124170894bd2.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libickp_bench-6212124170894bd2.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libickp_bench-6212124170894bd2.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/synthrun.rs:
crates/bench/src/table1.rs:
crates/bench/src/timing.rs:
