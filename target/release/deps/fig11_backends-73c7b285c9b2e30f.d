/root/repo/target/release/deps/fig11_backends-73c7b285c9b2e30f.d: crates/bench/benches/fig11_backends.rs

/root/repo/target/release/deps/fig11_backends-73c7b285c9b2e30f: crates/bench/benches/fig11_backends.rs

crates/bench/benches/fig11_backends.rs:
