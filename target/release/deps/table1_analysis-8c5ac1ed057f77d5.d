/root/repo/target/release/deps/table1_analysis-8c5ac1ed057f77d5.d: crates/bench/benches/table1_analysis.rs

/root/repo/target/release/deps/table1_analysis-8c5ac1ed057f77d5: crates/bench/benches/table1_analysis.rs

crates/bench/benches/table1_analysis.rs:
