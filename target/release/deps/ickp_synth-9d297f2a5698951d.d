/root/repo/target/release/deps/ickp_synth-9d297f2a5698951d.d: crates/synth/src/lib.rs

/root/repo/target/release/deps/libickp_synth-9d297f2a5698951d.rlib: crates/synth/src/lib.rs

/root/repo/target/release/deps/libickp_synth-9d297f2a5698951d.rmeta: crates/synth/src/lib.rs

crates/synth/src/lib.rs:
