/root/repo/target/release/deps/ickp_heap-0f8b1d48abf895de.d: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs

/root/repo/target/release/deps/libickp_heap-0f8b1d48abf895de.rlib: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs

/root/repo/target/release/deps/libickp_heap-0f8b1d48abf895de.rmeta: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs

crates/heap/src/lib.rs:
crates/heap/src/class.rs:
crates/heap/src/error.rs:
crates/heap/src/gc.rs:
crates/heap/src/graph.rs:
crates/heap/src/heap.rs:
crates/heap/src/ids.rs:
crates/heap/src/snapshot.rs:
crates/heap/src/value.rs:
