/root/repo/target/release/deps/ickp_analysis-43d6d7dbb3574591.d: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

/root/repo/target/release/deps/libickp_analysis-43d6d7dbb3574591.rlib: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

/root/repo/target/release/deps/libickp_analysis-43d6d7dbb3574591.rmeta: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

crates/analysis/src/lib.rs:
crates/analysis/src/attributes.rs:
crates/analysis/src/bta.rs:
crates/analysis/src/engine.rs:
crates/analysis/src/error.rs:
crates/analysis/src/eta.rs:
crates/analysis/src/seffect.rs:
crates/analysis/src/vars.rs:
