/root/repo/target/release/deps/ickp-b843b72a6f26d1a7.d: src/lib.rs

/root/repo/target/release/deps/libickp-b843b72a6f26d1a7.rlib: src/lib.rs

/root/repo/target/release/deps/libickp-b843b72a6f26d1a7.rmeta: src/lib.rs

src/lib.rs:
