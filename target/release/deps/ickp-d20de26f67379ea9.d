/root/repo/target/release/deps/ickp-d20de26f67379ea9.d: src/lib.rs

/root/repo/target/release/deps/ickp-d20de26f67379ea9: src/lib.rs

src/lib.rs:
