/root/repo/target/release/deps/ickp_spec-e78c1d5beb4ae4b1.d: crates/spec/src/lib.rs crates/spec/src/bta.rs crates/spec/src/compile.rs crates/spec/src/driver.rs crates/spec/src/error.rs crates/spec/src/infer.rs crates/spec/src/opt.rs crates/spec/src/phase.rs crates/spec/src/plan.rs crates/spec/src/residual.rs crates/spec/src/shape.rs

/root/repo/target/release/deps/libickp_spec-e78c1d5beb4ae4b1.rlib: crates/spec/src/lib.rs crates/spec/src/bta.rs crates/spec/src/compile.rs crates/spec/src/driver.rs crates/spec/src/error.rs crates/spec/src/infer.rs crates/spec/src/opt.rs crates/spec/src/phase.rs crates/spec/src/plan.rs crates/spec/src/residual.rs crates/spec/src/shape.rs

/root/repo/target/release/deps/libickp_spec-e78c1d5beb4ae4b1.rmeta: crates/spec/src/lib.rs crates/spec/src/bta.rs crates/spec/src/compile.rs crates/spec/src/driver.rs crates/spec/src/error.rs crates/spec/src/infer.rs crates/spec/src/opt.rs crates/spec/src/phase.rs crates/spec/src/plan.rs crates/spec/src/residual.rs crates/spec/src/shape.rs

crates/spec/src/lib.rs:
crates/spec/src/bta.rs:
crates/spec/src/compile.rs:
crates/spec/src/driver.rs:
crates/spec/src/error.rs:
crates/spec/src/infer.rs:
crates/spec/src/opt.rs:
crates/spec/src/phase.rs:
crates/spec/src/plan.rs:
crates/spec/src/residual.rs:
crates/spec/src/shape.rs:
