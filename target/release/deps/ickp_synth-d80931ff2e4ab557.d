/root/repo/target/release/deps/ickp_synth-d80931ff2e4ab557.d: crates/synth/src/lib.rs

/root/repo/target/release/deps/libickp_synth-d80931ff2e4ab557.rlib: crates/synth/src/lib.rs

/root/repo/target/release/deps/libickp_synth-d80931ff2e4ab557.rmeta: crates/synth/src/lib.rs

crates/synth/src/lib.rs:
