/root/repo/target/release/deps/ickp_backend-5fb2c1aa15de966f.d: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

/root/repo/target/release/deps/ickp_backend-5fb2c1aa15de966f: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

crates/backend/src/lib.rs:
crates/backend/src/engine.rs:
crates/backend/src/generic.rs:
crates/backend/src/parallel.rs:
crates/backend/src/specialized.rs:
crates/backend/src/threaded.rs:
