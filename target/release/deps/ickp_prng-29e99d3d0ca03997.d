/root/repo/target/release/deps/ickp_prng-29e99d3d0ca03997.d: crates/prng/src/lib.rs

/root/repo/target/release/deps/libickp_prng-29e99d3d0ca03997.rlib: crates/prng/src/lib.rs

/root/repo/target/release/deps/libickp_prng-29e99d3d0ca03997.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
