/root/repo/target/release/deps/ickp_bench-be6f6cb7da8700e0.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libickp_bench-be6f6cb7da8700e0.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libickp_bench-be6f6cb7da8700e0.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/synthrun.rs:
crates/bench/src/table1.rs:
crates/bench/src/timing.rs:
