/root/repo/target/release/deps/ickp_minic-47c2147d89c06023.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs

/root/repo/target/release/deps/libickp_minic-47c2147d89c06023.rlib: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs

/root/repo/target/release/deps/libickp_minic-47c2147d89c06023.rmeta: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/error.rs:
crates/minic/src/interp.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/programs.rs:
crates/minic/src/token.rs:
crates/minic/src/typecheck.rs:
