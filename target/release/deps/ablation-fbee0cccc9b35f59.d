/root/repo/target/release/deps/ablation-fbee0cccc9b35f59.d: crates/bench/benches/ablation.rs

/root/repo/target/release/deps/ablation-fbee0cccc9b35f59: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
