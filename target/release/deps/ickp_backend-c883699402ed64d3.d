/root/repo/target/release/deps/ickp_backend-c883699402ed64d3.d: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

/root/repo/target/release/deps/libickp_backend-c883699402ed64d3.rlib: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

/root/repo/target/release/deps/libickp_backend-c883699402ed64d3.rmeta: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

crates/backend/src/lib.rs:
crates/backend/src/engine.rs:
crates/backend/src/generic.rs:
crates/backend/src/parallel.rs:
crates/backend/src/specialized.rs:
crates/backend/src/threaded.rs:
