/root/repo/target/release/deps/repro-9203e588d5c380af.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-9203e588d5c380af: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
