/root/repo/target/release/deps/fig10_positions-9dc1f1e5a592361f.d: crates/bench/benches/fig10_positions.rs

/root/repo/target/release/deps/fig10_positions-9dc1f1e5a592361f: crates/bench/benches/fig10_positions.rs

crates/bench/benches/fig10_positions.rs:
