/root/repo/target/release/deps/ickp_core-d2c3592bc1535e75.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/compact.rs crates/core/src/error.rs crates/core/src/journal.rs crates/core/src/methods.rs crates/core/src/parallel.rs crates/core/src/persist.rs crates/core/src/pool.rs crates/core/src/restore.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/stream.rs

/root/repo/target/release/deps/libickp_core-d2c3592bc1535e75.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/compact.rs crates/core/src/error.rs crates/core/src/journal.rs crates/core/src/methods.rs crates/core/src/parallel.rs crates/core/src/persist.rs crates/core/src/pool.rs crates/core/src/restore.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/stream.rs

/root/repo/target/release/deps/libickp_core-d2c3592bc1535e75.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/compact.rs crates/core/src/error.rs crates/core/src/journal.rs crates/core/src/methods.rs crates/core/src/parallel.rs crates/core/src/persist.rs crates/core/src/pool.rs crates/core/src/restore.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/stream.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/compact.rs:
crates/core/src/error.rs:
crates/core/src/journal.rs:
crates/core/src/methods.rs:
crates/core/src/parallel.rs:
crates/core/src/persist.rs:
crates/core/src/pool.rs:
crates/core/src/restore.rs:
crates/core/src/stats.rs:
crates/core/src/store.rs:
crates/core/src/stream.rs:
