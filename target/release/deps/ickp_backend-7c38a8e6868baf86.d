/root/repo/target/release/deps/ickp_backend-7c38a8e6868baf86.d: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

/root/repo/target/release/deps/libickp_backend-7c38a8e6868baf86.rlib: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

/root/repo/target/release/deps/libickp_backend-7c38a8e6868baf86.rmeta: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

crates/backend/src/lib.rs:
crates/backend/src/engine.rs:
crates/backend/src/generic.rs:
crates/backend/src/parallel.rs:
crates/backend/src/specialized.rs:
crates/backend/src/threaded.rs:
