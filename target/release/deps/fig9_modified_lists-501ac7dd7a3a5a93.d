/root/repo/target/release/deps/fig9_modified_lists-501ac7dd7a3a5a93.d: crates/bench/benches/fig9_modified_lists.rs

/root/repo/target/release/deps/fig9_modified_lists-501ac7dd7a3a5a93: crates/bench/benches/fig9_modified_lists.rs

crates/bench/benches/fig9_modified_lists.rs:
