/root/repo/target/release/libickp_prng.rlib: /root/repo/crates/prng/src/lib.rs
