/root/repo/target/debug/examples/parallel_checkpoint-d5710ea89e2feba1.d: examples/parallel_checkpoint.rs

/root/repo/target/debug/examples/parallel_checkpoint-d5710ea89e2feba1: examples/parallel_checkpoint.rs

examples/parallel_checkpoint.rs:
