/root/repo/target/debug/examples/agent_migration-f99963b14800d359.d: examples/agent_migration.rs Cargo.toml

/root/repo/target/debug/examples/libagent_migration-f99963b14800d359.rmeta: examples/agent_migration.rs Cargo.toml

examples/agent_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
