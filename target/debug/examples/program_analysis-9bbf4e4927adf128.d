/root/repo/target/debug/examples/program_analysis-9bbf4e4927adf128.d: examples/program_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libprogram_analysis-9bbf4e4927adf128.rmeta: examples/program_analysis.rs Cargo.toml

examples/program_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
