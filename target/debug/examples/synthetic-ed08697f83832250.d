/root/repo/target/debug/examples/synthetic-ed08697f83832250.d: examples/synthetic.rs

/root/repo/target/debug/examples/synthetic-ed08697f83832250: examples/synthetic.rs

examples/synthetic.rs:
