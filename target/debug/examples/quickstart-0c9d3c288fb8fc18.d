/root/repo/target/debug/examples/quickstart-0c9d3c288fb8fc18.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0c9d3c288fb8fc18: examples/quickstart.rs

examples/quickstart.rs:
