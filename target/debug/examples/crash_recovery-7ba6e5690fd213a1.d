/root/repo/target/debug/examples/crash_recovery-7ba6e5690fd213a1.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-7ba6e5690fd213a1: examples/crash_recovery.rs

examples/crash_recovery.rs:
