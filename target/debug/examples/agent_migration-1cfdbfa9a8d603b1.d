/root/repo/target/debug/examples/agent_migration-1cfdbfa9a8d603b1.d: examples/agent_migration.rs

/root/repo/target/debug/examples/agent_migration-1cfdbfa9a8d603b1: examples/agent_migration.rs

examples/agent_migration.rs:
