/root/repo/target/debug/examples/parallel_checkpoint-cbefa98295f334b2.d: examples/parallel_checkpoint.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_checkpoint-cbefa98295f334b2.rmeta: examples/parallel_checkpoint.rs Cargo.toml

examples/parallel_checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
