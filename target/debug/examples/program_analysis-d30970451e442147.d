/root/repo/target/debug/examples/program_analysis-d30970451e442147.d: examples/program_analysis.rs

/root/repo/target/debug/examples/program_analysis-d30970451e442147: examples/program_analysis.rs

examples/program_analysis.rs:
