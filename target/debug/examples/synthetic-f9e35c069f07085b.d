/root/repo/target/debug/examples/synthetic-f9e35c069f07085b.d: examples/synthetic.rs Cargo.toml

/root/repo/target/debug/examples/libsynthetic-f9e35c069f07085b.rmeta: examples/synthetic.rs Cargo.toml

examples/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
