/root/repo/target/debug/deps/shape_props-dca2fed4c60797a4.d: crates/spec/tests/shape_props.rs Cargo.toml

/root/repo/target/debug/deps/libshape_props-dca2fed4c60797a4.rmeta: crates/spec/tests/shape_props.rs Cargo.toml

crates/spec/tests/shape_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
