/root/repo/target/debug/deps/ickp-07fce9b19e55fe41.d: src/lib.rs

/root/repo/target/debug/deps/libickp-07fce9b19e55fe41.rlib: src/lib.rs

/root/repo/target/debug/deps/libickp-07fce9b19e55fe41.rmeta: src/lib.rs

src/lib.rs:
