/root/repo/target/debug/deps/ickp_analysis-e38f8a37186ca524.d: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

/root/repo/target/debug/deps/libickp_analysis-e38f8a37186ca524.rlib: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

/root/repo/target/debug/deps/libickp_analysis-e38f8a37186ca524.rmeta: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

crates/analysis/src/lib.rs:
crates/analysis/src/attributes.rs:
crates/analysis/src/bta.rs:
crates/analysis/src/engine.rs:
crates/analysis/src/error.rs:
crates/analysis/src/eta.rs:
crates/analysis/src/seffect.rs:
crates/analysis/src/vars.rs:
