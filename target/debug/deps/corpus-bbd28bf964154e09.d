/root/repo/target/debug/deps/corpus-bbd28bf964154e09.d: crates/analysis/tests/corpus.rs Cargo.toml

/root/repo/target/debug/deps/libcorpus-bbd28bf964154e09.rmeta: crates/analysis/tests/corpus.rs Cargo.toml

crates/analysis/tests/corpus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
