/root/repo/target/debug/deps/ickp_heap-939aa545a78fea81.d: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs

/root/repo/target/debug/deps/libickp_heap-939aa545a78fea81.rlib: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs

/root/repo/target/debug/deps/libickp_heap-939aa545a78fea81.rmeta: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs

crates/heap/src/lib.rs:
crates/heap/src/class.rs:
crates/heap/src/error.rs:
crates/heap/src/gc.rs:
crates/heap/src/graph.rs:
crates/heap/src/heap.rs:
crates/heap/src/ids.rs:
crates/heap/src/snapshot.rs:
crates/heap/src/value.rs:
