/root/repo/target/debug/deps/fig7_incremental-8b8dd565c525775d.d: crates/bench/benches/fig7_incremental.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_incremental-8b8dd565c525775d.rmeta: crates/bench/benches/fig7_incremental.rs Cargo.toml

crates/bench/benches/fig7_incremental.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
