/root/repo/target/debug/deps/journal_engines-943024b7b8bf4fce.d: crates/backend/tests/journal_engines.rs Cargo.toml

/root/repo/target/debug/deps/libjournal_engines-943024b7b8bf4fce.rmeta: crates/backend/tests/journal_engines.rs Cargo.toml

crates/backend/tests/journal_engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
