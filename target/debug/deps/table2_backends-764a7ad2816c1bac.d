/root/repo/target/debug/deps/table2_backends-764a7ad2816c1bac.d: crates/bench/benches/table2_backends.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_backends-764a7ad2816c1bac.rmeta: crates/bench/benches/table2_backends.rs Cargo.toml

crates/bench/benches/table2_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
