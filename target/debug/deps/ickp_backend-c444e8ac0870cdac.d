/root/repo/target/debug/deps/ickp_backend-c444e8ac0870cdac.d: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libickp_backend-c444e8ac0870cdac.rmeta: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs Cargo.toml

crates/backend/src/lib.rs:
crates/backend/src/engine.rs:
crates/backend/src/generic.rs:
crates/backend/src/parallel.rs:
crates/backend/src/specialized.rs:
crates/backend/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
