/root/repo/target/debug/deps/ickp_core-cd90a5dcff952fd9.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/compact.rs crates/core/src/error.rs crates/core/src/journal.rs crates/core/src/methods.rs crates/core/src/parallel.rs crates/core/src/persist.rs crates/core/src/pool.rs crates/core/src/restore.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libickp_core-cd90a5dcff952fd9.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/compact.rs crates/core/src/error.rs crates/core/src/journal.rs crates/core/src/methods.rs crates/core/src/parallel.rs crates/core/src/persist.rs crates/core/src/pool.rs crates/core/src/restore.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/stream.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/compact.rs:
crates/core/src/error.rs:
crates/core/src/journal.rs:
crates/core/src/methods.rs:
crates/core/src/parallel.rs:
crates/core/src/persist.rs:
crates/core/src/pool.rs:
crates/core/src/restore.rs:
crates/core/src/stats.rs:
crates/core/src/store.rs:
crates/core/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
