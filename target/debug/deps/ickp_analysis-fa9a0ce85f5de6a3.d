/root/repo/target/debug/deps/ickp_analysis-fa9a0ce85f5de6a3.d: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs Cargo.toml

/root/repo/target/debug/deps/libickp_analysis-fa9a0ce85f5de6a3.rmeta: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/attributes.rs:
crates/analysis/src/bta.rs:
crates/analysis/src/engine.rs:
crates/analysis/src/error.rs:
crates/analysis/src/eta.rs:
crates/analysis/src/seffect.rs:
crates/analysis/src/vars.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
