/root/repo/target/debug/deps/inference-be2f0b8e1ce6ba12.d: tests/inference.rs

/root/repo/target/debug/deps/inference-be2f0b8e1ce6ba12: tests/inference.rs

tests/inference.rs:
