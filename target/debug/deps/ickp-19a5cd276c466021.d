/root/repo/target/debug/deps/ickp-19a5cd276c466021.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libickp-19a5cd276c466021.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
