/root/repo/target/debug/deps/ickp-b70cfb399d37e2a0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libickp-b70cfb399d37e2a0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
