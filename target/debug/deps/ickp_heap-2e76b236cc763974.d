/root/repo/target/debug/deps/ickp_heap-2e76b236cc763974.d: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs

/root/repo/target/debug/deps/ickp_heap-2e76b236cc763974: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs

crates/heap/src/lib.rs:
crates/heap/src/class.rs:
crates/heap/src/error.rs:
crates/heap/src/gc.rs:
crates/heap/src/graph.rs:
crates/heap/src/heap.rs:
crates/heap/src/ids.rs:
crates/heap/src/snapshot.rs:
crates/heap/src/value.rs:
