/root/repo/target/debug/deps/evolution-b93798963a17182c.d: tests/evolution.rs Cargo.toml

/root/repo/target/debug/deps/libevolution-b93798963a17182c.rmeta: tests/evolution.rs Cargo.toml

tests/evolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
