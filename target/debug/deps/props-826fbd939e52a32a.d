/root/repo/target/debug/deps/props-826fbd939e52a32a.d: crates/minic/tests/props.rs

/root/repo/target/debug/deps/props-826fbd939e52a32a: crates/minic/tests/props.rs

crates/minic/tests/props.rs:
