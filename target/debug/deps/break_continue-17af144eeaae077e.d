/root/repo/target/debug/deps/break_continue-17af144eeaae077e.d: crates/minic/tests/break_continue.rs Cargo.toml

/root/repo/target/debug/deps/libbreak_continue-17af144eeaae077e.rmeta: crates/minic/tests/break_continue.rs Cargo.toml

crates/minic/tests/break_continue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
