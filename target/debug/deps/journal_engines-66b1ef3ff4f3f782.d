/root/repo/target/debug/deps/journal_engines-66b1ef3ff4f3f782.d: crates/backend/tests/journal_engines.rs

/root/repo/target/debug/deps/journal_engines-66b1ef3ff4f3f782: crates/backend/tests/journal_engines.rs

crates/backend/tests/journal_engines.rs:
