/root/repo/target/debug/deps/end_to_end-92f622a6b497fe7e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-92f622a6b497fe7e: tests/end_to_end.rs

tests/end_to_end.rs:
