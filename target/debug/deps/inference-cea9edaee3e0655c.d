/root/repo/target/debug/deps/inference-cea9edaee3e0655c.d: tests/inference.rs Cargo.toml

/root/repo/target/debug/deps/libinference-cea9edaee3e0655c.rmeta: tests/inference.rs Cargo.toml

tests/inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
