/root/repo/target/debug/deps/cross_engine_equivalence-a4e5eaab59e92d26.d: tests/cross_engine_equivalence.rs

/root/repo/target/debug/deps/cross_engine_equivalence-a4e5eaab59e92d26: tests/cross_engine_equivalence.rs

tests/cross_engine_equivalence.rs:
