/root/repo/target/debug/deps/ickp_prng-c75217f59d4b339a.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libickp_prng-c75217f59d4b339a.rlib: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libickp_prng-c75217f59d4b339a.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
