/root/repo/target/debug/deps/ickp_minic-c22bb0e7a487d45e.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs

/root/repo/target/debug/deps/ickp_minic-c22bb0e7a487d45e: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/error.rs:
crates/minic/src/interp.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/programs.rs:
crates/minic/src/token.rs:
crates/minic/src/typecheck.rs:
