/root/repo/target/debug/deps/props-12d3463ff1fcedaa.d: crates/core/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-12d3463ff1fcedaa.rmeta: crates/core/tests/props.rs Cargo.toml

crates/core/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
