/root/repo/target/debug/deps/ickp_prng-8f1cd8a3331e6146.d: crates/prng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libickp_prng-8f1cd8a3331e6146.rmeta: crates/prng/src/lib.rs Cargo.toml

crates/prng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
