/root/repo/target/debug/deps/ickp_analysis-ceb05b21345412c5.d: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs Cargo.toml

/root/repo/target/debug/deps/libickp_analysis-ceb05b21345412c5.rmeta: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/attributes.rs:
crates/analysis/src/bta.rs:
crates/analysis/src/engine.rs:
crates/analysis/src/error.rs:
crates/analysis/src/eta.rs:
crates/analysis/src/seffect.rs:
crates/analysis/src/vars.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
