/root/repo/target/debug/deps/ickp_synth-7d6839e32931602b.d: crates/synth/src/lib.rs

/root/repo/target/debug/deps/libickp_synth-7d6839e32931602b.rlib: crates/synth/src/lib.rs

/root/repo/target/debug/deps/libickp_synth-7d6839e32931602b.rmeta: crates/synth/src/lib.rs

crates/synth/src/lib.rs:
