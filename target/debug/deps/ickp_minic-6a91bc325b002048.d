/root/repo/target/debug/deps/ickp_minic-6a91bc325b002048.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs

/root/repo/target/debug/deps/libickp_minic-6a91bc325b002048.rlib: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs

/root/repo/target/debug/deps/libickp_minic-6a91bc325b002048.rmeta: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/error.rs:
crates/minic/src/interp.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/programs.rs:
crates/minic/src/token.rs:
crates/minic/src/typecheck.rs:
