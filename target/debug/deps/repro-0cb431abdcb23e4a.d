/root/repo/target/debug/deps/repro-0cb431abdcb23e4a.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-0cb431abdcb23e4a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
