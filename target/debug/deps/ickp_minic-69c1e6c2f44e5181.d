/root/repo/target/debug/deps/ickp_minic-69c1e6c2f44e5181.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs Cargo.toml

/root/repo/target/debug/deps/libickp_minic-69c1e6c2f44e5181.rmeta: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs Cargo.toml

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/error.rs:
crates/minic/src/interp.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/programs.rs:
crates/minic/src/token.rs:
crates/minic/src/typecheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
