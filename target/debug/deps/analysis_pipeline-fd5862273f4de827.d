/root/repo/target/debug/deps/analysis_pipeline-fd5862273f4de827.d: tests/analysis_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_pipeline-fd5862273f4de827.rmeta: tests/analysis_pipeline.rs Cargo.toml

tests/analysis_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
