/root/repo/target/debug/deps/shape_props-5279b732d9069ba9.d: crates/spec/tests/shape_props.rs

/root/repo/target/debug/deps/shape_props-5279b732d9069ba9: crates/spec/tests/shape_props.rs

crates/spec/tests/shape_props.rs:
