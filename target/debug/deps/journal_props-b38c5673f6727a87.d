/root/repo/target/debug/deps/journal_props-b38c5673f6727a87.d: crates/core/tests/journal_props.rs

/root/repo/target/debug/deps/journal_props-b38c5673f6727a87: crates/core/tests/journal_props.rs

crates/core/tests/journal_props.rs:
