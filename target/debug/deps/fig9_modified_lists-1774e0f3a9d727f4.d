/root/repo/target/debug/deps/fig9_modified_lists-1774e0f3a9d727f4.d: crates/bench/benches/fig9_modified_lists.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_modified_lists-1774e0f3a9d727f4.rmeta: crates/bench/benches/fig9_modified_lists.rs Cargo.toml

crates/bench/benches/fig9_modified_lists.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
