/root/repo/target/debug/deps/break_continue-82f5518057ff6e95.d: crates/minic/tests/break_continue.rs

/root/repo/target/debug/deps/break_continue-82f5518057ff6e95: crates/minic/tests/break_continue.rs

crates/minic/tests/break_continue.rs:
