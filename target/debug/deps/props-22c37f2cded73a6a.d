/root/repo/target/debug/deps/props-22c37f2cded73a6a.d: crates/heap/tests/props.rs

/root/repo/target/debug/deps/props-22c37f2cded73a6a: crates/heap/tests/props.rs

crates/heap/tests/props.rs:
