/root/repo/target/debug/deps/equivalence_prop-0cdca1294d156f6e.d: tests/equivalence_prop.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence_prop-0cdca1294d156f6e.rmeta: tests/equivalence_prop.rs Cargo.toml

tests/equivalence_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
