/root/repo/target/debug/deps/repro-70fe6a9e98180a59.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-70fe6a9e98180a59: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
