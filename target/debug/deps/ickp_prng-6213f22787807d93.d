/root/repo/target/debug/deps/ickp_prng-6213f22787807d93.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/ickp_prng-6213f22787807d93: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
