/root/repo/target/debug/deps/ickp_core-b213d65aa8445af3.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/compact.rs crates/core/src/error.rs crates/core/src/journal.rs crates/core/src/methods.rs crates/core/src/parallel.rs crates/core/src/persist.rs crates/core/src/pool.rs crates/core/src/restore.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/stream.rs

/root/repo/target/debug/deps/ickp_core-b213d65aa8445af3: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/compact.rs crates/core/src/error.rs crates/core/src/journal.rs crates/core/src/methods.rs crates/core/src/parallel.rs crates/core/src/persist.rs crates/core/src/pool.rs crates/core/src/restore.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/stream.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/compact.rs:
crates/core/src/error.rs:
crates/core/src/journal.rs:
crates/core/src/methods.rs:
crates/core/src/parallel.rs:
crates/core/src/persist.rs:
crates/core/src/pool.rs:
crates/core/src/restore.rs:
crates/core/src/stats.rs:
crates/core/src/store.rs:
crates/core/src/stream.rs:
