/root/repo/target/debug/deps/persistence-d68e1509290002c8.d: tests/persistence.rs Cargo.toml

/root/repo/target/debug/deps/libpersistence-d68e1509290002c8.rmeta: tests/persistence.rs Cargo.toml

tests/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
