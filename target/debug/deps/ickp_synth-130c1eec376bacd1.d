/root/repo/target/debug/deps/ickp_synth-130c1eec376bacd1.d: crates/synth/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libickp_synth-130c1eec376bacd1.rmeta: crates/synth/src/lib.rs Cargo.toml

crates/synth/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
