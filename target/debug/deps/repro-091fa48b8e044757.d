/root/repo/target/debug/deps/repro-091fa48b8e044757.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-091fa48b8e044757.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
