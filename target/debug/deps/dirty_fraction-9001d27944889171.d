/root/repo/target/debug/deps/dirty_fraction-9001d27944889171.d: crates/bench/benches/dirty_fraction.rs Cargo.toml

/root/repo/target/debug/deps/libdirty_fraction-9001d27944889171.rmeta: crates/bench/benches/dirty_fraction.rs Cargo.toml

crates/bench/benches/dirty_fraction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
