/root/repo/target/debug/deps/ickp_bench-4730648144d3a31a.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libickp_bench-4730648144d3a31a.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libickp_bench-4730648144d3a31a.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/synthrun.rs:
crates/bench/src/table1.rs:
crates/bench/src/timing.rs:
