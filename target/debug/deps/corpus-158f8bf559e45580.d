/root/repo/target/debug/deps/corpus-158f8bf559e45580.d: crates/analysis/tests/corpus.rs

/root/repo/target/debug/deps/corpus-158f8bf559e45580: crates/analysis/tests/corpus.rs

crates/analysis/tests/corpus.rs:
