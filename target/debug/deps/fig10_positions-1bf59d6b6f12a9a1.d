/root/repo/target/debug/deps/fig10_positions-1bf59d6b6f12a9a1.d: crates/bench/benches/fig10_positions.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_positions-1bf59d6b6f12a9a1.rmeta: crates/bench/benches/fig10_positions.rs Cargo.toml

crates/bench/benches/fig10_positions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
