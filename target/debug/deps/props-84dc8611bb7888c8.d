/root/repo/target/debug/deps/props-84dc8611bb7888c8.d: crates/minic/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-84dc8611bb7888c8.rmeta: crates/minic/tests/props.rs Cargo.toml

crates/minic/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
