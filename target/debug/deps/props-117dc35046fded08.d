/root/repo/target/debug/deps/props-117dc35046fded08.d: crates/heap/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-117dc35046fded08.rmeta: crates/heap/tests/props.rs Cargo.toml

crates/heap/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
