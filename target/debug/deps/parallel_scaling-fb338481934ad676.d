/root/repo/target/debug/deps/parallel_scaling-fb338481934ad676.d: crates/bench/benches/parallel_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_scaling-fb338481934ad676.rmeta: crates/bench/benches/parallel_scaling.rs Cargo.toml

crates/bench/benches/parallel_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
