/root/repo/target/debug/deps/fig11_backends-5d89692a80f76c97.d: crates/bench/benches/fig11_backends.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_backends-5d89692a80f76c97.rmeta: crates/bench/benches/fig11_backends.rs Cargo.toml

crates/bench/benches/fig11_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
