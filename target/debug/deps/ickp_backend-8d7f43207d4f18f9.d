/root/repo/target/debug/deps/ickp_backend-8d7f43207d4f18f9.d: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

/root/repo/target/debug/deps/ickp_backend-8d7f43207d4f18f9: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

crates/backend/src/lib.rs:
crates/backend/src/engine.rs:
crates/backend/src/generic.rs:
crates/backend/src/parallel.rs:
crates/backend/src/specialized.rs:
crates/backend/src/threaded.rs:
