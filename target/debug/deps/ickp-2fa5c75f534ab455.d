/root/repo/target/debug/deps/ickp-2fa5c75f534ab455.d: src/lib.rs

/root/repo/target/debug/deps/ickp-2fa5c75f534ab455: src/lib.rs

src/lib.rs:
