/root/repo/target/debug/deps/fig8_structure-686d9b437f16226c.d: crates/bench/benches/fig8_structure.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_structure-686d9b437f16226c.rmeta: crates/bench/benches/fig8_structure.rs Cargo.toml

crates/bench/benches/fig8_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
