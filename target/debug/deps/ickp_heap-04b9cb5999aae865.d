/root/repo/target/debug/deps/ickp_heap-04b9cb5999aae865.d: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libickp_heap-04b9cb5999aae865.rmeta: crates/heap/src/lib.rs crates/heap/src/class.rs crates/heap/src/error.rs crates/heap/src/gc.rs crates/heap/src/graph.rs crates/heap/src/heap.rs crates/heap/src/ids.rs crates/heap/src/snapshot.rs crates/heap/src/value.rs Cargo.toml

crates/heap/src/lib.rs:
crates/heap/src/class.rs:
crates/heap/src/error.rs:
crates/heap/src/gc.rs:
crates/heap/src/graph.rs:
crates/heap/src/heap.rs:
crates/heap/src/ids.rs:
crates/heap/src/snapshot.rs:
crates/heap/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
