/root/repo/target/debug/deps/table1_analysis-3e72839b195b2542.d: crates/bench/benches/table1_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_analysis-3e72839b195b2542.rmeta: crates/bench/benches/table1_analysis.rs Cargo.toml

crates/bench/benches/table1_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
