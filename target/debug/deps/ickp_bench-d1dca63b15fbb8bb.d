/root/repo/target/debug/deps/ickp_bench-d1dca63b15fbb8bb.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/ickp_bench-d1dca63b15fbb8bb: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/synthrun.rs:
crates/bench/src/table1.rs:
crates/bench/src/timing.rs:
