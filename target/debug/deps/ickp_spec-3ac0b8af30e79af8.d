/root/repo/target/debug/deps/ickp_spec-3ac0b8af30e79af8.d: crates/spec/src/lib.rs crates/spec/src/bta.rs crates/spec/src/compile.rs crates/spec/src/driver.rs crates/spec/src/error.rs crates/spec/src/infer.rs crates/spec/src/opt.rs crates/spec/src/phase.rs crates/spec/src/plan.rs crates/spec/src/residual.rs crates/spec/src/shape.rs Cargo.toml

/root/repo/target/debug/deps/libickp_spec-3ac0b8af30e79af8.rmeta: crates/spec/src/lib.rs crates/spec/src/bta.rs crates/spec/src/compile.rs crates/spec/src/driver.rs crates/spec/src/error.rs crates/spec/src/infer.rs crates/spec/src/opt.rs crates/spec/src/phase.rs crates/spec/src/plan.rs crates/spec/src/residual.rs crates/spec/src/shape.rs Cargo.toml

crates/spec/src/lib.rs:
crates/spec/src/bta.rs:
crates/spec/src/compile.rs:
crates/spec/src/driver.rs:
crates/spec/src/error.rs:
crates/spec/src/infer.rs:
crates/spec/src/opt.rs:
crates/spec/src/phase.rs:
crates/spec/src/plan.rs:
crates/spec/src/residual.rs:
crates/spec/src/shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
