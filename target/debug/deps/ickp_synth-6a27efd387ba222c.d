/root/repo/target/debug/deps/ickp_synth-6a27efd387ba222c.d: crates/synth/src/lib.rs

/root/repo/target/debug/deps/ickp_synth-6a27efd387ba222c: crates/synth/src/lib.rs

crates/synth/src/lib.rs:
