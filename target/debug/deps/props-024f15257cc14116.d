/root/repo/target/debug/deps/props-024f15257cc14116.d: crates/core/tests/props.rs

/root/repo/target/debug/deps/props-024f15257cc14116: crates/core/tests/props.rs

crates/core/tests/props.rs:
