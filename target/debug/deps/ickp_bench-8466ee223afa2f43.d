/root/repo/target/debug/deps/ickp_bench-8466ee223afa2f43.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libickp_bench-8466ee223afa2f43.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/synthrun.rs crates/bench/src/table1.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/synthrun.rs:
crates/bench/src/table1.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
