/root/repo/target/debug/deps/analysis_pipeline-6f1e59cd8e573f7a.d: tests/analysis_pipeline.rs

/root/repo/target/debug/deps/analysis_pipeline-6f1e59cd8e573f7a: tests/analysis_pipeline.rs

tests/analysis_pipeline.rs:
