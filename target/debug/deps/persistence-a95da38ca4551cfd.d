/root/repo/target/debug/deps/persistence-a95da38ca4551cfd.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-a95da38ca4551cfd: tests/persistence.rs

tests/persistence.rs:
