/root/repo/target/debug/deps/journal_props-935c0fd286406479.d: crates/core/tests/journal_props.rs Cargo.toml

/root/repo/target/debug/deps/libjournal_props-935c0fd286406479.rmeta: crates/core/tests/journal_props.rs Cargo.toml

crates/core/tests/journal_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
