/root/repo/target/debug/deps/ickp_backend-172045a6b34a109a.d: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

/root/repo/target/debug/deps/libickp_backend-172045a6b34a109a.rlib: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

/root/repo/target/debug/deps/libickp_backend-172045a6b34a109a.rmeta: crates/backend/src/lib.rs crates/backend/src/engine.rs crates/backend/src/generic.rs crates/backend/src/parallel.rs crates/backend/src/specialized.rs crates/backend/src/threaded.rs

crates/backend/src/lib.rs:
crates/backend/src/engine.rs:
crates/backend/src/generic.rs:
crates/backend/src/parallel.rs:
crates/backend/src/specialized.rs:
crates/backend/src/threaded.rs:
