/root/repo/target/debug/deps/ickp_analysis-50f7979c752801ef.d: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

/root/repo/target/debug/deps/ickp_analysis-50f7979c752801ef: crates/analysis/src/lib.rs crates/analysis/src/attributes.rs crates/analysis/src/bta.rs crates/analysis/src/engine.rs crates/analysis/src/error.rs crates/analysis/src/eta.rs crates/analysis/src/seffect.rs crates/analysis/src/vars.rs

crates/analysis/src/lib.rs:
crates/analysis/src/attributes.rs:
crates/analysis/src/bta.rs:
crates/analysis/src/engine.rs:
crates/analysis/src/error.rs:
crates/analysis/src/eta.rs:
crates/analysis/src/seffect.rs:
crates/analysis/src/vars.rs:
