/root/repo/target/debug/deps/ickp_minic-dc4db09f2ad47e0d.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs Cargo.toml

/root/repo/target/debug/deps/libickp_minic-dc4db09f2ad47e0d.rmeta: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/interp.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/programs.rs crates/minic/src/token.rs crates/minic/src/typecheck.rs Cargo.toml

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/error.rs:
crates/minic/src/interp.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/programs.rs:
crates/minic/src/token.rs:
crates/minic/src/typecheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
