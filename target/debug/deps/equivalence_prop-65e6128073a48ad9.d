/root/repo/target/debug/deps/equivalence_prop-65e6128073a48ad9.d: tests/equivalence_prop.rs

/root/repo/target/debug/deps/equivalence_prop-65e6128073a48ad9: tests/equivalence_prop.rs

tests/equivalence_prop.rs:
