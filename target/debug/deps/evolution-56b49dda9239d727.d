/root/repo/target/debug/deps/evolution-56b49dda9239d727.d: tests/evolution.rs

/root/repo/target/debug/deps/evolution-56b49dda9239d727: tests/evolution.rs

tests/evolution.rs:
