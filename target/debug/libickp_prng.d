/root/repo/target/debug/libickp_prng.rlib: /root/repo/crates/prng/src/lib.rs
