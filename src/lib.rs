//! # ickp — incremental checkpointing via program specialization
//!
//! Facade crate re-exporting the whole workspace. This is a from-scratch
//! Rust reproduction of *Lawall & Muller, "Efficient Incremental
//! Checkpointing of Java Programs" (DSN 2000)*: language-level incremental
//! checkpointing of object graphs, made fast by compiling generic
//! checkpointing code into specialized, straight-line *plans* based on
//! declared structure and modification patterns.
//!
//! Crate map:
//!
//! * [`heap`] — managed object heap (classes, typed fields, write barrier).
//! * [`core`] — generic full/incremental checkpointing, stream format,
//!   checkpoint store, restore.
//! * [`spec`] — the specializer: declarations → binding-time split →
//!   flat plans → executors; residual-code printer.
//! * [`minic`] — mini-C front end used as the realistic workload's input.
//! * [`analysis`] — the program-analysis engine (side-effect, binding-time,
//!   evaluation-time analyses) whose heap-backed results are checkpointed.
//! * [`audit`] — static soundness verifier for specialization declarations
//!   and compiled plans (`repro audit`).
//! * [`synth`] — the paper's synthetic benchmark generator.
//! * [`backend`] — execution backends emulating JVM dispatch regimes.
//! * [`durable`] — crash-safe segmented on-disk checkpoint store with a
//!   deterministic fault-injection VFS and crash-point enumeration harness.
//! * [`lifecycle`] — policy-driven checkpoint lifecycle: named restore
//!   points, binomial retention, content-hash dedup.
//! * [`replicate`] — hot-standby replication: group-commit batches
//!   shipped to a follower over a fault-injectable transport, proven by
//!   a two-node failover crash matrix.
//!
//! ## Quickstart
//!
//! ```
//! use ickp::heap::{ClassRegistry, FieldType, Heap, Value};
//! use ickp::core::{CheckpointConfig, Checkpointer, MethodTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = ClassRegistry::new();
//! let node = reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])?;
//! let mut heap = Heap::new(reg);
//! let head = heap.alloc(node)?;
//! heap.set_field(head, 0, Value::Int(42))?;
//!
//! let methods = MethodTable::derive(heap.registry());
//! let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
//! let record = ckp.checkpoint(&mut heap, &methods, &[head])?;
//! assert!(record.len_bytes() > 0);
//! # Ok(()) }
//! ```

pub use ickp_analysis as analysis;
pub use ickp_audit as audit;
pub use ickp_backend as backend;
pub use ickp_core as core;
pub use ickp_durable as durable;
pub use ickp_heap as heap;
pub use ickp_lifecycle as lifecycle;
pub use ickp_minic as minic;
pub use ickp_replicate as replicate;
pub use ickp_spec as spec;
pub use ickp_synth as synth;
