//! Checkpoint-store compaction.
//!
//! A long run accumulates one incremental checkpoint per iteration; a
//! recovery must replay all of them, and the store grows without bound.
//! [`compact`] collapses a store into a single full checkpoint that is
//! observationally equivalent for recovery: it materializes the store's
//! final state (via the restore machinery) and re-records it as one full
//! checkpoint carrying the original latest sequence number — so a
//! subsequent incremental checkpoint from the producing run still
//! appends contiguously.

use crate::checkpoint::{CheckpointConfig, Checkpointer};
use crate::error::CoreError;
use crate::methods::MethodTable;
use crate::restore::{restore, RestorePolicy};
use crate::store::CheckpointStore;
use ickp_heap::ClassRegistry;

/// Collapses `store` into an equivalent single-full-checkpoint store.
///
/// The compacted record covers everything reachable from the *latest*
/// checkpoint's roots; objects that became unreachable during the run
/// (superseded list nodes, dropped subtrees) are garbage-collected by
/// compaction, which is where the space win beyond deduplication comes
/// from.
///
/// # Errors
///
/// Fails like [`restore`] (the store must be decodable and complete).
pub fn compact(
    store: &CheckpointStore,
    registry: &ClassRegistry,
) -> Result<CheckpointStore, CoreError> {
    let latest_seq = store.latest().ok_or(CoreError::EmptyStore)?.seq();
    let rebuilt = restore(store, registry, RestorePolicy::Lenient)?;
    let roots = rebuilt.roots().to_vec();
    let mut heap = rebuilt.into_heap();

    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::full());
    // Carry the original sequence number so producers can keep appending.
    // Seeding the counter (rather than rewriting the record header after
    // the fact) keeps the wire bytes and the header in agreement, so the
    // sequence number survives persistence, which recovers it by decoding
    // the bytes.
    ckp.set_next_seq(latest_seq);
    let rec = ckp.checkpoint(&mut heap, &table, &roots)?;
    let mut compacted = CheckpointStore::new();
    compacted.push(rec)?;
    Ok(compacted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointRecord;
    use crate::restore::verify_restore;
    use ickp_heap::{ClassId, ClassRegistry, FieldType, Heap, ObjectId, Value};

    fn run_with_churn() -> (Heap, Vec<ObjectId>, CheckpointStore) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let head = heap.alloc(node).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        store.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap()).unwrap();

        // Churn: repeatedly swap in a fresh tail (the old ones become
        // garbage that compaction should shed) and mutate the head.
        let mut old_tails: Vec<ObjectId> = Vec::new();
        for i in 0..6 {
            let tail = heap.alloc(node).unwrap();
            heap.set_field(tail, 0, Value::Int(100 + i)).unwrap();
            if let Value::Ref(Some(old)) = heap.field(head, 1).unwrap() {
                old_tails.push(old);
            }
            heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
            heap.set_field(head, 0, Value::Int(i)).unwrap();
            store.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap()).unwrap();
        }
        for t in old_tails {
            heap.free(t).unwrap();
        }
        (heap, vec![head], store)
    }

    fn node_class(heap: &Heap) -> ClassId {
        heap.registry().id_of("Node").unwrap()
    }

    #[test]
    fn compaction_preserves_the_recovered_state() {
        let (heap, roots, store) = run_with_churn();
        let compacted = compact(&store, heap.registry()).unwrap();
        assert_eq!(compacted.len(), 1);
        let rebuilt = restore(&compacted, heap.registry(), RestorePolicy::RequireFullBase).unwrap();
        assert_eq!(verify_restore(&heap, &roots, &rebuilt).unwrap(), None);
    }

    #[test]
    fn compaction_sheds_garbage_and_bytes() {
        let (heap, _, store) = run_with_churn();
        let compacted = compact(&store, heap.registry()).unwrap();
        assert!(compacted.total_bytes() < store.total_bytes());
        // Only head + current tail survive.
        let rebuilt = restore(&compacted, heap.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(rebuilt.len(), 2);
        // The uncompacted store materializes every tail ever recorded.
        let full = restore(&store, heap.registry(), RestorePolicy::Lenient).unwrap();
        assert!(full.len() > rebuilt.len());
    }

    #[test]
    fn producers_can_append_after_compaction() {
        let (mut heap, roots, store) = run_with_churn();
        let latest_seq = store.latest().unwrap().seq();
        let mut compacted = compact(&store, heap.registry()).unwrap();
        assert_eq!(compacted.latest().unwrap().seq(), latest_seq);
        let _ = node_class(&heap);

        // The original run continues: its next incremental checkpoint
        // (sequence latest+1) appends contiguously to the compacted store.
        let table = MethodTable::derive(heap.registry());
        heap.set_field(roots[0], 0, Value::Int(-1)).unwrap();
        let mut producer = Checkpointer::new(CheckpointConfig::incremental());
        let rec = producer.checkpoint(&mut heap, &table, &roots).unwrap();
        let (_, kind, rec_roots, rec_bytes, rec_stats) = rec.into_parts();
        let rec =
            CheckpointRecord::from_parts(latest_seq + 1, kind, rec_roots, rec_bytes, rec_stats);
        compacted.push(rec).unwrap();

        let rebuilt = restore(&compacted, heap.registry(), RestorePolicy::RequireFullBase).unwrap();
        assert_eq!(verify_restore(&heap, &roots, &rebuilt).unwrap(), None);
    }

    #[test]
    fn carried_sequence_number_survives_persistence() {
        use crate::persist::{load_store, save_store};
        use crate::stream::decode;
        let (heap, _, store) = run_with_churn();
        let latest_seq = store.latest().unwrap().seq();
        assert!(latest_seq > 0, "churn must advance the sequence");
        let compacted = compact(&store, heap.registry()).unwrap();
        let rec = compacted.latest().unwrap();
        // Header and wire bytes agree on the carried sequence number...
        assert_eq!(rec.seq(), latest_seq);
        assert_eq!(decode(rec.bytes(), heap.registry()).unwrap().seq, latest_seq);
        // ...so persistence, which recovers headers by decoding the
        // bytes, round-trips it.
        let mut disk = Vec::new();
        save_store(&compacted, &mut disk).unwrap();
        let loaded = load_store(disk.as_slice(), heap.registry()).unwrap();
        assert_eq!(loaded.latest().unwrap().seq(), latest_seq);
    }

    #[test]
    fn empty_store_cannot_be_compacted() {
        let reg = ClassRegistry::new();
        assert_eq!(compact(&CheckpointStore::new(), &reg).unwrap_err(), CoreError::EmptyStore);
    }
}
