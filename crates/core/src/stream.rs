//! The checkpoint wire format.
//!
//! This is the Rust analog of the paper's `DataOutputStream` composed with a
//! `ByteArrayOutputStream`: an append-only byte sink with fixed-width
//! big-endian primitive writers, plus a decoder used by restore.
//!
//! ## Layout
//!
//! ```text
//! header  := magic "ICKP" | version:u16 | seq:u64 | kind:u8 | nroots:u32 | root_id:u64 *
//! record  := 0x01 | stable:u64 | class:u32 | nfields:u16 | field-bytes (per class layout)
//! footer  := 0xFF | nrecords:u32
//! ```
//!
//! Field encodings follow [`ickp_heap::FieldType::encoded_size`]: `int` 4B,
//! `long`/`double`/`ref` 8B, `boolean` 1B. A reference is the **stable id**
//! of the referent (0 encodes `null`; live stable ids start at 1), which is
//! what lets a sequence of incremental checkpoints be stitched back
//! together by identity.

use crate::error::CoreError;
use ickp_heap::{ClassId, ClassRegistry, FieldType, StableId};

/// Magic bytes opening every checkpoint stream.
pub const MAGIC: [u8; 4] = *b"ICKP";
/// Current stream format version.
pub const VERSION: u16 = 1;

const TAG_OBJECT: u8 = 0x01;
const TAG_END: u8 = 0xFF;

/// Bytes of the per-record stream header written by
/// [`StreamWriter::begin_object`]: tag (1), stable id (8), class id (4),
/// field count (2). Static byte estimators — the shard-imbalance lint in
/// `ickp-audit`, the byte-weighted shard balancer
/// ([`ickp_heap::root_weights`] as invoked by the parallel engine) — add
/// this to each class's encoded state size to predict a record's exact
/// stream footprint.
pub const RECORD_HEADER_BYTES: usize = 1 + 8 + 4 + 2;

/// Whether a checkpoint records everything or only modified objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckpointKind {
    /// Every reachable object was recorded.
    Full,
    /// Only objects whose modified flag was set were recorded.
    Incremental,
}

impl CheckpointKind {
    fn to_byte(self) -> u8 {
        match self {
            CheckpointKind::Full => 0,
            CheckpointKind::Incremental => 1,
        }
    }

    fn from_byte(b: u8, offset: usize) -> Result<CheckpointKind, CoreError> {
        match b {
            0 => Ok(CheckpointKind::Full),
            1 => Ok(CheckpointKind::Incremental),
            other => Err(CoreError::Decode {
                offset,
                what: format!("invalid checkpoint kind byte {other}"),
            }),
        }
    }
}

/// Append-only encoder for one checkpoint.
///
/// The writer is deliberately minimal — fixed-width appends into a byte
/// vector — because its cost is part of what the paper measures as
/// "recording the local state".
#[derive(Debug)]
pub struct StreamWriter {
    buf: Vec<u8>,
    records: u32,
    finished: bool,
}

impl StreamWriter {
    /// Starts a checkpoint stream with its header.
    pub fn new(seq: u64, kind: CheckpointKind, roots: &[StableId]) -> StreamWriter {
        StreamWriter::with_buffer(Vec::with_capacity(64), seq, kind, roots)
    }

    /// Starts a checkpoint stream reusing an existing allocation, e.g. a
    /// buffer recycled through a [`BufferPool`](crate::BufferPool). The
    /// buffer is cleared (capacity retained) and then written exactly like
    /// [`StreamWriter::new`], so the resulting stream is byte-identical to
    /// a freshly allocated one.
    pub fn with_buffer(
        mut buf: Vec<u8>,
        seq: u64,
        kind: CheckpointKind,
        roots: &[StableId],
    ) -> StreamWriter {
        buf.clear();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_be_bytes());
        buf.extend_from_slice(&seq.to_be_bytes());
        buf.push(kind.to_byte());
        buf.extend_from_slice(&(roots.len() as u32).to_be_bytes());
        for r in roots {
            buf.extend_from_slice(&r.raw().to_be_bytes());
        }
        StreamWriter { buf, records: 0, finished: false }
    }

    /// Opens an object record: stable id, class, declared field count.
    /// The caller then writes exactly the fields of the class layout.
    pub fn begin_object(&mut self, stable: StableId, class: ClassId, nfields: usize) {
        debug_assert!(!self.finished, "write after finish");
        self.buf.push(TAG_OBJECT);
        self.buf.extend_from_slice(&stable.raw().to_be_bytes());
        self.buf.extend_from_slice(&(class.index() as u32).to_be_bytes());
        self.buf.extend_from_slice(&(nfields as u16).to_be_bytes());
        self.records += 1;
    }

    /// Writes a 32-bit integer field.
    #[inline]
    pub fn write_int(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a 64-bit integer field.
    #[inline]
    pub fn write_long(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a double field (bit pattern).
    #[inline]
    pub fn write_double(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// Writes a boolean field.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a reference field as the referent's stable id (`None` = null).
    #[inline]
    pub fn write_ref(&mut self, v: Option<StableId>) {
        let raw = v.map_or(0, StableId::raw);
        self.buf.extend_from_slice(&raw.to_be_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if only the header has been written and it was empty-rooted.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of object records opened so far.
    pub fn record_count(&self) -> u32 {
        self.records
    }

    /// Closes the stream with its footer and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf.push(TAG_END);
        self.buf.extend_from_slice(&self.records.to_be_bytes());
        self.finished = true;
        self.buf
    }

    /// Starts a *shard body*: a headerless record sequence produced by one
    /// worker of the parallel checkpointer. The records are byte-compatible
    /// with the main stream, so a merging writer can splice them in with
    /// [`StreamWriter::append_shard`] and the result is indistinguishable
    /// from a sequentially written stream.
    ///
    /// A shard writer must be closed with [`StreamWriter::finish_shard`]
    /// (never [`StreamWriter::finish`] — a bare body has no header for the
    /// footer to terminate).
    ///
    /// # Example
    ///
    /// ```
    /// use ickp_core::{decode, CheckpointKind, StreamWriter};
    /// use ickp_heap::{ClassRegistry, FieldType, StableId};
    ///
    /// let mut reg = ClassRegistry::new();
    /// let leaf = reg.define("Leaf", None, &[("v", FieldType::Int)]).unwrap();
    ///
    /// let mut shard = StreamWriter::new_shard();
    /// shard.begin_object(StableId(1), leaf, 1);
    /// shard.write_int(7);
    /// let (body, records) = shard.finish_shard();
    ///
    /// let mut merged = StreamWriter::new(0, CheckpointKind::Full, &[]);
    /// merged.append_shard(&body, records);
    /// let decoded = decode(&merged.finish(), &reg).unwrap();
    /// assert_eq!(decoded.objects.len(), 1);
    /// ```
    pub fn new_shard() -> StreamWriter {
        StreamWriter { buf: Vec::with_capacity(64), records: 0, finished: false }
    }

    /// Closes a shard body, returning its raw record bytes and record
    /// count. No footer is appended; the merging stream accounts for the
    /// records via [`StreamWriter::append_shard`].
    pub fn finish_shard(mut self) -> (Vec<u8>, u32) {
        self.finished = true;
        (self.buf, self.records)
    }

    /// Splices a finished shard body into this stream, as if its records
    /// had been written here directly. `records` must be the count returned
    /// by [`StreamWriter::finish_shard`] alongside `body`; it flows into
    /// this stream's footer.
    pub fn append_shard(&mut self, body: &[u8], records: u32) {
        debug_assert!(!self.finished, "write after finish");
        self.buf.extend_from_slice(body);
        self.records += records;
    }
}

/// A field value as recorded in a checkpoint: like
/// [`ickp_heap::Value`] but with references abstracted to stable ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecordedValue {
    /// 32-bit integer.
    Int(i32),
    /// 64-bit integer.
    Long(i64),
    /// Double.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Reference by stable id (`None` = null).
    Ref(Option<StableId>),
}

/// One decoded object record.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedObject {
    /// Stable identity of the recorded object.
    pub stable: StableId,
    /// Class (valid for the registry used to decode).
    pub class: ClassId,
    /// Field values in layout order.
    pub fields: Vec<RecordedValue>,
}

/// A fully decoded checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedCheckpoint {
    /// Sequence number within the run.
    pub seq: u64,
    /// Full or incremental.
    pub kind: CheckpointKind,
    /// Stable ids of the checkpoint roots.
    pub roots: Vec<StableId>,
    /// Recorded objects, in record order.
    pub objects: Vec<RecordedObject>,
}

/// The byte geography of one encoded checkpoint stream: where the
/// header ends and where each object record begins and ends.
///
/// This is what content-hash deduplication in `ickp-durable` chunks on:
/// the header (which embeds the sequence number and so never repeats)
/// and the footer stay literal, while each object record — whose bytes
/// are a pure function of the object's identity, class, and field
/// values — is a dedup candidate that recurs byte-identically whenever
/// the same object state is recorded again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamLayout {
    /// Bytes of the stream header (magic through the root table).
    pub header_len: usize,
    /// Byte range of each object record (tag byte through its last
    /// field), in stream order.
    pub objects: Vec<std::ops::Range<usize>>,
}

/// Scans an encoded checkpoint stream and returns its [`StreamLayout`]
/// without materializing any field values.
///
/// The ranges tile the stream exactly: header, then the object ranges
/// back-to-back, then the footer.
///
/// # Errors
///
/// Fails like [`decode`] on malformed bytes, unknown classes, or field
/// counts that disagree with the registry's layouts.
pub fn object_slices(bytes: &[u8], registry: &ClassRegistry) -> Result<StreamLayout, CoreError> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err(CoreError::Decode { offset: 0, what: "bad magic".into() });
    }
    let version = c.u16()?;
    if version != VERSION {
        return Err(CoreError::Decode {
            offset: 4,
            what: format!("unsupported version {version}"),
        });
    }
    let _seq = c.u64()?;
    let kind_off = c.pos;
    CheckpointKind::from_byte(c.u8()?, kind_off)?;
    let nroots = c.u32()? as usize;
    for _ in 0..nroots {
        c.u64()?;
    }
    let header_len = c.pos;
    let mut objects = Vec::new();
    loop {
        let tag_off = c.pos;
        match c.u8()? {
            TAG_OBJECT => {
                let _stable = c.u64()?;
                let class_index = c.u32()?;
                let class = ClassId::from_index(class_index as usize);
                let def =
                    registry.class(class).map_err(|_| CoreError::UnknownClassIndex(class_index))?;
                let nfields = c.u16()? as usize;
                if nfields != def.num_slots() {
                    return Err(CoreError::FieldCountMismatch {
                        class: def.name().to_string(),
                        recorded: nfields,
                        expected: def.num_slots(),
                    });
                }
                c.take(def.encoded_state_size())?;
                objects.push(tag_off..c.pos);
            }
            TAG_END => {
                let declared = c.u32()? as usize;
                if declared != objects.len() {
                    return Err(CoreError::Decode {
                        offset: tag_off,
                        what: format!(
                            "footer declares {declared} records, stream has {}",
                            objects.len()
                        ),
                    });
                }
                if c.pos != bytes.len() {
                    return Err(CoreError::Decode {
                        offset: c.pos,
                        what: "trailing bytes after footer".into(),
                    });
                }
                return Ok(StreamLayout { header_len, objects });
            }
            other => {
                return Err(CoreError::Decode {
                    offset: tag_off,
                    what: format!("invalid record tag {other:#x}"),
                })
            }
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        if self.pos + n > self.bytes.len() {
            return Err(CoreError::Decode {
                offset: self.pos,
                what: format!("unexpected end of stream (wanted {n} bytes)"),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CoreError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("length checked")))
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn i32(&mut self) -> Result<i32, CoreError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn i64(&mut self) -> Result<i64, CoreError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().expect("length checked")))
    }
}

/// Decodes one checkpoint stream against the class registry it was
/// produced with.
///
/// # Errors
///
/// Returns [`CoreError::Decode`] for malformed bytes,
/// [`CoreError::UnknownClassIndex`] for class ids outside the registry, and
/// [`CoreError::FieldCountMismatch`] if a record disagrees with its class
/// layout.
pub fn decode(bytes: &[u8], registry: &ClassRegistry) -> Result<DecodedCheckpoint, CoreError> {
    let mut c = Cursor { bytes, pos: 0 };
    let magic = c.take(4)?;
    if magic != MAGIC {
        return Err(CoreError::Decode { offset: 0, what: "bad magic".into() });
    }
    let version = c.u16()?;
    if version != VERSION {
        return Err(CoreError::Decode {
            offset: 4,
            what: format!("unsupported version {version}"),
        });
    }
    let seq = c.u64()?;
    let kind_off = c.pos;
    let kind = CheckpointKind::from_byte(c.u8()?, kind_off)?;
    let nroots = c.u32()? as usize;
    let mut roots = Vec::with_capacity(nroots.min(1024));
    for _ in 0..nroots {
        roots.push(StableId(c.u64()?));
    }
    let mut objects = Vec::new();
    loop {
        let tag_off = c.pos;
        match c.u8()? {
            TAG_OBJECT => {
                let stable = StableId(c.u64()?);
                let class_index = c.u32()?;
                let class = ClassId::from_index(class_index as usize);
                let def =
                    registry.class(class).map_err(|_| CoreError::UnknownClassIndex(class_index))?;
                let nfields = c.u16()? as usize;
                if nfields != def.num_slots() {
                    return Err(CoreError::FieldCountMismatch {
                        class: def.name().to_string(),
                        recorded: nfields,
                        expected: def.num_slots(),
                    });
                }
                let mut fields = Vec::with_capacity(nfields);
                for f in def.layout() {
                    fields.push(match f.ty() {
                        FieldType::Int => RecordedValue::Int(c.i32()?),
                        FieldType::Long => RecordedValue::Long(c.i64()?),
                        FieldType::Double => RecordedValue::Double(f64::from_bits(c.u64()?)),
                        FieldType::Bool => {
                            let off = c.pos;
                            match c.u8()? {
                                0 => RecordedValue::Bool(false),
                                1 => RecordedValue::Bool(true),
                                b => {
                                    return Err(CoreError::Decode {
                                        offset: off,
                                        what: format!("invalid boolean byte {b}"),
                                    })
                                }
                            }
                        }
                        FieldType::Ref(_) => {
                            let raw = c.u64()?;
                            RecordedValue::Ref(if raw == 0 { None } else { Some(StableId(raw)) })
                        }
                    });
                }
                objects.push(RecordedObject { stable, class, fields });
            }
            TAG_END => {
                let declared = c.u32()? as usize;
                if declared != objects.len() {
                    return Err(CoreError::Decode {
                        offset: tag_off,
                        what: format!(
                            "footer declares {declared} records, stream has {}",
                            objects.len()
                        ),
                    });
                }
                if c.pos != bytes.len() {
                    return Err(CoreError::Decode {
                        offset: c.pos,
                        what: "trailing bytes after footer".into(),
                    });
                }
                return Ok(DecodedCheckpoint { seq, kind, roots, objects });
            }
            other => {
                return Err(CoreError::Decode {
                    offset: tag_off,
                    what: format!("invalid record tag {other:#x}"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::ClassRegistry;

    fn registry() -> (ClassRegistry, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define(
                "Node",
                None,
                &[
                    ("v", FieldType::Int),
                    ("w", FieldType::Long),
                    ("x", FieldType::Double),
                    ("b", FieldType::Bool),
                    ("next", FieldType::Ref(None)),
                ],
            )
            .unwrap();
        (reg, node)
    }

    fn sample_stream(node: ClassId) -> Vec<u8> {
        let mut w = StreamWriter::new(3, CheckpointKind::Incremental, &[StableId(1)]);
        w.begin_object(StableId(1), node, 5);
        w.write_int(-7);
        w.write_long(1 << 40);
        w.write_double(2.5);
        w.write_bool(true);
        w.write_ref(Some(StableId(2)));
        w.begin_object(StableId(2), node, 5);
        w.write_int(0);
        w.write_long(0);
        w.write_double(f64::NAN);
        w.write_bool(false);
        w.write_ref(None);
        w.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (reg, node) = registry();
        let bytes = sample_stream(node);
        let d = decode(&bytes, &reg).unwrap();
        assert_eq!(d.seq, 3);
        assert_eq!(d.kind, CheckpointKind::Incremental);
        assert_eq!(d.roots, vec![StableId(1)]);
        assert_eq!(d.objects.len(), 2);
        let first = &d.objects[0];
        assert_eq!(first.stable, StableId(1));
        assert_eq!(first.class, node);
        assert_eq!(first.fields[0], RecordedValue::Int(-7));
        assert_eq!(first.fields[1], RecordedValue::Long(1 << 40));
        assert_eq!(first.fields[2], RecordedValue::Double(2.5));
        assert_eq!(first.fields[3], RecordedValue::Bool(true));
        assert_eq!(first.fields[4], RecordedValue::Ref(Some(StableId(2))));
        match d.objects[1].fields[2] {
            RecordedValue::Double(x) => assert!(x.is_nan()),
            ref other => panic!("expected double, got {other:?}"),
        }
        assert_eq!(d.objects[1].fields[4], RecordedValue::Ref(None));
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let (reg, _) = registry();
        let w = StreamWriter::new(0, CheckpointKind::Full, &[]);
        let bytes = w.finish();
        let d = decode(&bytes, &reg).unwrap();
        assert_eq!(d.kind, CheckpointKind::Full);
        assert!(d.roots.is_empty());
        assert!(d.objects.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (reg, node) = registry();
        let mut bytes = sample_stream(node);
        bytes[0] = b'X';
        let err = decode(&bytes, &reg).unwrap_err();
        assert!(matches!(err, CoreError::Decode { offset: 0, .. }));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let (reg, node) = registry();
        let bytes = sample_stream(node);
        for cut in [3, 10, 20, bytes.len() - 1] {
            assert!(decode(&bytes[..cut], &reg).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_class_index_is_rejected() {
        let (reg, _) = registry();
        let mut w = StreamWriter::new(0, CheckpointKind::Full, &[]);
        w.begin_object(StableId(1), ClassId::from_index(42), 0);
        let bytes = w.finish();
        assert_eq!(decode(&bytes, &reg).unwrap_err(), CoreError::UnknownClassIndex(42));
    }

    #[test]
    fn field_count_mismatch_is_rejected() {
        let (reg, node) = registry();
        let mut w = StreamWriter::new(0, CheckpointKind::Full, &[]);
        w.begin_object(StableId(1), node, 2); // layout has 5
        w.write_int(0);
        w.write_long(0);
        let bytes = w.finish();
        assert!(matches!(decode(&bytes, &reg).unwrap_err(), CoreError::FieldCountMismatch { .. }));
    }

    #[test]
    fn footer_count_mismatch_is_rejected() {
        let (reg, node) = registry();
        let mut bytes = sample_stream(node);
        let n = bytes.len();
        bytes[n - 1] = 9; // corrupt declared record count
        assert!(decode(&bytes, &reg).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (reg, node) = registry();
        let mut bytes = sample_stream(node);
        bytes.push(0);
        assert!(decode(&bytes, &reg).is_err());
    }

    #[test]
    fn invalid_bool_byte_is_rejected() {
        let mut reg = ClassRegistry::new();
        let c = reg.define("B", None, &[("b", FieldType::Bool)]).unwrap();
        let mut w = StreamWriter::new(0, CheckpointKind::Full, &[]);
        w.begin_object(StableId(1), c, 1);
        w.buf.push(7); // invalid boolean encoding
        let bytes = w.finish();
        assert!(decode(&bytes, &reg).is_err());
    }

    #[test]
    fn writer_tracks_length_and_record_count() {
        let (_, node) = registry();
        let mut w = StreamWriter::new(0, CheckpointKind::Full, &[]);
        let header = w.len();
        assert!(header > 0);
        assert!(!w.is_empty());
        w.begin_object(StableId(1), node, 0);
        assert_eq!(w.record_count(), 1);
        assert!(w.len() > header);
    }

    #[test]
    fn shard_merge_is_byte_identical_to_sequential_writing() {
        let (reg, node) = registry();

        // Sequential reference: both objects written into one stream.
        let sequential = sample_stream(node);

        // Sharded: the same two records written by two independent shard
        // writers, spliced in shard order.
        let mut shard0 = StreamWriter::new_shard();
        shard0.begin_object(StableId(1), node, 5);
        shard0.write_int(-7);
        shard0.write_long(1 << 40);
        shard0.write_double(2.5);
        shard0.write_bool(true);
        shard0.write_ref(Some(StableId(2)));
        let mut shard1 = StreamWriter::new_shard();
        shard1.begin_object(StableId(2), node, 5);
        shard1.write_int(0);
        shard1.write_long(0);
        shard1.write_double(f64::NAN);
        shard1.write_bool(false);
        shard1.write_ref(None);

        let mut merged = StreamWriter::new(3, CheckpointKind::Incremental, &[StableId(1)]);
        for shard in [shard0, shard1] {
            let (body, records) = shard.finish_shard();
            merged.append_shard(&body, records);
        }
        assert_eq!(merged.record_count(), 2);
        assert_eq!(merged.finish(), sequential);
        let _ = reg;
    }

    #[test]
    fn empty_shards_merge_to_an_empty_stream() {
        let (reg, _) = registry();
        let mut merged = StreamWriter::new(0, CheckpointKind::Full, &[]);
        let (body, records) = StreamWriter::new_shard().finish_shard();
        assert!(body.is_empty());
        assert_eq!(records, 0);
        merged.append_shard(&body, records);
        let d = decode(&merged.finish(), &reg).unwrap();
        assert!(d.objects.is_empty());
    }

    #[test]
    fn object_slices_tile_the_stream_exactly() {
        let (reg, node) = registry();
        let bytes = sample_stream(node);
        let layout = object_slices(&bytes, &reg).unwrap();
        assert_eq!(layout.objects.len(), 2);
        // Header, objects, footer tile the stream back-to-back.
        assert_eq!(layout.objects[0].start, layout.header_len);
        assert_eq!(layout.objects[1].start, layout.objects[0].end);
        assert_eq!(layout.objects[1].end, bytes.len() - 5); // footer = tag + u32
                                                            // Each slice decodes as the bytes of exactly that object: slicing
                                                            // the same object's state out of a re-recorded stream is
                                                            // byte-identical (the dedup premise).
        let again = object_slices(&sample_stream(node), &reg).unwrap();
        for (a, b) in layout.objects.iter().zip(&again.objects) {
            assert_eq!(&bytes[a.clone()], &sample_stream(node)[b.clone()]);
        }
    }

    #[test]
    fn object_slices_reject_malformed_streams() {
        let (reg, node) = registry();
        let bytes = sample_stream(node);
        for cut in [3, 10, 20, bytes.len() - 1] {
            assert!(object_slices(&bytes[..cut], &reg).is_err(), "cut at {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(object_slices(&bad, &reg).is_err());
        let mut w = StreamWriter::new(0, CheckpointKind::Full, &[]);
        w.begin_object(StableId(1), ClassId::from_index(42), 0);
        assert_eq!(object_slices(&w.finish(), &reg).unwrap_err(), CoreError::UnknownClassIndex(42));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (reg, _) = registry();
        let w = StreamWriter::new(0, CheckpointKind::Full, &[]);
        let mut bytes = w.finish();
        bytes[5] = 99; // version low byte
        assert!(decode(&bytes, &reg).is_err());
    }

    #[test]
    fn invalid_kind_byte_is_rejected() {
        let (reg, _) = registry();
        let w = StreamWriter::new(0, CheckpointKind::Full, &[]);
        let mut bytes = w.finish();
        bytes[14] = 9; // kind byte (4 magic + 2 version + 8 seq)
        assert!(decode(&bytes, &reg).is_err());
    }
}
