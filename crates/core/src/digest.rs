//! Cheap full-traversal digest of a heap's reachable logical state.
//!
//! [`state_digest`] folds a depth-first pre-order over the objects
//! reachable from the roots into a single FNV-1a hash: per object its
//! stable id, class name, and field values, with references folded by the
//! *stable id* of the referent. Two heaps — even in different arenas, with
//! different `ObjectId` handles — digest equal exactly when a checkpoint
//! of one restores to the logical state of the other, because the digest
//! covers precisely what the stream format records, in the order the
//! stream records it.
//!
//! The `barrier-sanitize` feature of `ickp-backend` uses this as its
//! ground truth: after every checkpoint it digests the live heap and a
//! shadow heap folded from the emitted records, so an under-journaling
//! write barrier (a modified object missing from the stream) surfaces as
//! a digest mismatch instead of silently shipping a wrong stream.

use crate::error::CoreError;
use ickp_heap::{Heap, ObjectId, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(hash: &mut u64, bytes: &[u8]) {
    for &byte in bytes {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn fold_u64(hash: &mut u64, v: u64) {
    fold(hash, &v.to_le_bytes());
}

/// FNV-1a digest of the logical state reachable from `roots` in `heap`.
///
/// Arena-independent (stable ids only), order-sensitive (depth-first
/// pre-order, children in field order, roots left to right — the stream
/// emission order), and cheap: one traversal, no allocations beyond the
/// visit stack and seen-set.
///
/// # Errors
///
/// Returns [`CoreError::Heap`] if a root or a traversed reference
/// dangles.
pub fn state_digest(heap: &Heap, roots: &[ObjectId]) -> Result<u64, CoreError> {
    let mut hash = FNV_OFFSET;
    let mut seen = vec![false; heap.arena_size()];
    let mut stack: Vec<ObjectId> = Vec::new();
    fold_u64(&mut hash, roots.len() as u64);
    for &root in roots {
        fold_u64(&mut hash, heap.stable_id(root)?.raw());
        stack.push(root);
        while let Some(id) = stack.pop() {
            let slot = id.index();
            if seen[slot] {
                continue;
            }
            seen[slot] = true;
            let obj = heap.object(id)?;
            fold_u64(&mut hash, obj.info().stable_id().raw());
            let class = heap.class(obj.class())?;
            fold(&mut hash, class.name().as_bytes());
            for value in obj.fields() {
                match *value {
                    Value::Int(v) => {
                        fold(&mut hash, b"i");
                        fold(&mut hash, &v.to_le_bytes());
                    }
                    Value::Long(v) => {
                        fold(&mut hash, b"l");
                        fold(&mut hash, &v.to_le_bytes());
                    }
                    Value::Double(v) => {
                        fold(&mut hash, b"d");
                        fold(&mut hash, &v.to_bits().to_le_bytes());
                    }
                    Value::Bool(v) => {
                        fold(&mut hash, b"b");
                        fold(&mut hash, &[u8::from(v)]);
                    }
                    Value::Ref(None) => fold(&mut hash, b"n"),
                    Value::Ref(Some(child)) => {
                        fold(&mut hash, b"r");
                        fold_u64(&mut hash, heap.stable_id(child)?.raw());
                    }
                }
            }
            // Push children in reverse so they pop in field order,
            // matching the recursive pre-order the stream writer uses.
            for value in obj.fields().iter().rev() {
                if let Value::Ref(Some(child)) = *value {
                    if !seen[child.index()] {
                        stack.push(child);
                    }
                }
            }
        }
    }
    Ok(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::{ClassRegistry, FieldType};

    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
        reg
    }

    fn chain(values: &[i32]) -> (Heap, Vec<ObjectId>) {
        let reg = registry();
        let node = reg.id_of("Node").unwrap();
        let mut heap = Heap::new(reg);
        let mut next = None;
        let mut head = None;
        for &v in values.iter().rev() {
            let id = heap.alloc(node).unwrap();
            heap.set_field(id, 0, Value::Int(v)).unwrap();
            heap.set_field(id, 1, Value::Ref(next)).unwrap();
            next = Some(id);
            head = Some(id);
        }
        (heap, vec![head.unwrap()])
    }

    #[test]
    fn logically_equal_heaps_digest_equal_across_arenas() {
        let (a, ra) = chain(&[1, 2, 3]);
        let (mut b, rb) = chain(&[1, 2, 3]);
        // Different arena layout: churn some slots in b.
        let node = b.registry().id_of("Node").unwrap();
        let junk = b.alloc(node).unwrap();
        b.free(junk).unwrap();
        assert_eq!(state_digest(&a, &ra).unwrap(), state_digest(&b, &rb).unwrap());
    }

    #[test]
    fn field_and_shape_changes_change_the_digest() {
        let (a, ra) = chain(&[1, 2, 3]);
        let base = state_digest(&a, &ra).unwrap();

        let (mut b, rb) = chain(&[1, 2, 3]);
        b.set_field(rb[0], 0, Value::Int(9)).unwrap();
        assert_ne!(base, state_digest(&b, &rb).unwrap(), "scalar change");

        let (mut c, rc) = chain(&[1, 2, 3]);
        c.set_field(rc[0], 1, Value::Ref(None)).unwrap();
        assert_ne!(base, state_digest(&c, &rc).unwrap(), "reachability change");

        let (e, re) = chain(&[1, 2]);
        assert_ne!(base, state_digest(&e, &re).unwrap(), "different length");
    }

    #[test]
    fn unbarriered_stores_change_the_digest_too() {
        // The whole point: the digest sees bytes, not modified flags.
        let (mut a, ra) = chain(&[1, 2]);
        a.reset_all_modified();
        let base = state_digest(&a, &ra).unwrap();
        a.set_field_unbarriered(ra[0], 0, Value::Int(5)).unwrap();
        assert!(!a.is_modified(ra[0]).unwrap(), "the store left no barrier trace");
        assert_ne!(base, state_digest(&a, &ra).unwrap(), "but the digest still catches it");
    }
}
