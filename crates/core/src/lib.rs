//! # ickp-core — generic language-level checkpointing
//!
//! The faithful, *unspecialized* implementation of the checkpointing scheme
//! of Lawall & Muller (DSN 2000), §2: every class gets systematically
//! derived `record`/`fold` methods ([`MethodTable`]), and a generic driver
//! ([`Checkpointer`]) traverses compound structures testing per-object
//! modified flags, recording modified objects into a binary stream
//! ([`StreamWriter`]), and resetting the flags.
//!
//! Checkpoints accumulate in a [`CheckpointStore`]; [`restore`] rebuilds
//! the program state from the base-plus-increments sequence and
//! [`verify_restore`] proves the rebuild exact.
//!
//! [`Checkpointer::checkpoint_parallel`] is the parallel sharded engine:
//! the same traversal spread over worker threads via a root-set partition,
//! producing byte-identical checkpoints (see the `parallel` module docs).
//!
//! The deliberate inefficiencies of this crate — one dynamic dispatch per
//! object per method, a flag test per object, a full traversal even when
//! nothing changed — are the paper's motivation; `ickp-spec` removes them
//! by specialization.
//!
//! ## Example
//!
//! ```
//! use ickp_heap::{ClassRegistry, FieldType, Heap, Value};
//! use ickp_core::{
//!     restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer, MethodTable,
//!     RestorePolicy,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = ClassRegistry::new();
//! let node = reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])?;
//! let mut heap = Heap::new(reg);
//! let tail = heap.alloc(node)?;
//! let head = heap.alloc(node)?;
//! heap.set_field(head, 1, Value::Ref(Some(tail)))?;
//!
//! let table = MethodTable::derive(heap.registry());
//! let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
//! let mut store = CheckpointStore::new();
//!
//! store.push(ckp.checkpoint(&mut heap, &table, &[head])?)?;   // records both (fresh)
//! heap.set_field(tail, 0, Value::Int(9))?;                    // barrier marks tail
//! store.push(ckp.checkpoint(&mut heap, &table, &[head])?)?;   // records only tail
//!
//! let rebuilt = restore(&store, heap.registry(), RestorePolicy::Lenient)?;
//! assert_eq!(verify_restore(&heap, &[head], &rebuilt)?, None); // states identical
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod compact;
mod digest;
mod error;
mod journal;
mod methods;
mod parallel;
mod persist;
mod pool;
mod restore;
mod sink;
mod stats;
mod store;
mod stream;

pub use checkpoint::{CheckpointConfig, CheckpointRecord, Checkpointer, ShardBalance};
pub use compact::compact;
pub use digest::state_digest;
pub use error::CoreError;
pub use journal::{journal_dirty_set, JournalCache, JournalCacheBuilder};
pub use methods::{FoldFn, MethodTable, RecordFn};
pub use parallel::{plan_shards, ParallelPhases, ShardAccess, ShardTrace};
pub use persist::{load_store, save_store, MAX_RECORD_LEN};
pub use pool::BufferPool;
pub use restore::{restore, verify_restore, RestorePolicy, RestoredHeap};
pub use sink::{AckHook, RecordSink};
pub use stats::TraversalStats;
pub use store::CheckpointStore;
pub use stream::{
    decode, object_slices, CheckpointKind, DecodedCheckpoint, RecordedObject, RecordedValue,
    StreamLayout, StreamWriter, MAGIC, RECORD_HEADER_BYTES, VERSION,
};
