//! The parallel sharded checkpoint engine.
//!
//! [`Checkpointer::checkpoint_parallel`] splits the root set into disjoint
//! ownership shards (via [`ickp_heap::partition_roots`]), traverses each
//! shard on its own OS thread, and splices the per-shard record streams
//! back into one stream. The result is **byte-for-byte identical** to what
//! [`Checkpointer::checkpoint`] produces on the same heap state — same
//! header, same record order, same footer, same [`TraversalStats`] — so
//! every downstream consumer (store, compaction, restore, verification) is
//! oblivious to how the checkpoint was produced.
//!
//! Three properties make this sound:
//!
//! 1. **Read-only traversal.** Workers only *read* the heap; the one
//!    mutation of a checkpoint — resetting modified flags — is deferred and
//!    applied sequentially after all workers join. The [`MethodTable`]'s
//!    closures are `Send + Sync`, so one table serves every worker.
//! 2. **First-touch ownership.** Each reachable object is owned by exactly
//!    one shard (the lowest-index shard reaching it), so no object is
//!    recorded twice and workers can prune their traversal at any foreign
//!    object (everything beyond it belongs to an earlier shard).
//! 3. **Order-preserving merge.** Shards are contiguous chunks of the root
//!    order, so concatenating shard bodies in shard order reproduces the
//!    sequential depth-first pre-order exactly (see
//!    [`ickp_heap::ShardPlan`]).

use crate::checkpoint::{CheckpointRecord, Checkpointer};
use crate::error::CoreError;
use crate::journal::JournalCache;
use crate::methods::MethodTable;
use crate::stats::TraversalStats;
use crate::stream::{CheckpointKind, StreamWriter};
use ickp_heap::{partition_roots, Heap, ObjectId, ShardPlan, StableId};

/// A [`ShardPlan`] cached across parallel checkpoints, valid while the
/// heap structure, root set, and worker count are unchanged (the same
/// validity rule as [`JournalCache`]).
#[derive(Debug)]
pub(crate) struct PlanCache {
    structure_version: u64,
    roots: Vec<ObjectId>,
    workers: usize,
    plan: ShardPlan,
}

impl PlanCache {
    fn matches(&self, heap: &Heap, roots: &[ObjectId], workers: usize) -> bool {
        self.structure_version == heap.structure_version()
            && self.workers == workers
            && self.roots == roots
    }
}

/// What one shard actually touched during a traced parallel checkpoint.
///
/// This is the *dynamic* counterpart of the static shard footprint that
/// `ickp-audit`'s `audit_shards` computes: the access sanitizer in
/// `ickp-backend` compares the two, and the audit crate's cross-validator
/// asserts `visited` ⊆ the static footprint on randomized heaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAccess {
    /// Every object the shard visited, in visit order.
    pub visited: Vec<ObjectId>,
    /// The subset of `visited` the shard emitted a record for.
    pub recorded: Vec<ObjectId>,
    /// The shard's traversal counters; `bytes_written` is the shard's
    /// share of the record body (headers excluded).
    pub stats: TraversalStats,
}

/// Per-shard access sets observed while producing one parallel checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTrace {
    /// `true` when the checkpoint was served by the journal fast path:
    /// no shard workers ran, and `shards` is empty.
    pub fast_path: bool,
    /// One entry per shard, in shard (= stream merge) order.
    pub shards: Vec<ShardAccess>,
}

/// What one worker hands back: its record bytes plus deferred bookkeeping.
struct ShardOutput {
    body: Vec<u8>,
    records: u32,
    stats: TraversalStats,
    /// Objects recorded by this shard, whose modified flags still need
    /// resetting (workers cannot: they hold the heap immutably).
    recorded: Vec<ObjectId>,
    /// Every object this shard visited, in visit order — concatenated in
    /// shard order this reproduces the sequential depth-first pre-order
    /// (merge invariant 3), which is what the journal cache needs.
    /// Collected only when the driver has the journal enabled.
    visit_order: Vec<ObjectId>,
}

/// One shard's traversal: the sequential checkpoint loop restricted to the
/// objects this shard owns, writing into a headerless shard stream.
fn shard_worker(
    heap: &Heap,
    methods: &MethodTable,
    plan: &ShardPlan,
    shard: usize,
    kind: CheckpointKind,
    collect_order: bool,
) -> Result<ShardOutput, CoreError> {
    let mut writer = StreamWriter::new_shard();
    let mut stats = TraversalStats::default();
    let mut recorded = Vec::new();
    let mut visit_order = Vec::new();
    let mut stack: Vec<ObjectId> = plan.roots(shard).iter().rev().copied().collect();
    // Dense slot-indexed visited set (see `Heap::arena_size`): cheaper per
    // step than hashing, and allocated per worker so shards stay independent.
    let mut visited = vec![false; heap.arena_size()];
    while let Some(id) = stack.pop() {
        // Prune at foreign objects: whatever lies beyond them is owned by
        // an earlier shard (first-touch ownership is reachability-closed).
        if !plan.owns(shard, id) || std::mem::replace(&mut visited[id.index()], true) {
            continue;
        }
        stats.objects_visited += 1;
        if collect_order {
            visit_order.push(id);
        }

        let record_it = match kind {
            CheckpointKind::Full => true,
            CheckpointKind::Incremental => {
                stats.flag_tests += 1;
                heap.is_modified(id)?
            }
        };
        let class = heap.class_of(id)?;
        if record_it {
            let def = heap.class(class)?;
            writer.begin_object(heap.stable_id(id)?, class, def.num_slots());
            stats.virtual_calls += 1;
            methods.record(class)?(heap, id, &mut writer)?;
            stats.objects_recorded += 1;
            recorded.push(id);
        }

        stats.virtual_calls += 1;
        let before = stack.len();
        methods.fold(class)?(heap, id, &mut |child| {
            stack.push(child);
            Ok(())
        })?;
        stats.refs_followed += (stack.len() - before) as u64;
        stack[before..].reverse();
    }
    let (body, records) = writer.finish_shard();
    Ok(ShardOutput { body, records, stats, recorded, visit_order })
}

impl Checkpointer {
    /// Takes one checkpoint of everything reachable from `roots`, spread
    /// over up to `workers` threads.
    ///
    /// Semantically identical to [`Checkpointer::checkpoint`]: the returned
    /// [`CheckpointRecord`] — bytes, roots, kind, sequence number and
    /// traversal counters — is byte-for-byte what the sequential driver
    /// would have produced on the same heap state, and the same modified
    /// flags are reset. `workers` is clamped to the number of roots (one
    /// shard needs at least one root) and values of 0 or 1 degrade to a
    /// single worker thread.
    ///
    /// The engine performs one extra sequential pre-pass over the
    /// reachability graph to compute shard ownership, so the parallel
    /// speedup ceiling is governed by how much recording work each
    /// traversal step carries.
    ///
    /// # Errors
    ///
    /// Fails like [`Checkpointer::checkpoint`]. If any shard fails, the
    /// first error (in shard order) is returned and *no* modified flags
    /// are reset.
    ///
    /// # Example
    ///
    /// ```
    /// use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
    /// use ickp_heap::{ClassRegistry, FieldType, Heap, Value};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut reg = ClassRegistry::new();
    /// let node = reg.define("Node", None, &[("v", FieldType::Int)])?;
    /// let mut heap = Heap::new(reg);
    /// let roots: Vec<_> = (0..8).map(|_| heap.alloc(node)).collect::<Result<_, _>>()?;
    ///
    /// let table = MethodTable::derive(heap.registry());
    /// let mut sequential = Checkpointer::new(CheckpointConfig::incremental());
    /// let mut parallel = Checkpointer::new(CheckpointConfig::incremental());
    ///
    /// let reference = sequential.checkpoint(&mut heap.clone(), &table, &roots)?;
    /// let sharded = parallel.checkpoint_parallel(&mut heap, &table, &roots, 4)?;
    /// assert_eq!(sharded.bytes(), reference.bytes());
    /// assert_eq!(sharded.stats(), reference.stats());
    /// # Ok(()) }
    /// ```
    pub fn checkpoint_parallel(
        &mut self,
        heap: &mut Heap,
        methods: &MethodTable,
        roots: &[ObjectId],
        workers: usize,
    ) -> Result<CheckpointRecord, CoreError> {
        self.checkpoint_parallel_impl(heap, methods, roots, workers, false)
            .map(|(record, _)| record)
    }

    /// [`Checkpointer::checkpoint_parallel`], additionally returning the
    /// per-shard access sets observed during the traversal.
    ///
    /// The record is byte-for-byte the same either way; tracing only adds
    /// bookkeeping (each shard keeps its visit order and recorded set).
    /// This is the probe behind the `sanitize` feature of `ickp-backend`
    /// and the shard-audit cross-validator: the returned [`ShardTrace`]
    /// is what the shards *actually* touched, to be checked against what
    /// the static analysis said they *may* touch.
    ///
    /// # Errors
    ///
    /// Fails like [`Checkpointer::checkpoint_parallel`].
    pub fn checkpoint_parallel_traced(
        &mut self,
        heap: &mut Heap,
        methods: &MethodTable,
        roots: &[ObjectId],
        workers: usize,
    ) -> Result<(CheckpointRecord, ShardTrace), CoreError> {
        self.checkpoint_parallel_impl(heap, methods, roots, workers, true)
            .map(|(record, trace)| (record, trace.expect("tracing was requested")))
    }

    fn checkpoint_parallel_impl(
        &mut self,
        heap: &mut Heap,
        methods: &MethodTable,
        roots: &[ObjectId],
        workers: usize,
        trace: bool,
    ) -> Result<(CheckpointRecord, Option<ShardTrace>), CoreError> {
        let seq = self.next_seq;
        let kind = self.config.kind;
        let root_ids: Vec<StableId> =
            roots.iter().map(|&r| heap.stable_id(r)).collect::<Result<_, _>>()?;
        if self.journal_usable(heap, roots) {
            // The fast path emits O(modified) records sequentially; there
            // is nothing left to parallelize, and the output is the same
            // byte-identical stream either way.
            let record = self.checkpoint_from_journal(heap, methods, root_ids)?;
            self.last_shard_stats = vec![record.stats()];
            let fast = trace.then(|| ShardTrace { fast_path: true, shards: Vec::new() });
            return Ok((record, fast));
        }
        let plan = match self.plan_cache.take() {
            Some(cached) if cached.matches(heap, roots, workers) => cached.plan,
            _ => partition_roots(heap, roots, workers)?,
        };
        let journal_wanted = self.config.journal && kind == CheckpointKind::Incremental;
        let collect_order = journal_wanted || trace;

        let outputs: Vec<Result<ShardOutput, CoreError>> = std::thread::scope(|scope| {
            let heap = &*heap;
            let plan = &plan;
            let handles: Vec<_> = (0..plan.num_shards())
                .map(|shard| {
                    scope.spawn(move || {
                        shard_worker(heap, methods, plan, shard, kind, collect_order)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker does not panic")).collect()
        });

        let (mut writer, reused) = self.writer_for(seq, kind, &root_ids);
        let mut stats = TraversalStats::default();
        let mut to_reset: Vec<ObjectId> = Vec::new();
        let mut builder = journal_wanted.then(|| JournalCache::builder(heap, roots));
        let mut accesses = trace.then(Vec::new);
        self.last_shard_stats.clear();
        for output in outputs {
            let mut out = output?;
            // Per-shard bytes are this shard's body; the aggregate
            // `bytes_written` is replaced by the full stream length below,
            // so the sum here never leaks into the record's stats.
            out.stats.bytes_written = out.body.len() as u64;
            writer.append_shard(&out.body, out.records);
            stats += out.stats;
            self.last_shard_stats.push(out.stats);
            if let Some(accesses) = &mut accesses {
                accesses.push(ShardAccess {
                    visited: out.visit_order.clone(),
                    recorded: out.recorded.clone(),
                    stats: out.stats,
                });
            }
            to_reset.extend(out.recorded);
            if let Some(builder) = &mut builder {
                // Shard visit orders concatenated in shard order are the
                // sequential depth-first pre-order (merge invariant 3), so
                // the cache built here equals the sequential driver's.
                for id in out.visit_order {
                    builder.visit(id);
                }
            }
        }
        for id in to_reset {
            heap.reset_modified(id)?;
        }
        if let Some(builder) = builder {
            self.cache = Some(builder.finish());
            heap.finish_journal_epoch();
        }
        stats.bytes_reused = reused;
        self.plan_cache = Some(PlanCache {
            structure_version: heap.structure_version(),
            roots: roots.to_vec(),
            workers,
            plan,
        });

        stats.bytes_written = writer.len() as u64;
        let bytes = writer.finish();
        self.next_seq += 1;
        self.cumulative += stats;
        let record = CheckpointRecord::pooled(seq, kind, root_ids, bytes, stats, self.pool.clone());
        let shard_trace = accesses.map(|shards| ShardTrace { fast_path: false, shards });
        Ok((record, shard_trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointConfig;
    use crate::restore::{restore, verify_restore, RestorePolicy};
    use crate::store::CheckpointStore;
    use crate::stream::decode;
    use ickp_heap::{ClassId, ClassRegistry, FieldType, Value};

    fn setup() -> (Heap, ClassId, MethodTable) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let table = MethodTable::derive(&reg);
        (Heap::new(reg), node, table)
    }

    /// `n` chains of length 3 with some sharing between neighbours.
    fn world(n: usize) -> (Heap, MethodTable, Vec<ObjectId>) {
        let (mut heap, node, table) = setup();
        let mut roots = Vec::new();
        let mut prev_mid = None;
        for i in 0..n {
            let tail = heap.alloc(node).unwrap();
            let mid = heap.alloc(node).unwrap();
            let head = heap.alloc(node).unwrap();
            heap.set_field(head, 0, Value::Int(i as i32)).unwrap();
            heap.set_field(head, 1, Value::Ref(Some(mid))).unwrap();
            heap.set_field(mid, 1, Value::Ref(Some(tail))).unwrap();
            // Every third structure also points at its neighbour's middle
            // node, giving the partitioner cross-shard sharing to resolve.
            if i % 3 == 0 {
                if let Some(shared) = prev_mid {
                    heap.set_field(tail, 1, Value::Ref(Some(shared))).unwrap();
                }
            }
            prev_mid = Some(mid);
            roots.push(head);
        }
        (heap, table, roots)
    }

    fn assert_matches_sequential(kind: CheckpointConfig, workers: usize) {
        let (mut heap, table, roots) = world(10);
        let mut reference_heap = heap.clone();
        let mut seq_ckp = Checkpointer::new(kind);
        let mut par_ckp = Checkpointer::new(kind);
        let reference = seq_ckp.checkpoint(&mut reference_heap, &table, &roots).unwrap();
        let sharded = par_ckp.checkpoint_parallel(&mut heap, &table, &roots, workers).unwrap();
        assert_eq!(sharded.bytes(), reference.bytes(), "workers={workers}");
        assert_eq!(sharded.stats(), reference.stats(), "workers={workers}");
        assert_eq!(sharded.roots(), reference.roots());
        assert_eq!(
            ickp_heap::HeapSnapshot::capture(&heap, &roots).unwrap(),
            ickp_heap::HeapSnapshot::capture(&reference_heap, &roots).unwrap()
        );
    }

    #[test]
    fn parallel_full_checkpoint_is_byte_identical_to_sequential() {
        for workers in [1, 2, 3, 4, 8, 100] {
            assert_matches_sequential(CheckpointConfig::full(), workers);
        }
    }

    #[test]
    fn parallel_incremental_checkpoint_is_byte_identical_to_sequential() {
        for workers in [1, 2, 4, 7] {
            assert_matches_sequential(CheckpointConfig::incremental(), workers);
        }
    }

    #[test]
    fn parallel_incremental_resets_exactly_the_recorded_flags() {
        let (mut heap, table, roots) = world(6);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        ckp.checkpoint_parallel(&mut heap, &table, &roots, 3).unwrap();
        for &r in &roots {
            assert!(!heap.is_modified(r).unwrap());
        }
        heap.set_field(roots[2], 0, Value::Int(77)).unwrap();
        let rec = ckp.checkpoint_parallel(&mut heap, &table, &roots, 3).unwrap();
        assert_eq!(rec.stats().objects_recorded, 1);
        assert_eq!(rec.seq(), 1);
        let d = decode(rec.bytes(), heap.registry()).unwrap();
        assert_eq!(d.objects[0].stable, heap.stable_id(roots[2]).unwrap());
    }

    #[test]
    fn parallel_checkpoints_restore_exactly() {
        let (mut heap, table, roots) = world(9);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        store.push(ckp.checkpoint_parallel(&mut heap, &table, &roots, 4).unwrap()).unwrap();
        for (i, &r) in roots.iter().enumerate() {
            if i % 2 == 0 {
                heap.set_field(r, 0, Value::Int(1000 + i as i32)).unwrap();
            }
        }
        store.push(ckp.checkpoint_parallel(&mut heap, &table, &roots, 4).unwrap()).unwrap();
        let rebuilt = restore(&store, heap.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(&heap, &roots, &rebuilt).unwrap(), None);
    }

    #[test]
    fn empty_roots_match_sequential() {
        let (mut heap, _, table) = setup();
        let mut seq_ckp = Checkpointer::new(CheckpointConfig::full());
        let mut par_ckp = Checkpointer::new(CheckpointConfig::full());
        let reference = seq_ckp.checkpoint(&mut heap.clone(), &table, &[]).unwrap();
        let sharded = par_ckp.checkpoint_parallel(&mut heap, &table, &[], 4).unwrap();
        assert_eq!(sharded.bytes(), reference.bytes());
    }

    #[test]
    fn duplicate_roots_are_recorded_once() {
        let (mut heap, table, mut roots) = world(4);
        roots.push(roots[0]);
        roots.push(roots[3]);
        let mut reference_heap = heap.clone();
        let reference = Checkpointer::new(CheckpointConfig::full())
            .checkpoint(&mut reference_heap, &table, &roots)
            .unwrap();
        let sharded = Checkpointer::new(CheckpointConfig::full())
            .checkpoint_parallel(&mut heap, &table, &roots, 3)
            .unwrap();
        assert_eq!(sharded.bytes(), reference.bytes());
    }

    #[test]
    fn traced_checkpoint_reports_disjoint_accesses_in_merge_order() {
        let (mut heap, table, roots) = world(8);
        let mut reference_heap = heap.clone();
        let reference = Checkpointer::new(CheckpointConfig::full())
            .checkpoint(&mut reference_heap, &table, &roots)
            .unwrap();
        let mut ckp = Checkpointer::new(CheckpointConfig::full());
        let (record, trace) = ckp.checkpoint_parallel_traced(&mut heap, &table, &roots, 4).unwrap();
        assert_eq!(record.bytes(), reference.bytes(), "tracing never perturbs the stream");
        assert!(!trace.fast_path);
        assert_eq!(trace.shards.len(), 4);

        // Visit orders are pairwise disjoint and concatenate to the
        // sequential pre-order; full checkpoints record what they visit.
        let mut seen = std::collections::HashSet::new();
        let mut merged = Vec::new();
        for access in &trace.shards {
            assert_eq!(access.visited, access.recorded);
            for &id in &access.visited {
                assert!(seen.insert(id), "object {id:?} touched by two shards");
            }
            merged.extend(access.visited.iter().copied());
        }
        assert_eq!(merged, ickp_heap::reachable_from(&heap, &roots).unwrap());

        // The surfaced per-shard stats are the trace's, and the per-shard
        // body bytes sum to the full stream minus its header/footer.
        let shard_stats: Vec<_> = trace.shards.iter().map(|a| a.stats).collect();
        assert_eq!(ckp.shard_stats(), &shard_stats[..]);
        let body: u64 = shard_stats.iter().map(|s| s.bytes_written).sum();
        assert!(body < record.stats().bytes_written);
        assert_eq!(
            shard_stats.iter().map(|s| s.objects_recorded).sum::<u64>(),
            record.stats().objects_recorded
        );
    }

    #[test]
    fn fast_path_trace_is_marked_and_has_no_shards() {
        let (mut heap, table, roots) = world(4);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let (_, first) = ckp.checkpoint_parallel_traced(&mut heap, &table, &roots, 2).unwrap();
        assert!(!first.fast_path);
        assert_eq!(ckp.shard_stats().len(), 2);
        // Nothing dirty: the journal serves the next one sequentially.
        let (record, second) =
            ckp.checkpoint_parallel_traced(&mut heap, &table, &roots, 2).unwrap();
        assert!(second.fast_path);
        assert!(second.shards.is_empty());
        assert_eq!(ckp.shard_stats(), &[record.stats()]);
    }

    #[test]
    fn cumulative_stats_and_sequence_numbers_advance() {
        let (mut heap, table, roots) = world(5);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        ckp.checkpoint_parallel(&mut heap, &table, &roots, 2).unwrap();
        ckp.checkpoint_parallel(&mut heap, &table, &roots, 2).unwrap();
        assert_eq!(ckp.next_seq(), 2);
        // The second round rides the journal fast path: nothing dirty,
        // nothing visited.
        assert_eq!(ckp.cumulative_stats().objects_visited, 15);
        assert_eq!(ckp.cumulative_stats().subtrees_pruned, 15);
    }
}
