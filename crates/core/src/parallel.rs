//! The parallel sharded checkpoint engine.
//!
//! [`Checkpointer::checkpoint_parallel`] splits the root set into disjoint
//! ownership shards (via [`ickp_heap::partition_roots_parallel`] or its
//! byte-weighted sibling, both of which run the first-touch pre-pass in
//! parallel), traverses each shard on its own OS thread, and splices the
//! per-shard record streams back into one stream. The result is **byte-for-byte identical** to what
//! [`Checkpointer::checkpoint`] produces on the same heap state — same
//! header, same record order, same footer, same [`TraversalStats`] — so
//! every downstream consumer (store, compaction, restore, verification) is
//! oblivious to how the checkpoint was produced.
//!
//! Three properties make this sound:
//!
//! 1. **Read-only traversal.** Workers only *read* the heap; the one
//!    mutation of a checkpoint — resetting modified flags — is deferred and
//!    applied sequentially after all workers join. The [`MethodTable`]'s
//!    closures are `Send + Sync`, so one table serves every worker.
//! 2. **First-touch ownership.** Each reachable object is owned by exactly
//!    one shard (the lowest-index shard reaching it), so no object is
//!    recorded twice and workers can prune their traversal at any foreign
//!    object (everything beyond it belongs to an earlier shard).
//! 3. **Order-preserving merge.** Shards are contiguous chunks of the root
//!    order, so concatenating shard bodies in shard order reproduces the
//!    sequential depth-first pre-order exactly (see
//!    [`ickp_heap::ShardPlan`]).

use crate::checkpoint::{CheckpointRecord, Checkpointer, ShardBalance};
use crate::error::CoreError;
use crate::journal::JournalCache;
use crate::methods::MethodTable;
use crate::stats::TraversalStats;
use crate::stream::{CheckpointKind, StreamWriter, RECORD_HEADER_BYTES};
use ickp_heap::{
    partition_roots_parallel, partition_roots_weighted, root_weights, Heap, ObjectId, ShardPlan,
    StableId,
};
use std::time::{Duration, Instant};

/// A [`ShardPlan`] cached across parallel checkpoints, valid while the
/// heap structure, root set, and worker count are unchanged (the same
/// validity rule as [`JournalCache`]).
#[derive(Debug)]
pub(crate) struct PlanCache {
    structure_version: u64,
    roots: Vec<ObjectId>,
    workers: usize,
    plan: ShardPlan,
}

impl PlanCache {
    fn matches(&self, heap: &Heap, roots: &[ObjectId], workers: usize) -> bool {
        self.structure_version == heap.structure_version()
            && self.workers == workers
            && self.roots == roots
    }
}

/// Wall-clock decomposition of one parallel checkpoint, recorded by
/// [`Checkpointer::checkpoint_parallel`] and read back through
/// [`Checkpointer::parallel_phases`].
///
/// This replaces the old *projected* Amdahl decomposition: instead of
/// timing `partition_roots` in isolation and extrapolating, the engine
/// stamps its own phases, so benchmarks and the `repro scaling` gate
/// report what actually happened — including the effect of the plan cache
/// and of the parallel pre-pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelPhases {
    /// Building the [`ShardPlan`]: byte weighing (when balancing by
    /// bytes) plus the parallel first-touch ownership pass. Zero when the
    /// cached plan was reused.
    pub plan: Duration,
    /// Shard workers, spawn to last join — the parallel section.
    pub traverse: Duration,
    /// Sequential epilogue: splicing shard bodies, stats/journal-cache
    /// bookkeeping, modified-flag resets.
    pub merge: Duration,
    /// `true` when the shard plan came from the cache (no pre-pass ran).
    pub plan_cached: bool,
    /// `true` when the journal fast path served the checkpoint: no shard
    /// workers ran and the phase durations above are all zero.
    pub fast_path: bool,
}

impl ParallelPhases {
    /// Total engine time accounted to the three phases.
    pub fn total(&self) -> Duration {
        self.plan + self.traverse + self.merge
    }

    /// Fraction of the accounted time spent outside the parallel section
    /// (plan + merge) — the measured serial fraction of this checkpoint.
    /// `0.0` when nothing was accounted (fast path).
    pub fn serial_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        (self.plan + self.merge).as_secs_f64() / total
    }
}

/// Builds the [`ShardPlan`] the parallel engine uses for `(roots,
/// workers)` under `balance` — the single source of truth for planning,
/// shared by [`Checkpointer::checkpoint_parallel`], the shard audit's
/// cross-validator, and the scaling harness, so a plan computed outside
/// the engine is guaranteed to equal the one the engine runs.
///
/// Both strategies run the first-touch pre-pass in parallel;
/// [`ShardBalance::Bytes`] first weighs each root by its estimated stream
/// contribution ([`root_weights`] with the record-header overhead) and
/// places boundaries by prefix sum.
///
/// # Errors
///
/// Propagates heap errors (e.g. dangling references) from the traversals.
pub fn plan_shards(
    heap: &Heap,
    roots: &[ObjectId],
    workers: usize,
    balance: ShardBalance,
) -> Result<ShardPlan, CoreError> {
    let plan = match balance {
        ShardBalance::RootCount => partition_roots_parallel(heap, roots, workers)?,
        ShardBalance::Bytes => {
            let weights = root_weights(heap, roots, RECORD_HEADER_BYTES as u64)?;
            partition_roots_weighted(heap, roots, &weights, workers)?
        }
    };
    Ok(plan)
}

/// What one shard actually touched during a traced parallel checkpoint.
///
/// This is the *dynamic* counterpart of the static shard footprint that
/// `ickp-audit`'s `audit_shards` computes: the access sanitizer in
/// `ickp-backend` compares the two, and the audit crate's cross-validator
/// asserts `visited` ⊆ the static footprint on randomized heaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAccess {
    /// Every object the shard visited, in visit order.
    pub visited: Vec<ObjectId>,
    /// The subset of `visited` the shard emitted a record for.
    pub recorded: Vec<ObjectId>,
    /// The shard's traversal counters; `bytes_written` is the shard's
    /// share of the record body (headers excluded).
    pub stats: TraversalStats,
}

/// Per-shard access sets observed while producing one parallel checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTrace {
    /// `true` when the checkpoint was served by the journal fast path:
    /// no shard workers ran, and `shards` is empty.
    pub fast_path: bool,
    /// One entry per shard, in shard (= stream merge) order.
    pub shards: Vec<ShardAccess>,
}

/// What one worker hands back: its record bytes plus deferred bookkeeping.
struct ShardOutput {
    body: Vec<u8>,
    records: u32,
    stats: TraversalStats,
    /// Objects recorded by this shard, whose modified flags still need
    /// resetting (workers cannot: they hold the heap immutably).
    recorded: Vec<ObjectId>,
    /// Every object this shard visited, in visit order — concatenated in
    /// shard order this reproduces the sequential depth-first pre-order
    /// (merge invariant 3), which is what the journal cache needs.
    /// Collected only when the driver has the journal enabled.
    visit_order: Vec<ObjectId>,
}

/// One shard's traversal: the sequential checkpoint loop restricted to the
/// objects this shard owns, writing into a headerless shard stream.
fn shard_worker(
    heap: &Heap,
    methods: &MethodTable,
    plan: &ShardPlan,
    shard: usize,
    kind: CheckpointKind,
    collect_order: bool,
) -> Result<ShardOutput, CoreError> {
    let mut writer = StreamWriter::new_shard();
    let mut stats = TraversalStats::default();
    let mut recorded = Vec::new();
    let mut visit_order = Vec::new();
    let mut stack: Vec<ObjectId> = plan.roots(shard).iter().rev().copied().collect();
    // Dense slot-indexed visited set (see `Heap::arena_size`): cheaper per
    // step than hashing, and allocated per worker so shards stay independent.
    let mut visited = vec![false; heap.arena_size()];
    while let Some(id) = stack.pop() {
        // Prune at foreign objects: whatever lies beyond them is owned by
        // an earlier shard (first-touch ownership is reachability-closed).
        if !plan.owns(shard, id) || std::mem::replace(&mut visited[id.index()], true) {
            continue;
        }
        stats.objects_visited += 1;
        if collect_order {
            visit_order.push(id);
        }

        let record_it = match kind {
            CheckpointKind::Full => true,
            CheckpointKind::Incremental => {
                stats.flag_tests += 1;
                heap.is_modified(id)?
            }
        };
        let class = heap.class_of(id)?;
        if record_it {
            let def = heap.class(class)?;
            writer.begin_object(heap.stable_id(id)?, class, def.num_slots());
            stats.virtual_calls += 1;
            methods.record(class)?(heap, id, &mut writer)?;
            stats.objects_recorded += 1;
            recorded.push(id);
        }

        stats.virtual_calls += 1;
        let before = stack.len();
        methods.fold(class)?(heap, id, &mut |child| {
            stack.push(child);
            Ok(())
        })?;
        stats.refs_followed += (stack.len() - before) as u64;
        stack[before..].reverse();
    }
    let (body, records) = writer.finish_shard();
    Ok(ShardOutput { body, records, stats, recorded, visit_order })
}

impl Checkpointer {
    /// Takes one checkpoint of everything reachable from `roots`, spread
    /// over up to `workers` threads.
    ///
    /// Semantically identical to [`Checkpointer::checkpoint`]: the returned
    /// [`CheckpointRecord`] — bytes, roots, kind, sequence number and
    /// traversal counters — is byte-for-byte what the sequential driver
    /// would have produced on the same heap state, and the same modified
    /// flags are reset. `workers` is clamped to the number of roots (one
    /// shard needs at least one root) and values of 0 or 1 degrade to a
    /// single worker thread.
    ///
    /// The ownership pre-pass over the reachability graph runs in
    /// parallel itself (`ickp_heap::partition_roots_parallel`; see
    /// [`ParallelPhases`] for the measured phase split), and shard
    /// boundaries are placed by estimated stream bytes per root unless the
    /// config selects [`ShardBalance::RootCount`]. The plan is cached
    /// across checkpoints while the heap structure, root set and worker
    /// count are unchanged.
    ///
    /// # Errors
    ///
    /// Fails like [`Checkpointer::checkpoint`]. If any shard fails, the
    /// first error (in shard order) is returned and *no* modified flags
    /// are reset.
    ///
    /// # Example
    ///
    /// ```
    /// use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
    /// use ickp_heap::{ClassRegistry, FieldType, Heap, Value};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut reg = ClassRegistry::new();
    /// let node = reg.define("Node", None, &[("v", FieldType::Int)])?;
    /// let mut heap = Heap::new(reg);
    /// let roots: Vec<_> = (0..8).map(|_| heap.alloc(node)).collect::<Result<_, _>>()?;
    ///
    /// let table = MethodTable::derive(heap.registry());
    /// let mut sequential = Checkpointer::new(CheckpointConfig::incremental());
    /// let mut parallel = Checkpointer::new(CheckpointConfig::incremental());
    ///
    /// let reference = sequential.checkpoint(&mut heap.clone(), &table, &roots)?;
    /// let sharded = parallel.checkpoint_parallel(&mut heap, &table, &roots, 4)?;
    /// assert_eq!(sharded.bytes(), reference.bytes());
    /// assert_eq!(sharded.stats(), reference.stats());
    /// # Ok(()) }
    /// ```
    pub fn checkpoint_parallel(
        &mut self,
        heap: &mut Heap,
        methods: &MethodTable,
        roots: &[ObjectId],
        workers: usize,
    ) -> Result<CheckpointRecord, CoreError> {
        self.checkpoint_parallel_impl(heap, methods, roots, workers, false)
            .map(|(record, _)| record)
    }

    /// [`Checkpointer::checkpoint_parallel`], additionally returning the
    /// per-shard access sets observed during the traversal.
    ///
    /// The record is byte-for-byte the same either way; tracing only adds
    /// bookkeeping (each shard keeps its visit order and recorded set).
    /// This is the probe behind the `sanitize` feature of `ickp-backend`
    /// and the shard-audit cross-validator: the returned [`ShardTrace`]
    /// is what the shards *actually* touched, to be checked against what
    /// the static analysis said they *may* touch.
    ///
    /// # Errors
    ///
    /// Fails like [`Checkpointer::checkpoint_parallel`].
    pub fn checkpoint_parallel_traced(
        &mut self,
        heap: &mut Heap,
        methods: &MethodTable,
        roots: &[ObjectId],
        workers: usize,
    ) -> Result<(CheckpointRecord, ShardTrace), CoreError> {
        self.checkpoint_parallel_impl(heap, methods, roots, workers, true)
            .map(|(record, trace)| (record, trace.expect("tracing was requested")))
    }

    fn checkpoint_parallel_impl(
        &mut self,
        heap: &mut Heap,
        methods: &MethodTable,
        roots: &[ObjectId],
        workers: usize,
        trace: bool,
    ) -> Result<(CheckpointRecord, Option<ShardTrace>), CoreError> {
        let seq = self.next_seq;
        let kind = self.config.kind;
        let root_ids: Vec<StableId> =
            roots.iter().map(|&r| heap.stable_id(r)).collect::<Result<_, _>>()?;
        if self.journal_usable(heap, roots) {
            // The fast path emits O(modified) records sequentially; there
            // is nothing left to parallelize, and the output is the same
            // byte-identical stream either way.
            let record = self.checkpoint_from_journal(heap, methods, root_ids)?;
            self.last_shard_stats = vec![record.stats()];
            self.last_phases =
                Some(ParallelPhases { fast_path: true, ..ParallelPhases::default() });
            let fast = trace.then(|| ShardTrace { fast_path: true, shards: Vec::new() });
            return Ok((record, fast));
        }
        let plan_timer = Instant::now();
        let (plan, plan_cached) = match self.plan_cache.take() {
            Some(cached) if cached.matches(heap, roots, workers) => (cached.plan, true),
            _ => (plan_shards(heap, roots, workers, self.config.balance)?, false),
        };
        let plan_time = plan_timer.elapsed();
        let journal_wanted = self.config.journal && kind == CheckpointKind::Incremental;
        let collect_order = journal_wanted || trace;

        let traverse_timer = Instant::now();
        let outputs: Vec<Result<ShardOutput, CoreError>> = std::thread::scope(|scope| {
            let heap = &*heap;
            let plan = &plan;
            let handles: Vec<_> = (0..plan.num_shards())
                .map(|shard| {
                    scope.spawn(move || {
                        shard_worker(heap, methods, plan, shard, kind, collect_order)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker does not panic")).collect()
        });
        let traverse_time = traverse_timer.elapsed();

        let merge_timer = Instant::now();
        let (mut writer, reused) = self.writer_for(seq, kind, &root_ids);
        let mut stats = TraversalStats::default();
        let mut to_reset: Vec<ObjectId> = Vec::new();
        let mut builder = journal_wanted.then(|| JournalCache::builder(heap, roots));
        let mut accesses = trace.then(Vec::new);
        self.last_shard_stats.clear();
        for output in outputs {
            let mut out = output?;
            // Per-shard bytes are this shard's body; the aggregate
            // `bytes_written` is replaced by the full stream length below,
            // so the sum here never leaks into the record's stats.
            out.stats.bytes_written = out.body.len() as u64;
            writer.append_shard(&out.body, out.records);
            stats += out.stats;
            self.last_shard_stats.push(out.stats);
            if let Some(accesses) = &mut accesses {
                accesses.push(ShardAccess {
                    visited: out.visit_order.clone(),
                    recorded: out.recorded.clone(),
                    stats: out.stats,
                });
            }
            to_reset.extend(out.recorded);
            if let Some(builder) = &mut builder {
                // Shard visit orders concatenated in shard order are the
                // sequential depth-first pre-order (merge invariant 3), so
                // the cache built here equals the sequential driver's.
                for id in out.visit_order {
                    builder.visit(id);
                }
            }
        }
        for id in to_reset {
            heap.reset_modified(id)?;
        }
        if let Some(builder) = builder {
            self.cache = Some(builder.finish());
            heap.finish_journal_epoch();
        }
        stats.bytes_reused = reused;
        self.plan_cache = Some(PlanCache {
            structure_version: heap.structure_version(),
            roots: roots.to_vec(),
            workers,
            plan,
        });

        stats.bytes_written = writer.len() as u64;
        let bytes = writer.finish();
        self.last_phases = Some(ParallelPhases {
            plan: if plan_cached { Duration::ZERO } else { plan_time },
            traverse: traverse_time,
            merge: merge_timer.elapsed(),
            plan_cached,
            fast_path: false,
        });
        self.next_seq += 1;
        self.cumulative += stats;
        let record = CheckpointRecord::pooled(seq, kind, root_ids, bytes, stats, self.pool.clone());
        let shard_trace = accesses.map(|shards| ShardTrace { fast_path: false, shards });
        Ok((record, shard_trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointConfig;
    use crate::restore::{restore, verify_restore, RestorePolicy};
    use crate::store::CheckpointStore;
    use crate::stream::decode;
    use ickp_heap::{ClassId, ClassRegistry, FieldType, Value};

    fn setup() -> (Heap, ClassId, MethodTable) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let table = MethodTable::derive(&reg);
        (Heap::new(reg), node, table)
    }

    /// `n` chains of length 3 with some sharing between neighbours.
    fn world(n: usize) -> (Heap, MethodTable, Vec<ObjectId>) {
        let (mut heap, node, table) = setup();
        let mut roots = Vec::new();
        let mut prev_mid = None;
        for i in 0..n {
            let tail = heap.alloc(node).unwrap();
            let mid = heap.alloc(node).unwrap();
            let head = heap.alloc(node).unwrap();
            heap.set_field(head, 0, Value::Int(i as i32)).unwrap();
            heap.set_field(head, 1, Value::Ref(Some(mid))).unwrap();
            heap.set_field(mid, 1, Value::Ref(Some(tail))).unwrap();
            // Every third structure also points at its neighbour's middle
            // node, giving the partitioner cross-shard sharing to resolve.
            if i % 3 == 0 {
                if let Some(shared) = prev_mid {
                    heap.set_field(tail, 1, Value::Ref(Some(shared))).unwrap();
                }
            }
            prev_mid = Some(mid);
            roots.push(head);
        }
        (heap, table, roots)
    }

    fn assert_matches_sequential(kind: CheckpointConfig, workers: usize) {
        let (mut heap, table, roots) = world(10);
        let mut reference_heap = heap.clone();
        let mut seq_ckp = Checkpointer::new(kind);
        let mut par_ckp = Checkpointer::new(kind);
        let reference = seq_ckp.checkpoint(&mut reference_heap, &table, &roots).unwrap();
        let sharded = par_ckp.checkpoint_parallel(&mut heap, &table, &roots, workers).unwrap();
        assert_eq!(sharded.bytes(), reference.bytes(), "workers={workers}");
        assert_eq!(sharded.stats(), reference.stats(), "workers={workers}");
        assert_eq!(sharded.roots(), reference.roots());
        assert_eq!(
            ickp_heap::HeapSnapshot::capture(&heap, &roots).unwrap(),
            ickp_heap::HeapSnapshot::capture(&reference_heap, &roots).unwrap()
        );
    }

    #[test]
    fn parallel_full_checkpoint_is_byte_identical_to_sequential() {
        for workers in [1, 2, 3, 4, 8, 100] {
            assert_matches_sequential(CheckpointConfig::full(), workers);
        }
    }

    #[test]
    fn parallel_incremental_checkpoint_is_byte_identical_to_sequential() {
        for workers in [1, 2, 4, 7] {
            assert_matches_sequential(CheckpointConfig::incremental(), workers);
        }
    }

    #[test]
    fn both_balance_strategies_are_byte_identical_to_sequential() {
        for balance in [ShardBalance::Bytes, ShardBalance::RootCount] {
            for workers in [2, 4, 7] {
                assert_matches_sequential(CheckpointConfig::full().balanced_by(balance), workers);
                assert_matches_sequential(
                    CheckpointConfig::incremental().balanced_by(balance),
                    workers,
                );
            }
        }
    }

    #[test]
    fn phase_breakdown_tracks_cache_and_fast_path() {
        let (mut heap, table, roots) = world(8);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental().without_journal());
        assert!(ckp.parallel_phases().is_none());

        ckp.checkpoint_parallel(&mut heap, &table, &roots, 4).unwrap();
        let first = *ckp.parallel_phases().unwrap();
        assert!(!first.fast_path && !first.plan_cached);
        assert!(first.plan > Duration::ZERO, "pre-pass ran");
        assert!(first.traverse > Duration::ZERO && first.merge > Duration::ZERO);
        assert!(first.serial_fraction() > 0.0 && first.serial_fraction() < 1.0);

        // Unchanged structure: the plan cache serves the second round.
        ckp.checkpoint_parallel(&mut heap, &table, &roots, 4).unwrap();
        let second = *ckp.parallel_phases().unwrap();
        assert!(second.plan_cached && second.plan == Duration::ZERO);

        // A structure change invalidates the cached plan.
        let extra = heap.alloc(heap.class_of(roots[0]).unwrap()).unwrap();
        heap.set_field(roots[0], 1, Value::Ref(Some(extra))).unwrap();
        ckp.checkpoint_parallel(&mut heap, &table, &roots, 4).unwrap();
        let third = *ckp.parallel_phases().unwrap();
        assert!(!third.plan_cached && third.plan > Duration::ZERO);

        // With the journal on, a clean second round is marked fast-path.
        let mut journaled = Checkpointer::new(CheckpointConfig::incremental());
        journaled.checkpoint_parallel(&mut heap, &table, &roots, 4).unwrap();
        journaled.checkpoint_parallel(&mut heap, &table, &roots, 4).unwrap();
        let fast = *journaled.parallel_phases().unwrap();
        assert!(fast.fast_path);
        assert_eq!(fast.total(), Duration::ZERO);
    }

    #[test]
    fn stale_plan_cache_is_rebuilt_after_structure_changes() {
        // The plan cache must never survive a structure change: grow the
        // graph between parallel checkpoints and require byte-identity
        // with a fresh sequential driver each round, for both balancers.
        for balance in [ShardBalance::Bytes, ShardBalance::RootCount] {
            let (mut heap, table, mut roots) = world(6);
            let config = CheckpointConfig::incremental().balanced_by(balance);
            let mut par_ckp = Checkpointer::new(config);
            let mut seq_ckp = Checkpointer::new(config);
            let mut seq_heap = heap.clone();
            let node = heap.class_of(roots[0]).unwrap();
            for round in 0..4 {
                let par = par_ckp.checkpoint_parallel(&mut heap, &table, &roots, 3).unwrap();
                let seq = seq_ckp.checkpoint(&mut seq_heap, &table, &roots).unwrap();
                assert_eq!(par.bytes(), seq.bytes(), "{balance:?} round {round}");
                // Mutate both heaps identically: new subtree on one root
                // (structure change) plus a scalar dirty.
                for h in [&mut heap, &mut seq_heap] {
                    let fresh = h.alloc(node).unwrap();
                    h.set_field(fresh, 0, Value::Int(round as i32)).unwrap();
                    h.set_field(roots[round], 1, Value::Ref(Some(fresh))).unwrap();
                    h.set_field(roots[5], 0, Value::Int(100 + round as i32)).unwrap();
                }
                roots.rotate_left(1); // changed root order also invalidates
            }
        }
    }

    #[test]
    fn parallel_incremental_resets_exactly_the_recorded_flags() {
        let (mut heap, table, roots) = world(6);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        ckp.checkpoint_parallel(&mut heap, &table, &roots, 3).unwrap();
        for &r in &roots {
            assert!(!heap.is_modified(r).unwrap());
        }
        heap.set_field(roots[2], 0, Value::Int(77)).unwrap();
        let rec = ckp.checkpoint_parallel(&mut heap, &table, &roots, 3).unwrap();
        assert_eq!(rec.stats().objects_recorded, 1);
        assert_eq!(rec.seq(), 1);
        let d = decode(rec.bytes(), heap.registry()).unwrap();
        assert_eq!(d.objects[0].stable, heap.stable_id(roots[2]).unwrap());
    }

    #[test]
    fn parallel_checkpoints_restore_exactly() {
        let (mut heap, table, roots) = world(9);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        store.push(ckp.checkpoint_parallel(&mut heap, &table, &roots, 4).unwrap()).unwrap();
        for (i, &r) in roots.iter().enumerate() {
            if i % 2 == 0 {
                heap.set_field(r, 0, Value::Int(1000 + i as i32)).unwrap();
            }
        }
        store.push(ckp.checkpoint_parallel(&mut heap, &table, &roots, 4).unwrap()).unwrap();
        let rebuilt = restore(&store, heap.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(&heap, &roots, &rebuilt).unwrap(), None);
    }

    #[test]
    fn empty_roots_match_sequential() {
        let (mut heap, _, table) = setup();
        let mut seq_ckp = Checkpointer::new(CheckpointConfig::full());
        let mut par_ckp = Checkpointer::new(CheckpointConfig::full());
        let reference = seq_ckp.checkpoint(&mut heap.clone(), &table, &[]).unwrap();
        let sharded = par_ckp.checkpoint_parallel(&mut heap, &table, &[], 4).unwrap();
        assert_eq!(sharded.bytes(), reference.bytes());
    }

    #[test]
    fn duplicate_roots_are_recorded_once() {
        let (mut heap, table, mut roots) = world(4);
        roots.push(roots[0]);
        roots.push(roots[3]);
        let mut reference_heap = heap.clone();
        let reference = Checkpointer::new(CheckpointConfig::full())
            .checkpoint(&mut reference_heap, &table, &roots)
            .unwrap();
        let sharded = Checkpointer::new(CheckpointConfig::full())
            .checkpoint_parallel(&mut heap, &table, &roots, 3)
            .unwrap();
        assert_eq!(sharded.bytes(), reference.bytes());
    }

    #[test]
    fn traced_checkpoint_reports_disjoint_accesses_in_merge_order() {
        let (mut heap, table, roots) = world(8);
        let mut reference_heap = heap.clone();
        let reference = Checkpointer::new(CheckpointConfig::full())
            .checkpoint(&mut reference_heap, &table, &roots)
            .unwrap();
        let mut ckp = Checkpointer::new(CheckpointConfig::full());
        let (record, trace) = ckp.checkpoint_parallel_traced(&mut heap, &table, &roots, 4).unwrap();
        assert_eq!(record.bytes(), reference.bytes(), "tracing never perturbs the stream");
        assert!(!trace.fast_path);
        assert_eq!(trace.shards.len(), 4);

        // Visit orders are pairwise disjoint and concatenate to the
        // sequential pre-order; full checkpoints record what they visit.
        let mut seen = std::collections::HashSet::new();
        let mut merged = Vec::new();
        for access in &trace.shards {
            assert_eq!(access.visited, access.recorded);
            for &id in &access.visited {
                assert!(seen.insert(id), "object {id:?} touched by two shards");
            }
            merged.extend(access.visited.iter().copied());
        }
        assert_eq!(merged, ickp_heap::reachable_from(&heap, &roots).unwrap());

        // The surfaced per-shard stats are the trace's, and the per-shard
        // body bytes sum to the full stream minus its header/footer.
        let shard_stats: Vec<_> = trace.shards.iter().map(|a| a.stats).collect();
        assert_eq!(ckp.shard_stats(), &shard_stats[..]);
        let body: u64 = shard_stats.iter().map(|s| s.bytes_written).sum();
        assert!(body < record.stats().bytes_written);
        assert_eq!(
            shard_stats.iter().map(|s| s.objects_recorded).sum::<u64>(),
            record.stats().objects_recorded
        );
    }

    #[test]
    fn fast_path_trace_is_marked_and_has_no_shards() {
        let (mut heap, table, roots) = world(4);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let (_, first) = ckp.checkpoint_parallel_traced(&mut heap, &table, &roots, 2).unwrap();
        assert!(!first.fast_path);
        assert_eq!(ckp.shard_stats().len(), 2);
        // Nothing dirty: the journal serves the next one sequentially.
        let (record, second) =
            ckp.checkpoint_parallel_traced(&mut heap, &table, &roots, 2).unwrap();
        assert!(second.fast_path);
        assert!(second.shards.is_empty());
        assert_eq!(ckp.shard_stats(), &[record.stats()]);
    }

    #[test]
    fn cumulative_stats_and_sequence_numbers_advance() {
        let (mut heap, table, roots) = world(5);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        ckp.checkpoint_parallel(&mut heap, &table, &roots, 2).unwrap();
        ckp.checkpoint_parallel(&mut heap, &table, &roots, 2).unwrap();
        assert_eq!(ckp.next_seq(), 2);
        // The second round rides the journal fast path: nothing dirty,
        // nothing visited.
        assert_eq!(ckp.cumulative_stats().objects_visited, 15);
        assert_eq!(ckp.cumulative_stats().subtrees_pruned, 15);
    }
}
