//! The journal fast path's traversal-order cache.
//!
//! An incremental checkpoint must emit records in depth-first pre-order
//! from the roots — the stream format is order-sensitive and every engine
//! must stay byte-identical. The dirty-set journal ([`Heap::journal`])
//! says *which* objects can be recorded but not in what order, so the fast
//! path keeps a [`JournalCache`]: a dense slot-indexed map from object to
//! its pre-order position, rebuilt for free during every slow-path
//! traversal and valid for as long as [`Heap::structure_version`] and the
//! root set are unchanged. With it, a checkpoint is: scan the journal,
//! keep the live modified reachable entries, sort them by cached position,
//! emit — O(modified log modified), never touching clean subtrees.
//!
//! [`Heap::journal`]: ickp_heap::Heap::journal
//! [`Heap::structure_version`]: ickp_heap::Heap::structure_version

use ickp_heap::{Heap, ObjectId};

const UNREACHABLE: u32 = u32::MAX;

/// A cached depth-first pre-order over the objects reachable from a fixed
/// root set, keyed on the heap's structure version.
///
/// Built by checkpointers during slow-path traversals (sequential and
/// sharded alike) and consulted by the journal fast path. Public so that
/// the engine backends in `ickp-backend` can reuse it.
#[derive(Debug, Clone)]
pub struct JournalCache {
    /// Length and order-sensitive FNV-1a hash of the root set the cache
    /// was built over. Storing the digest instead of the root `Vec` itself
    /// keeps [`JournalCache::is_valid`] allocation-free and makes the
    /// fast-path entry check a hash fold over the candidate roots rather
    /// than an element-wise `Vec` comparison.
    roots_len: usize,
    roots_fnv: u64,
    structure_version: u64,
    /// Arena-slot-indexed pre-order position; `UNREACHABLE` for slots the
    /// traversal never reached (or that lie beyond the cached arena).
    position: Vec<u32>,
    reachable: u64,
}

/// Order-sensitive FNV-1a over a root set's `(index, generation)` pairs.
///
/// Collisions cannot corrupt a checkpoint: a collision would only let the
/// fast path reuse a pre-order built for a *different* root sequence, and
/// the root sequence is folded in full (length + every handle), so two
/// colliding root sets differ with probability 2^-64 per validity check —
/// the same risk class the durable store's content-hash dedup accepts, but
/// here a false hit is additionally bounded by the structure-version check.
fn fnv_roots(roots: &[ObjectId]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut fold = |v: u32| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    for id in roots {
        fold(id.index() as u32);
        fold(id.generation());
    }
    hash
}

impl JournalCache {
    /// Starts recording a traversal over `heap` from `roots`. Call
    /// [`JournalCacheBuilder::visit`] for each object as the traversal
    /// first reaches it.
    pub fn builder(heap: &Heap, roots: &[ObjectId]) -> JournalCacheBuilder {
        JournalCacheBuilder {
            cache: JournalCache {
                roots_len: roots.len(),
                roots_fnv: fnv_roots(roots),
                structure_version: heap.structure_version(),
                position: vec![UNREACHABLE; heap.arena_size()],
                reachable: 0,
            },
        }
    }

    /// `true` if the cached order still describes a traversal of `heap`
    /// from `roots`: same roots (checked by length + stored FNV digest),
    /// and no allocation, free, or reference store since the cache was
    /// built.
    pub fn is_valid(&self, heap: &Heap, roots: &[ObjectId]) -> bool {
        self.structure_version == heap.structure_version()
            && self.roots_len == roots.len()
            && self.roots_fnv == fnv_roots(roots)
    }

    /// The pre-order position of `id`, or `None` if the cached traversal
    /// never reached it.
    pub fn position_of(&self, id: ObjectId) -> Option<u32> {
        self.position.get(id.index()).copied().filter(|&p| p != UNREACHABLE)
    }

    /// Number of objects the cached traversal reached — what a slow-path
    /// checkpoint would visit and flag-test.
    pub fn reachable_len(&self) -> u64 {
        self.reachable
    }

    /// Scans `heap`'s journal and collects every live, still-modified,
    /// reachable entry into `out` as `(position, id)`, sorted into
    /// traversal order. Returns the number of journal entries scanned.
    /// `out` is cleared first, so callers can keep one scratch vector
    /// across checkpoints.
    pub fn collect_dirty(&self, heap: &Heap, out: &mut Vec<(u32, ObjectId)>) -> u64 {
        out.clear();
        for &id in heap.journal() {
            if !heap.is_modified(id).unwrap_or(false) {
                continue;
            }
            if let Some(pos) = self.position_of(id) {
                out.push((pos, id));
            }
        }
        // Positions are unique (one per object, one journal entry per
        // object), so unstable sorting is deterministic here.
        out.sort_unstable_by_key(|&(pos, _)| pos);
        heap.journal().len() as u64
    }
}

/// Reads the heap's write-barrier journal and returns the *dirty set* it
/// currently describes: every live, still-modified object with a journal
/// entry for the open epoch, in journal (first-dirtied) order.
///
/// This is the raw material both of the journal fast path (which re-sorts
/// it into traversal order via a [`JournalCache`]) and of dynamic
/// cross-validation in `ickp-audit`, which compares it against the set of
/// objects an audited plan would record. Entries whose object has since
/// been freed or reset clean are filtered out, so the result is exactly
/// the set an exhaustive flag-testing sweep of the journal would find.
pub fn journal_dirty_set(heap: &Heap) -> Vec<ObjectId> {
    heap.journal().iter().copied().filter(|&id| heap.is_modified(id).unwrap_or(false)).collect()
}

/// Accumulates pre-order positions during one slow-path traversal.
#[derive(Debug)]
pub struct JournalCacheBuilder {
    cache: JournalCache,
}

impl JournalCacheBuilder {
    /// Records that the traversal reached `id` (call once per object, at
    /// first visit, in emission order).
    pub fn visit(&mut self, id: ObjectId) {
        if let Some(slot) = self.cache.position.get_mut(id.index()) {
            if *slot == UNREACHABLE {
                *slot = self.cache.reachable as u32;
                self.cache.reachable += 1;
            }
        }
    }

    /// Finishes the recording.
    pub fn finish(self) -> JournalCache {
        self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::{ClassRegistry, FieldType, Value};

    fn heap_with_chain() -> (Heap, Vec<ObjectId>) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let c = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let a = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(b))).unwrap();
        heap.set_field(b, 1, Value::Ref(Some(c))).unwrap();
        (heap, vec![a, b, c])
    }

    #[test]
    fn positions_follow_visit_order_and_validity_tracks_structure() {
        let (mut heap, ids) = heap_with_chain();
        let roots = [ids[0]];
        let mut builder = JournalCache::builder(&heap, &roots);
        for &id in &ids {
            builder.visit(id);
            builder.visit(id); // revisits must not advance the order
        }
        let cache = builder.finish();
        assert!(cache.is_valid(&heap, &roots));
        assert!(!cache.is_valid(&heap, &[ids[1]]), "different roots");
        assert_eq!(cache.reachable_len(), 3);
        assert_eq!(cache.position_of(ids[0]), Some(0));
        assert_eq!(cache.position_of(ids[2]), Some(2));

        heap.set_field(ids[0], 0, Value::Int(1)).unwrap(); // scalar store
        assert!(cache.is_valid(&heap, &roots), "scalar stores keep the cache");
        heap.set_field(ids[2], 1, Value::Ref(None)).unwrap(); // ref store
        assert!(!cache.is_valid(&heap, &roots));
    }

    #[test]
    fn root_set_changes_still_invalidate_the_hashed_cache() {
        // Pinned: `is_valid` compares length + FNV digest instead of the
        // root Vec, and must keep rejecting every kind of root-set change.
        let (heap, ids) = heap_with_chain();
        let roots = [ids[0], ids[1]];
        let mut builder = JournalCache::builder(&heap, &roots);
        for &id in &ids {
            builder.visit(id);
        }
        let cache = builder.finish();
        assert!(cache.is_valid(&heap, &roots));
        assert!(!cache.is_valid(&heap, &[ids[0]]), "shorter root set");
        assert!(!cache.is_valid(&heap, &[ids[0], ids[1], ids[2]]), "longer root set");
        assert!(!cache.is_valid(&heap, &[ids[1], ids[0]]), "reordered roots");
        assert!(!cache.is_valid(&heap, &[ids[0], ids[2]]), "same length, different root");
        assert!(cache.is_valid(&heap, &[ids[0], ids[1]]), "equal roots in a fresh slice");
    }

    #[test]
    fn collect_dirty_filters_and_sorts() {
        let (mut heap, ids) = heap_with_chain();
        let unreachable = {
            let node = heap.registry().id_of("Node").unwrap();
            heap.alloc(node).unwrap()
        };
        let mut builder = JournalCache::builder(&heap, &[ids[0]]);
        for &id in &ids {
            builder.visit(id);
        }
        let cache = builder.finish();

        heap.reset_all_modified();
        heap.finish_journal_epoch();
        // Dirty in anti-traversal order, plus an unreachable object.
        heap.set_field(ids[2], 0, Value::Int(1)).unwrap();
        heap.set_field(unreachable, 0, Value::Int(2)).unwrap();
        heap.set_field(ids[0], 0, Value::Int(3)).unwrap();
        heap.reset_modified(ids[0]).unwrap(); // journaled but clean again

        let mut out = Vec::new();
        let scanned = cache.collect_dirty(&heap, &mut out);
        assert_eq!(scanned, 3);
        assert_eq!(out, vec![(2, ids[2])], "clean and unreachable entries filtered");

        // The raw dirty-set read keeps the unreachable-but-dirty entry
        // (reachability is the cache's concern, not the journal's) and
        // still drops the reset-clean one.
        assert_eq!(journal_dirty_set(&heap), vec![ids[2], unreachable]);
    }
}
