//! The generic checkpoint driver (the paper's `Checkpoint` class).
//!
//! [`Checkpointer::checkpoint`] is the faithful Rust rendering of the
//! paper's Figure 1 loop, in both flavors:
//!
//! * **full** — record every reachable object;
//! * **incremental** — test each object's modified flag, record and reset
//!   it when set, and in either case keep folding over the children
//!   (incrementality shrinks the *checkpoint*, not the *traversal*).
//!
//! All per-object behaviour is reached through the [`MethodTable`]'s boxed
//! closures, reproducing the virtual-call cost that the specializer in
//! `ickp-spec` exists to eliminate. Instrumentation counters
//! ([`TraversalStats`]) record how many dispatches, flag tests and visits a
//! checkpoint performed, so benchmarks can explain speedups rather than
//! just assert them.

use crate::error::CoreError;
use crate::journal::JournalCache;
use crate::methods::MethodTable;
use crate::pool::BufferPool;
use crate::stats::TraversalStats;
use crate::stream::{CheckpointKind, StreamWriter};
use ickp_heap::{Heap, ObjectId, StableId};
use std::collections::HashSet;

/// How the parallel engine places shard boundaries over the root set.
///
/// Both strategies keep chunks **contiguous** in root order, so the merged
/// parallel stream is byte-identical to the sequential one either way —
/// the choice only moves the cut points, i.e. the load balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBalance {
    /// Cut by estimated stream bytes: per-root byte weights (first-touch
    /// at root granularity × per-class encoded sizes, the same estimate
    /// the shard-imbalance lint AUD205 computes) drive a prefix-sum
    /// boundary placement (`ickp_heap::chunk_bounds_weighted`). The
    /// default: on skewed heaps the heaviest shard — which bounds the
    /// parallel wall clock — shrinks toward the mean.
    #[default]
    Bytes,
    /// Cut by root count (`ickp_heap::chunk_bounds`): the historical
    /// strategy, cheapest possible pre-pass, accurate when roots are
    /// uniform. Kept as the baseline the weighted strategy is measured
    /// against.
    RootCount,
}

/// Configuration for a [`Checkpointer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Full or incremental checkpointing.
    pub kind: CheckpointKind,
    /// Whether incremental checkpoints may use the dirty-set journal fast
    /// path (on by default). With the journal off, every checkpoint
    /// performs the paper's full flag-test traversal — useful as the
    /// reference behaviour in equivalence tests and benchmarks.
    pub journal: bool,
    /// Shard-boundary placement for [`Checkpointer::checkpoint_parallel`]
    /// (byte-weighted by default; irrelevant to the sequential driver).
    pub balance: ShardBalance,
}

impl CheckpointConfig {
    /// Configuration for full checkpointing (record everything).
    pub fn full() -> CheckpointConfig {
        CheckpointConfig {
            kind: CheckpointKind::Full,
            journal: true,
            balance: ShardBalance::default(),
        }
    }

    /// Configuration for incremental checkpointing (record modified only).
    pub fn incremental() -> CheckpointConfig {
        CheckpointConfig {
            kind: CheckpointKind::Incremental,
            journal: true,
            balance: ShardBalance::default(),
        }
    }

    /// Disables the dirty-set journal fast path, forcing the flag-test
    /// traversal on every checkpoint.
    pub fn without_journal(mut self) -> CheckpointConfig {
        self.journal = false;
        self
    }

    /// Selects the shard-boundary placement strategy for the parallel
    /// engine.
    pub fn balanced_by(mut self, balance: ShardBalance) -> CheckpointConfig {
        self.balance = balance;
        self
    }
}

/// One completed checkpoint: its bytes plus bookkeeping.
///
/// A record produced by a pooled checkpointer returns its byte buffer to
/// the producer's [`BufferPool`] when dropped; use
/// [`CheckpointRecord::into_parts`] to take the bytes out instead.
#[derive(Debug)]
pub struct CheckpointRecord {
    seq: u64,
    kind: CheckpointKind,
    roots: Vec<StableId>,
    bytes: Vec<u8>,
    stats: TraversalStats,
    pool: Option<BufferPool>,
}

impl Clone for CheckpointRecord {
    /// Clones the record's data; the clone is detached from any buffer
    /// pool (only the original returns its buffer).
    fn clone(&self) -> CheckpointRecord {
        CheckpointRecord {
            seq: self.seq,
            kind: self.kind,
            roots: self.roots.clone(),
            bytes: self.bytes.clone(),
            stats: self.stats,
            pool: None,
        }
    }
}

impl PartialEq for CheckpointRecord {
    /// Records compare by content; buffer-pool attachment is ignored.
    fn eq(&self, other: &CheckpointRecord) -> bool {
        self.seq == other.seq
            && self.kind == other.kind
            && self.roots == other.roots
            && self.bytes == other.bytes
            && self.stats == other.stats
    }
}

impl Drop for CheckpointRecord {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.recycle(std::mem::take(&mut self.bytes));
        }
    }
}

impl CheckpointRecord {
    /// Assembles a checkpoint record from its parts.
    ///
    /// Exists so alternative producers (the specialized checkpointer in
    /// `ickp-spec`) can emit records interchangeable with the generic
    /// driver's; `bytes` must be a finished [`StreamWriter`] stream.
    pub fn from_parts(
        seq: u64,
        kind: CheckpointKind,
        roots: Vec<StableId>,
        bytes: Vec<u8>,
        stats: TraversalStats,
    ) -> CheckpointRecord {
        CheckpointRecord { seq, kind, roots, bytes, stats, pool: None }
    }

    pub(crate) fn pooled(
        seq: u64,
        kind: CheckpointKind,
        roots: Vec<StableId>,
        bytes: Vec<u8>,
        stats: TraversalStats,
        pool: BufferPool,
    ) -> CheckpointRecord {
        CheckpointRecord { seq, kind, roots, bytes, stats, pool: Some(pool) }
    }

    /// Attaches a [`BufferPool`]: when this record is dropped, its byte
    /// buffer is recycled into `pool` instead of being freed. Producers
    /// outside this crate (the engine backends) use this to close their
    /// allocation loop; clones of the record stay detached.
    pub fn with_pool(mut self, pool: BufferPool) -> CheckpointRecord {
        self.pool = Some(pool);
        self
    }

    /// Dismantles the record into `(seq, kind, roots, bytes, stats)`,
    /// transferring ownership of the roots and bytes without cloning (and
    /// without returning the buffer to any pool).
    pub fn into_parts(mut self) -> (u64, CheckpointKind, Vec<StableId>, Vec<u8>, TraversalStats) {
        self.pool = None;
        (
            self.seq,
            self.kind,
            std::mem::take(&mut self.roots),
            std::mem::take(&mut self.bytes),
            self.stats,
        )
    }

    /// Sequence number within the producing run.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Full or incremental.
    pub fn kind(&self) -> CheckpointKind {
        self.kind
    }

    /// Stable ids of the roots this checkpoint covers.
    pub fn roots(&self) -> &[StableId] {
        &self.roots
    }

    /// The encoded checkpoint stream.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Checkpoint size in bytes (the paper's "Ckp. size").
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Counters accumulated while producing this checkpoint.
    pub fn stats(&self) -> TraversalStats {
        self.stats
    }
}

/// Drives checkpoints over a heap; owns the sequence counter.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct Checkpointer {
    pub(crate) config: CheckpointConfig,
    pub(crate) next_seq: u64,
    pub(crate) cumulative: TraversalStats,
    /// Traversal-order cache backing the journal fast path; rebuilt by
    /// every slow-path checkpoint, invalidated by structure changes.
    pub(crate) cache: Option<JournalCache>,
    /// Shard-plan cache for `checkpoint_parallel` (same validity rule).
    pub(crate) plan_cache: Option<crate::parallel::PlanCache>,
    /// Per-shard counters of the most recent parallel checkpoint (one
    /// entry per shard; a single entry after a journal fast path).
    pub(crate) last_shard_stats: Vec<TraversalStats>,
    /// Wall-clock phase breakdown of the most recent parallel checkpoint.
    pub(crate) last_phases: Option<crate::parallel::ParallelPhases>,
    /// Recycles encode buffers between checkpoints (see [`BufferPool`]).
    pub(crate) pool: BufferPool,
    /// Reusable `(position, id)` scratch for the fast path's sort.
    pub(crate) scratch: Vec<(u32, ObjectId)>,
}

impl Checkpointer {
    /// Creates a checkpointer with sequence numbers starting at 0.
    pub fn new(config: CheckpointConfig) -> Checkpointer {
        Checkpointer {
            config,
            next_seq: 0,
            cumulative: TraversalStats::default(),
            cache: None,
            plan_cache: None,
            last_shard_stats: Vec::new(),
            last_phases: None,
            pool: BufferPool::default(),
            scratch: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> CheckpointConfig {
        self.config
    }

    /// Sequence number the next checkpoint will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Aligns the sequence counter, e.g. when resuming a run whose store
    /// already holds records from another driver (a restore, or a phase
    /// checkpointed by the specialized driver). The next checkpoint's
    /// stream header carries exactly this number, keeping persisted and
    /// in-memory sequence numbers consistent.
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    /// Resets the checkpointer after a rollback to an earlier checkpoint
    /// (see `ickp-lifecycle`'s `reset_to`).
    ///
    /// Rolling a heap back re-materialises it from a checkpoint prefix, so
    /// every cache keyed on the *previous* timeline — the journal
    /// traversal-order cache, the parallel shard plan, the last shard
    /// counters — is stale and must be dropped, and the next sequence
    /// number must restart one past the restore point. Cumulative stats
    /// and the buffer pool survive: they describe work done, not heap
    /// state.
    pub fn rollback(&mut self, next_seq: u64) {
        self.next_seq = next_seq;
        self.cache = None;
        self.plan_cache = None;
        self.last_shard_stats.clear();
        self.last_phases = None;
    }

    /// Counters summed over every checkpoint taken so far.
    pub fn cumulative_stats(&self) -> TraversalStats {
        self.cumulative
    }

    /// Per-shard counters of the most recent parallel checkpoint, in
    /// shard (= stream merge) order. Each entry's `bytes_written` is that
    /// shard's record-body bytes, so the split can be compared against
    /// the static per-shard byte estimate of the `AUD205` imbalance lint.
    ///
    /// Empty until [`Checkpointer::checkpoint_parallel`] (or the traced
    /// variant) has run; a journal fast-path checkpoint leaves a single
    /// entry, since no shard workers ran.
    pub fn shard_stats(&self) -> &[TraversalStats] {
        &self.last_shard_stats
    }

    /// Wall-clock phase breakdown of the most recent parallel checkpoint
    /// (see [`crate::ParallelPhases`]), or `None` before the first
    /// [`Checkpointer::checkpoint_parallel`] call. This is the measured
    /// decomposition behind the scaling experiments: plan (the ownership
    /// pre-pass, including byte weighing), traverse (shard workers,
    /// spawn-to-join), merge (splice + bookkeeping + flag resets).
    pub fn parallel_phases(&self) -> Option<&crate::parallel::ParallelPhases> {
        self.last_phases.as_ref()
    }

    /// Takes one checkpoint of everything reachable from `roots`.
    ///
    /// This is the paper's Figure 1 `checkpoint` method applied to each
    /// root: per object, *(incremental only)* test the modified flag; if
    /// set, record the object's state (via its virtual `record` method) and
    /// reset the flag; then fold over the children (via its virtual `fold`
    /// method). A visited set makes shared subobjects checkpoint once and
    /// keeps the traversal total even on (disallowed) cyclic inputs.
    ///
    /// Uses a blocking protocol: the heap is borrowed for the whole
    /// checkpoint, exactly like the paper's stop-and-record assumption.
    ///
    /// # Errors
    ///
    /// Propagates heap errors (e.g. dangling references) and
    /// [`CoreError::UnknownClassIndex`] for objects whose class the method
    /// table does not cover.
    pub fn checkpoint(
        &mut self,
        heap: &mut Heap,
        methods: &MethodTable,
        roots: &[ObjectId],
    ) -> Result<CheckpointRecord, CoreError> {
        let seq = self.next_seq;
        let root_ids: Vec<StableId> =
            roots.iter().map(|&r| heap.stable_id(r)).collect::<Result<_, _>>()?;
        if self.journal_usable(heap, roots) {
            return self.checkpoint_from_journal(heap, methods, root_ids);
        }
        let (mut writer, reused) = self.writer_for(seq, self.config.kind, &root_ids);
        let mut stats = TraversalStats { bytes_reused: reused, ..TraversalStats::default() };
        // Only incremental drivers can consume the cache; a full-kind
        // checkpoint would rebuild it for nothing.
        let journal_on = self.config.journal && self.config.kind == CheckpointKind::Incremental;
        let mut builder = journal_on.then(|| JournalCache::builder(heap, roots));

        let mut stack: Vec<ObjectId> = roots.iter().rev().copied().collect();
        let mut visited: HashSet<ObjectId> = HashSet::with_capacity(roots.len() * 4);
        while let Some(id) = stack.pop() {
            if !visited.insert(id) {
                continue;
            }
            stats.objects_visited += 1;
            if let Some(builder) = &mut builder {
                builder.visit(id);
            }

            let record_it = match self.config.kind {
                CheckpointKind::Full => true,
                CheckpointKind::Incremental => {
                    stats.flag_tests += 1;
                    heap.is_modified(id)?
                }
            };
            let class = heap.class_of(id)?;
            if record_it {
                let def = heap.class(class)?;
                writer.begin_object(heap.stable_id(id)?, class, def.num_slots());
                // Virtual call: o.record(d)
                stats.virtual_calls += 1;
                methods.record(class)?(heap, id, &mut writer)?;
                stats.objects_recorded += 1;
                heap.reset_modified(id)?;
            }

            // Virtual call: o.fold(c)
            stats.virtual_calls += 1;
            let before = stack.len();
            methods.fold(class)?(heap, id, &mut |child| {
                stack.push(child);
                Ok(())
            })?;
            stats.refs_followed += (stack.len() - before) as u64;
            // Preserve field order for the children just pushed.
            stack[before..].reverse();
        }

        if let Some(builder) = builder {
            self.cache = Some(builder.finish());
            heap.finish_journal_epoch();
        }
        stats.bytes_written = writer.len() as u64;
        let bytes = writer.finish();
        self.next_seq += 1;
        self.cumulative += stats;
        Ok(CheckpointRecord::pooled(
            seq,
            self.config.kind,
            root_ids,
            bytes,
            stats,
            self.pool.clone(),
        ))
    }

    /// `true` if this checkpoint can skip the traversal and be served from
    /// the dirty-set journal: incremental mode, journal enabled, and a
    /// traversal-order cache that is still valid for this heap and root
    /// set.
    pub(crate) fn journal_usable(&self, heap: &Heap, roots: &[ObjectId]) -> bool {
        self.config.journal
            && self.config.kind == CheckpointKind::Incremental
            && self.cache.as_ref().is_some_and(|c| c.is_valid(heap, roots))
    }

    /// The journal fast path: O(modified log modified) instead of
    /// O(reachable). Emits the byte-identical stream the flag-test
    /// traversal would have produced, because the cached pre-order
    /// positions reproduce traversal order exactly and the journal is a
    /// complete membership filter for modified objects.
    pub(crate) fn checkpoint_from_journal(
        &mut self,
        heap: &mut Heap,
        methods: &MethodTable,
        root_ids: Vec<StableId>,
    ) -> Result<CheckpointRecord, CoreError> {
        let seq = self.next_seq;
        let kind = self.config.kind;
        let mut scratch = std::mem::take(&mut self.scratch);
        let cache = self.cache.as_ref().expect("journal_usable checked");
        let scanned = cache.collect_dirty(heap, &mut scratch);
        let hits = scratch.len() as u64;

        // Flag tests moved from the traversal to the journal scan; visits
        // shrink to the objects actually emitted.
        let mut stats = TraversalStats {
            flag_tests: scanned,
            journal_hits: hits,
            objects_visited: hits,
            subtrees_pruned: cache.reachable_len().saturating_sub(hits),
            ..TraversalStats::default()
        };

        let (mut writer, reused) = self.writer_for(seq, kind, &root_ids);
        stats.bytes_reused = reused;
        for &(_, id) in &scratch {
            let class = heap.class_of(id)?;
            let def = heap.class(class)?;
            writer.begin_object(heap.stable_id(id)?, class, def.num_slots());
            stats.virtual_calls += 1;
            methods.record(class)?(heap, id, &mut writer)?;
            stats.objects_recorded += 1;
            heap.reset_modified(id)?;
        }
        scratch.clear();
        self.scratch = scratch;
        heap.finish_journal_epoch();

        stats.bytes_written = writer.len() as u64;
        let bytes = writer.finish();
        self.next_seq += 1;
        self.cumulative += stats;
        Ok(CheckpointRecord::pooled(seq, kind, root_ids, bytes, stats, self.pool.clone()))
    }

    /// Starts a stream, reusing a pooled buffer when one is idle. Returns
    /// the writer and the recycled capacity (for `bytes_reused`).
    pub(crate) fn writer_for(
        &mut self,
        seq: u64,
        kind: CheckpointKind,
        root_ids: &[StableId],
    ) -> (StreamWriter, u64) {
        match self.pool.acquire() {
            Some(buf) => {
                let reused = buf.capacity() as u64;
                (StreamWriter::with_buffer(buf, seq, kind, root_ids), reused)
            }
            None => (StreamWriter::new(seq, kind, root_ids), 0),
        }
    }

    /// Performs the traversal and flag tests of an incremental checkpoint
    /// *without recording anything or resetting flags*.
    ///
    /// This isolates the "traversal time" row of the paper's Table 1: the
    /// walk-and-test cost that remains even when no object changed, i.e.
    /// the part of incremental checkpointing that only specialization can
    /// remove.
    ///
    /// # Errors
    ///
    /// Propagates heap and method-table errors like
    /// [`Checkpointer::checkpoint`].
    pub fn traverse_only(
        &mut self,
        heap: &Heap,
        methods: &MethodTable,
        roots: &[ObjectId],
    ) -> Result<TraversalStats, CoreError> {
        let mut stats = TraversalStats::default();
        let mut stack: Vec<ObjectId> = roots.iter().rev().copied().collect();
        let mut visited: HashSet<ObjectId> = HashSet::with_capacity(roots.len() * 4);
        while let Some(id) = stack.pop() {
            if !visited.insert(id) {
                continue;
            }
            stats.objects_visited += 1;
            stats.flag_tests += 1;
            // The flag read itself is the measured work.
            let _modified = heap.is_modified(id)?;
            let class = heap.class_of(id)?;
            stats.virtual_calls += 1;
            let before = stack.len();
            methods.fold(class)?(heap, id, &mut |child| {
                stack.push(child);
                Ok(())
            })?;
            stats.refs_followed += (stack.len() - before) as u64;
            stack[before..].reverse();
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{decode, RecordedValue};
    use ickp_heap::{ClassId, ClassRegistry, FieldType, Value};

    fn setup() -> (Heap, ClassId, MethodTable) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let table = MethodTable::derive(&reg);
        (Heap::new(reg), node, table)
    }

    /// Builds `head -> mid -> tail` and returns them tail-last.
    fn chain(heap: &mut Heap, node: ClassId) -> (ObjectId, ObjectId, ObjectId) {
        let tail = heap.alloc(node).unwrap();
        let mid = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(mid, 1, Value::Ref(Some(tail))).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(mid))).unwrap();
        (head, mid, tail)
    }

    #[test]
    fn full_checkpoint_records_every_reachable_object() {
        let (mut heap, node, table) = setup();
        let (head, _, _) = chain(&mut heap, node);
        let mut ckp = Checkpointer::new(CheckpointConfig::full());
        let rec = ckp.checkpoint(&mut heap, &table, &[head]).unwrap();
        let d = decode(rec.bytes(), heap.registry()).unwrap();
        assert_eq!(d.objects.len(), 3);
        assert_eq!(rec.stats().objects_recorded, 3);
        assert_eq!(rec.stats().objects_visited, 3);
        assert_eq!(rec.stats().flag_tests, 0);
    }

    #[test]
    fn incremental_records_only_modified_and_resets_flags() {
        let (mut heap, node, table) = setup();
        let (head, mid, tail) = chain(&mut heap, node);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());

        // First checkpoint: everything is fresh, so everything is recorded.
        let rec1 = ckp.checkpoint(&mut heap, &table, &[head]).unwrap();
        assert_eq!(rec1.stats().objects_recorded, 3);
        assert!(!heap.is_modified(head).unwrap());

        // No mutation: the second checkpoint is served by the journal fast
        // path — nothing is dirty, so nothing is visited at all.
        let rec2 = ckp.checkpoint(&mut heap, &table, &[head]).unwrap();
        assert_eq!(rec2.stats().objects_recorded, 0);
        assert_eq!(rec2.stats().objects_visited, 0);
        assert_eq!(rec2.stats().flag_tests, 0);
        assert_eq!(rec2.stats().subtrees_pruned, 3);
        assert!(rec2.len_bytes() < rec1.len_bytes());

        // Modify only the middle node: exactly one record, one visit.
        heap.set_field(mid, 0, Value::Int(5)).unwrap();
        let rec3 = ckp.checkpoint(&mut heap, &table, &[head]).unwrap();
        assert_eq!(rec3.stats().objects_recorded, 1);
        assert_eq!(rec3.stats().objects_visited, 1);
        assert_eq!(rec3.stats().journal_hits, 1);
        let d = decode(rec3.bytes(), heap.registry()).unwrap();
        assert_eq!(d.objects[0].stable, heap.stable_id(mid).unwrap());
        assert_eq!(d.objects[0].fields[0], RecordedValue::Int(5));
        let _ = tail;
    }

    #[test]
    fn traversal_visits_children_of_unmodified_parents() {
        // The paper is explicit: incrementality skips *recording*, never
        // *traversal* — a clean parent may hold a dirty child. With the
        // journal disabled, the driver keeps exactly that behaviour.
        let (mut heap, node, table) = setup();
        let (head, _, tail) = chain(&mut heap, node);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental().without_journal());
        ckp.checkpoint(&mut heap, &table, &[head]).unwrap();
        heap.set_field(tail, 0, Value::Int(9)).unwrap();
        let rec = ckp.checkpoint(&mut heap, &table, &[head]).unwrap();
        assert_eq!(rec.stats().objects_recorded, 1);
        assert_eq!(rec.stats().objects_visited, 3);
    }

    #[test]
    fn shared_subobjects_are_checkpointed_once() {
        let (mut heap, node, table) = setup();
        let shared = heap.alloc(node).unwrap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(shared))).unwrap();
        heap.set_field(b, 1, Value::Ref(Some(shared))).unwrap();
        let mut ckp = Checkpointer::new(CheckpointConfig::full());
        let rec = ckp.checkpoint(&mut heap, &table, &[a, b]).unwrap();
        assert_eq!(rec.stats().objects_recorded, 3);
    }

    #[test]
    fn sequence_numbers_increase() {
        let (mut heap, node, table) = setup();
        let o = heap.alloc(node).unwrap();
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let r0 = ckp.checkpoint(&mut heap, &table, &[o]).unwrap();
        let r1 = ckp.checkpoint(&mut heap, &table, &[o]).unwrap();
        assert_eq!(r0.seq(), 0);
        assert_eq!(r1.seq(), 1);
        assert_eq!(ckp.next_seq(), 2);
    }

    #[test]
    fn record_order_is_depth_first_preorder() {
        let (mut heap, node, table) = setup();
        let (head, mid, tail) = chain(&mut heap, node);
        let mut ckp = Checkpointer::new(CheckpointConfig::full());
        let rec = ckp.checkpoint(&mut heap, &table, &[head]).unwrap();
        let d = decode(rec.bytes(), heap.registry()).unwrap();
        let order: Vec<StableId> = d.objects.iter().map(|o| o.stable).collect();
        assert_eq!(
            order,
            vec![
                heap.stable_id(head).unwrap(),
                heap.stable_id(mid).unwrap(),
                heap.stable_id(tail).unwrap()
            ]
        );
    }

    #[test]
    fn traverse_only_counts_but_neither_records_nor_resets() {
        let (mut heap, node, table) = setup();
        let (head, _, _) = chain(&mut heap, node);
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let stats = ckp.traverse_only(&heap, &table, &[head]).unwrap();
        assert_eq!(stats.objects_visited, 3);
        assert_eq!(stats.flag_tests, 3);
        assert_eq!(stats.objects_recorded, 0);
        assert!(heap.is_modified(head).unwrap(), "flags untouched");
    }

    #[test]
    fn cumulative_stats_accumulate() {
        let (mut heap, node, table) = setup();
        let o = heap.alloc(node).unwrap();
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        ckp.checkpoint(&mut heap, &table, &[o]).unwrap();
        ckp.checkpoint(&mut heap, &table, &[o]).unwrap();
        // First checkpoint traverses (1 visit, 1 flag test); the second is
        // a journal fast path over an empty dirty set (0 of each).
        assert_eq!(ckp.cumulative_stats().objects_visited, 1);
        assert_eq!(ckp.cumulative_stats().flag_tests, 1);
        assert_eq!(ckp.cumulative_stats().subtrees_pruned, 1);
    }

    #[test]
    fn roots_are_recorded_in_the_header() {
        let (mut heap, node, table) = setup();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let mut ckp = Checkpointer::new(CheckpointConfig::full());
        let rec = ckp.checkpoint(&mut heap, &table, &[a, b]).unwrap();
        assert_eq!(rec.roots(), &[heap.stable_id(a).unwrap(), heap.stable_id(b).unwrap()]);
        let d = decode(rec.bytes(), heap.registry()).unwrap();
        assert_eq!(d.roots, rec.roots());
    }

    #[test]
    fn empty_roots_yield_empty_checkpoint() {
        let (mut heap, _, table) = setup();
        let mut ckp = Checkpointer::new(CheckpointConfig::full());
        let rec = ckp.checkpoint(&mut heap, &table, &[]).unwrap();
        assert_eq!(rec.stats().objects_recorded, 0);
        let d = decode(rec.bytes(), heap.registry()).unwrap();
        assert!(d.objects.is_empty());
    }
}
