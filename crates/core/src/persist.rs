//! Stable-storage persistence for checkpoint stores.
//!
//! The paper assumes checkpoints are "written from the output stream to
//! stable storage"; this module makes that literal: a
//! [`CheckpointStore`] serializes to any `Write` sink (a file, a socket)
//! as a sequence of length-prefixed checkpoint streams, and loads back
//! from any `Read` source. Each record's own header already carries its
//! sequence number, kind and roots, so the container format needs
//! nothing beyond framing and a magic/version envelope.
//!
//! Traversal statistics are measurement artifacts, not state; they are
//! not persisted and load back as zeros.

use crate::checkpoint::CheckpointRecord;
use crate::error::CoreError;
use crate::stats::TraversalStats;
use crate::store::CheckpointStore;
use crate::stream::decode;
use ickp_heap::ClassRegistry;
use std::io::{Read, Write};

const STORE_MAGIC: [u8; 4] = *b"ICKS";
const STORE_VERSION: u16 = 1;

/// Upper bound on a single persisted record's length prefix.
///
/// A length prefix is attacker-/corruption-controlled data; a store is
/// never allowed to make the loader allocate more than this per record,
/// whatever the prefix claims.
pub const MAX_RECORD_LEN: u64 = 1 << 30;

fn io_err(e: std::io::Error) -> CoreError {
    CoreError::Decode { offset: 0, what: format!("stable-storage I/O failed: {e}") }
}

/// Writes a store to stable storage.
///
/// # Errors
///
/// Returns a [`CoreError::Decode`]-wrapped I/O error on sink failure.
pub fn save_store<W: Write>(store: &CheckpointStore, mut sink: W) -> Result<(), CoreError> {
    sink.write_all(&STORE_MAGIC).map_err(io_err)?;
    sink.write_all(&STORE_VERSION.to_be_bytes()).map_err(io_err)?;
    sink.write_all(&(store.len() as u32).to_be_bytes()).map_err(io_err)?;
    for rec in store.records() {
        sink.write_all(&(rec.bytes().len() as u32).to_be_bytes()).map_err(io_err)?;
        sink.write_all(rec.bytes()).map_err(io_err)?;
    }
    sink.flush().map_err(io_err)
}

/// Loads a store from stable storage, validating every record against the
/// class registry.
///
/// # Errors
///
/// * [`CoreError::Decode`] for framing or record corruption.
/// * [`CoreError::SequenceGap`] if the stored records are not contiguous.
pub fn load_store<R: Read>(
    mut source: R,
    registry: &ClassRegistry,
) -> Result<CheckpointStore, CoreError> {
    let mut head = [0u8; 4];
    source.read_exact(&mut head).map_err(io_err)?;
    if head != STORE_MAGIC {
        return Err(CoreError::Decode { offset: 0, what: "bad store magic".into() });
    }
    let mut v = [0u8; 2];
    source.read_exact(&mut v).map_err(io_err)?;
    if u16::from_be_bytes(v) != STORE_VERSION {
        return Err(CoreError::Decode { offset: 4, what: "unsupported store version".into() });
    }
    let mut n = [0u8; 4];
    source.read_exact(&mut n).map_err(io_err)?;
    let count = u32::from_be_bytes(n) as usize;

    let mut store = CheckpointStore::new();
    for index in 0..count {
        let mut len = [0u8; 4];
        source.read_exact(&mut len).map_err(io_err)?;
        let claimed = u32::from_be_bytes(len) as u64;
        if claimed > MAX_RECORD_LEN {
            return Err(CoreError::OversizedRecord { index, claimed, max: MAX_RECORD_LEN });
        }
        // Read through `take` so a lying prefix costs at most the bytes the
        // source actually has, never an up-front `claimed`-sized allocation.
        let mut bytes = Vec::new();
        let got = source.by_ref().take(claimed).read_to_end(&mut bytes).map_err(io_err)? as u64;
        if got < claimed {
            return Err(CoreError::TruncatedRecord { index, claimed, got });
        }
        // Validate and recover the header metadata from the record itself.
        let decoded = decode(&bytes, registry)?;
        store.push(CheckpointRecord::from_parts(
            decoded.seq,
            decoded.kind,
            decoded.roots,
            bytes,
            TraversalStats::default(),
        ))?;
    }
    // Trailing garbage detection.
    let mut probe = [0u8; 1];
    match source.read(&mut probe).map_err(io_err)? {
        0 => Ok(store),
        _ => Err(CoreError::Decode { offset: 0, what: "trailing bytes after store".into() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointConfig, Checkpointer};
    use crate::methods::MethodTable;
    use crate::restore::{restore, verify_restore, RestorePolicy};
    use ickp_heap::{FieldType, Heap, ObjectId, Value};

    fn run() -> (Heap, Vec<ObjectId>, CheckpointStore) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        store.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap()).unwrap();
        for i in 0..4 {
            heap.set_field(tail, 0, Value::Int(i)).unwrap();
            store.push(ckp.checkpoint(&mut heap, &table, &[head]).unwrap()).unwrap();
        }
        (heap, vec![head], store)
    }

    #[test]
    fn save_load_round_trip_preserves_recovery() {
        let (heap, roots, store) = run();
        let mut disk = Vec::new();
        save_store(&store, &mut disk).unwrap();
        let loaded = load_store(disk.as_slice(), heap.registry()).unwrap();
        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.total_bytes(), store.total_bytes());
        let rebuilt = restore(&loaded, heap.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(&heap, &roots, &rebuilt).unwrap(), None);
    }

    #[test]
    fn loaded_records_carry_their_original_headers() {
        let (heap, _, store) = run();
        let mut disk = Vec::new();
        save_store(&store, &mut disk).unwrap();
        let loaded = load_store(disk.as_slice(), heap.registry()).unwrap();
        for (a, b) in store.records().iter().zip(loaded.records()) {
            assert_eq!(a.seq(), b.seq());
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.roots(), b.roots());
            assert_eq!(a.bytes(), b.bytes());
        }
    }

    #[test]
    fn corrupted_container_is_rejected() {
        let (heap, _, store) = run();
        let mut disk = Vec::new();
        save_store(&store, &mut disk).unwrap();

        let mut bad_magic = disk.clone();
        bad_magic[0] = b'X';
        assert!(load_store(bad_magic.as_slice(), heap.registry()).is_err());

        let mut truncated = disk.clone();
        truncated.truncate(disk.len() - 3);
        assert!(load_store(truncated.as_slice(), heap.registry()).is_err());

        let mut trailing = disk.clone();
        trailing.push(0);
        assert!(load_store(trailing.as_slice(), heap.registry()).is_err());

        // Corrupt a record body: the per-record decoder catches it.
        let mut corrupt = disk;
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(load_store(corrupt.as_slice(), heap.registry()).is_err());
    }

    /// Byte offset of the first record's length prefix: magic (4) +
    /// version (2) + count (4).
    const FIRST_LEN_PREFIX: usize = 10;

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let (heap, _, store) = run();
        let mut disk = Vec::new();
        save_store(&store, &mut disk).unwrap();
        // Claim u32::MAX bytes for the first record: must be rejected from
        // the prefix alone, without reading or allocating that much.
        disk[FIRST_LEN_PREFIX..FIRST_LEN_PREFIX + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = load_store(disk.as_slice(), heap.registry()).unwrap_err();
        assert_eq!(
            err,
            CoreError::OversizedRecord { index: 0, claimed: u32::MAX as u64, max: MAX_RECORD_LEN }
        );
    }

    #[test]
    fn truncated_record_reports_claimed_and_actual_bytes() {
        let (heap, _, store) = run();
        let mut disk = Vec::new();
        save_store(&store, &mut disk).unwrap();
        // Cut the container 3 bytes into the first record's body.
        let first_len =
            u32::from_be_bytes(disk[FIRST_LEN_PREFIX..FIRST_LEN_PREFIX + 4].try_into().unwrap())
                as u64;
        disk.truncate(FIRST_LEN_PREFIX + 4 + 3);
        let err = load_store(disk.as_slice(), heap.registry()).unwrap_err();
        assert_eq!(err, CoreError::TruncatedRecord { index: 0, claimed: first_len, got: 3 });
    }

    #[test]
    fn length_prefix_pointing_past_the_container_is_truncation_not_decode() {
        let (heap, _, store) = run();
        let mut disk = Vec::new();
        save_store(&store, &mut disk).unwrap();
        // Inflate the first record's claimed length so it swallows the whole
        // rest of the container (but stays under the allocation cap).
        let rest = (disk.len() - FIRST_LEN_PREFIX - 4) as u64;
        let claimed = rest + 1000;
        disk[FIRST_LEN_PREFIX..FIRST_LEN_PREFIX + 4]
            .copy_from_slice(&(claimed as u32).to_be_bytes());
        let err = load_store(disk.as_slice(), heap.registry()).unwrap_err();
        assert_eq!(err, CoreError::TruncatedRecord { index: 0, claimed, got: rest });
    }

    #[test]
    fn huge_record_count_with_no_data_does_not_preallocate() {
        let (heap, _, _) = run();
        // Header claiming u32::MAX records, then nothing: the loader must
        // fail on the missing first prefix, not reserve space for billions
        // of records.
        let mut disk = Vec::new();
        disk.extend_from_slice(&STORE_MAGIC);
        disk.extend_from_slice(&STORE_VERSION.to_be_bytes());
        disk.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = load_store(disk.as_slice(), heap.registry()).unwrap_err();
        assert!(matches!(err, CoreError::Decode { .. }), "missing prefix is an I/O-level decode");
    }

    #[test]
    fn empty_store_round_trips() {
        let reg = ClassRegistry::new();
        let mut disk = Vec::new();
        save_store(&CheckpointStore::new(), &mut disk).unwrap();
        let loaded = load_store(disk.as_slice(), &reg).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn file_round_trip_works() {
        let (heap, roots, store) = run();
        let dir = std::env::temp_dir().join("ickp-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.icks");
        save_store(&store, std::fs::File::create(&path).unwrap()).unwrap();
        let loaded = load_store(std::fs::File::open(&path).unwrap(), heap.registry()).unwrap();
        let rebuilt = restore(&loaded, heap.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(&heap, &roots, &rebuilt).unwrap(), None);
        let _ = std::fs::remove_file(&path);
    }
}
