//! Recovery: rebuilding a heap from a sequence of incremental checkpoints.
//!
//! The paper relies on unique identifiers "to reconstruct the state from a
//! sequence of incremental checkpoints"; this module implements and
//! verifies that claim. [`restore`] decodes every checkpoint in the store,
//! merges records last-writer-wins per [`StableId`], materializes the
//! surviving objects into a fresh heap under their original identities, and
//! re-links references.

use crate::error::CoreError;
use crate::store::CheckpointStore;
use crate::stream::{decode, RecordedObject, RecordedValue};
use ickp_heap::{ClassRegistry, Heap, HeapSnapshot, ObjectId, StableId, Value};
use std::collections::HashMap;

/// How strictly [`restore`] validates the store before replaying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestorePolicy {
    /// Require the store to begin with a full checkpoint.
    ///
    /// This is the classic recovery-line discipline: without a full base,
    /// objects that were never modified after the (missing) base would be
    /// silently absent.
    RequireFullBase,
    /// Accept any store.
    ///
    /// Correct when the producer's first checkpoint was taken while every
    /// object was still flagged modified (freshly allocated), which makes
    /// the first incremental checkpoint complete in practice.
    Lenient,
}

/// The result of a successful restore.
#[derive(Debug)]
pub struct RestoredHeap {
    heap: Heap,
    roots: Vec<ObjectId>,
    by_stable: HashMap<StableId, ObjectId>,
}

impl RestoredHeap {
    /// The reconstructed heap. Every object's modified flag is clear.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Consumes the restore, returning the heap for continued execution.
    pub fn into_heap(self) -> Heap {
        self.heap
    }

    /// The roots of the most recent checkpoint, as handles into the
    /// reconstructed heap.
    pub fn roots(&self) -> &[ObjectId] {
        &self.roots
    }

    /// Maps a recorded stable id to its handle in the reconstructed heap.
    pub fn lookup(&self, id: StableId) -> Option<ObjectId> {
        self.by_stable.get(&id).copied()
    }

    /// Number of reconstructed objects.
    pub fn len(&self) -> usize {
        self.by_stable.len()
    }

    /// `true` if nothing was reconstructed.
    pub fn is_empty(&self) -> bool {
        self.by_stable.is_empty()
    }
}

/// Rebuilds program state from a checkpoint store.
///
/// # Errors
///
/// * [`CoreError::EmptyStore`] for an empty store.
/// * [`CoreError::BaseNotFull`] under [`RestorePolicy::RequireFullBase`].
/// * Decoding errors from [`decode`].
/// * [`CoreError::MissingObject`] if a recorded reference (or a root)
///   points to a stable id that no checkpoint in the store recorded.
pub fn restore(
    store: &CheckpointStore,
    registry: &ClassRegistry,
    policy: RestorePolicy,
) -> Result<RestoredHeap, CoreError> {
    if store.is_empty() {
        return Err(CoreError::EmptyStore);
    }
    if policy == RestorePolicy::RequireFullBase && !store.starts_full() {
        return Err(CoreError::BaseNotFull);
    }

    // Merge: the newest record for each stable id wins.
    let mut merged: HashMap<StableId, RecordedObject> = HashMap::new();
    let mut last_roots: Vec<StableId> = Vec::new();
    for record in store.records() {
        let decoded = decode(record.bytes(), registry)?;
        for obj in decoded.objects {
            merged.insert(obj.stable, obj);
        }
        last_roots = decoded.roots;
    }

    // Materialize under original identities, flags clear (the restored
    // state is by definition in sync with the last checkpoint).
    let mut heap = Heap::new(registry.clone());
    let mut by_stable: HashMap<StableId, ObjectId> = HashMap::with_capacity(merged.len());
    for (stable, obj) in &merged {
        let handle = heap.alloc_restored(obj.class, *stable, false)?;
        by_stable.insert(*stable, handle);
    }

    // Re-link fields. Unbarriered stores keep the flags clear.
    for (stable, obj) in &merged {
        let handle = by_stable[stable];
        for (slot, field) in obj.fields.iter().enumerate() {
            let value = match *field {
                RecordedValue::Int(v) => Value::Int(v),
                RecordedValue::Long(v) => Value::Long(v),
                RecordedValue::Double(v) => Value::Double(v),
                RecordedValue::Bool(v) => Value::Bool(v),
                RecordedValue::Ref(None) => Value::Ref(None),
                RecordedValue::Ref(Some(child)) => {
                    let target =
                        by_stable.get(&child).copied().ok_or(CoreError::MissingObject(child))?;
                    Value::Ref(Some(target))
                }
            };
            heap.set_field_unbarriered(handle, slot, value)?;
        }
    }

    let roots = last_roots
        .iter()
        .map(|r| by_stable.get(r).copied().ok_or(CoreError::MissingObject(*r)))
        .collect::<Result<Vec<_>, _>>()?;

    Ok(RestoredHeap { heap, roots, by_stable })
}

/// Verifies that a restore reproduced the live state: captures logical
/// snapshots of both heaps from the given roots and compares them.
///
/// Returns a human-readable description of the first difference, or `None`
/// when the states are identical.
///
/// # Errors
///
/// Propagates snapshot-capture failures (dangling references).
pub fn verify_restore(
    live: &Heap,
    live_roots: &[ObjectId],
    restored: &RestoredHeap,
) -> Result<Option<String>, CoreError> {
    let expected = HeapSnapshot::capture(live, live_roots)?;
    let actual = HeapSnapshot::capture(restored.heap(), restored.roots())?;
    Ok(expected.diff(&actual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointConfig, Checkpointer};
    use crate::methods::MethodTable;
    use ickp_heap::{ClassId, ClassRegistry, FieldType};

    fn registry() -> (ClassRegistry, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        (reg, node)
    }

    struct Run {
        heap: Heap,
        table: MethodTable,
        ckp: Checkpointer,
        store: CheckpointStore,
        head: ObjectId,
        tail: ObjectId,
    }

    fn start_incremental_run() -> Run {
        let (reg, node) = registry();
        let mut heap = Heap::new(reg);
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        heap.set_field(head, 0, Value::Int(1)).unwrap();
        heap.set_field(tail, 0, Value::Int(2)).unwrap();
        let table = MethodTable::derive(heap.registry());
        Run {
            heap,
            table,
            ckp: Checkpointer::new(CheckpointConfig::incremental()),
            store: CheckpointStore::new(),
            head,
            tail,
        }
    }

    impl Run {
        fn checkpoint(&mut self) {
            let rec = self.ckp.checkpoint(&mut self.heap, &self.table, &[self.head]).unwrap();
            self.store.push(rec).unwrap();
        }
    }

    #[test]
    fn single_checkpoint_restores_exact_state() {
        let mut run = start_incremental_run();
        run.checkpoint();
        let restored = restore(&run.store, run.heap.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(verify_restore(&run.heap, &[run.head], &restored).unwrap(), None);
    }

    #[test]
    fn sequence_of_increments_replays_to_latest_state() {
        let mut run = start_incremental_run();
        run.checkpoint();
        let tail = run.tail;
        run.heap.set_field(tail, 0, Value::Int(42)).unwrap();
        run.checkpoint();
        let head = run.head;
        run.heap.set_field(head, 0, Value::Int(-3)).unwrap();
        run.checkpoint();

        let restored = restore(&run.store, run.heap.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(&run.heap, &[run.head], &restored).unwrap(), None);

        // Spot-check via stable ids.
        let tail_sid = run.heap.stable_id(run.tail).unwrap();
        let r_tail = restored.lookup(tail_sid).unwrap();
        assert_eq!(restored.heap().field(r_tail, 0).unwrap(), Value::Int(42));
    }

    #[test]
    fn restored_objects_have_clear_modified_flags() {
        let mut run = start_incremental_run();
        run.checkpoint();
        let restored = restore(&run.store, run.heap.registry(), RestorePolicy::Lenient).unwrap();
        for id in restored.heap().iter_live() {
            assert!(!restored.heap().is_modified(id).unwrap());
        }
    }

    #[test]
    fn new_objects_appearing_mid_run_are_restored() {
        let mut run = start_incremental_run();
        run.checkpoint();
        // Grow the list by one node.
        let (node, head) = (run.heap.registry().id_of("Node").unwrap(), run.head);
        let extra = run.heap.alloc(node).unwrap();
        run.heap.set_field(extra, 0, Value::Int(7)).unwrap();
        let old_next = run.heap.field(head, 1).unwrap();
        run.heap.set_field(extra, 1, old_next).unwrap();
        run.heap.set_field(head, 1, Value::Ref(Some(extra))).unwrap();
        run.checkpoint();

        let restored = restore(&run.store, run.heap.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(restored.len(), 3);
        assert_eq!(verify_restore(&run.heap, &[run.head], &restored).unwrap(), None);
    }

    #[test]
    fn empty_store_is_rejected() {
        let (reg, _) = registry();
        assert_eq!(
            restore(&CheckpointStore::new(), &reg, RestorePolicy::Lenient).unwrap_err(),
            CoreError::EmptyStore
        );
    }

    #[test]
    fn strict_policy_requires_full_base() {
        let mut run = start_incremental_run();
        run.checkpoint();
        let err =
            restore(&run.store, run.heap.registry(), RestorePolicy::RequireFullBase).unwrap_err();
        assert_eq!(err, CoreError::BaseNotFull);
    }

    #[test]
    fn full_base_plus_increments_restores_under_strict_policy() {
        let (reg, node) = registry();
        let mut heap = Heap::new(reg);
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut store = CheckpointStore::new();

        let mut full = Checkpointer::new(CheckpointConfig::full());
        store.push(full.checkpoint(&mut heap, &table, &[head]).unwrap()).unwrap();

        let mut incr = Checkpointer::new(CheckpointConfig::incremental());
        // Continue the sequence numbering after the full base.
        incr.checkpoint(&mut heap, &table, &[head]).unwrap(); // seq 0, discard
        heap.set_field(tail, 0, Value::Int(5)).unwrap();
        let rec = incr.checkpoint(&mut heap, &table, &[head]).unwrap(); // seq 1
        store.push(rec).unwrap();

        let restored = restore(&store, heap.registry(), RestorePolicy::RequireFullBase).unwrap();
        assert_eq!(verify_restore(&heap, &[head], &restored).unwrap(), None);
    }

    #[test]
    fn missing_referenced_object_is_reported() {
        // Take only the *second* incremental checkpoint (the first, which
        // recorded the tail, is dropped) — the head then references an id
        // the store never defines.
        let mut run = start_incremental_run();
        run.checkpoint();
        let head = run.head;
        run.heap.set_field(head, 0, Value::Int(10)).unwrap();
        let rec2 = run.ckp.checkpoint(&mut run.heap, &run.table, &[head]).unwrap();
        let mut partial = CheckpointStore::new();
        partial.push(rec2).unwrap();
        let err = restore(&partial, run.heap.registry(), RestorePolicy::Lenient).unwrap_err();
        assert!(matches!(err, CoreError::MissingObject(_)));
    }

    #[test]
    fn verify_detects_post_checkpoint_divergence() {
        let mut run = start_incremental_run();
        run.checkpoint();
        let restored = restore(&run.store, run.heap.registry(), RestorePolicy::Lenient).unwrap();
        // Mutate the live heap *after* the checkpoint.
        let head = run.head;
        run.heap.set_field(head, 0, Value::Int(1000)).unwrap();
        let diff = verify_restore(&run.heap, &[run.head], &restored).unwrap();
        assert!(diff.is_some());
    }

    #[test]
    fn restored_heap_supports_continued_execution_and_checkpointing() {
        let mut run = start_incremental_run();
        run.checkpoint();
        let restored = restore(&run.store, run.heap.registry(), RestorePolicy::Lenient).unwrap();
        let roots = restored.roots().to_vec();
        let mut heap = restored.into_heap();
        // Keep running: mutate and take a fresh checkpoint.
        heap.set_field(roots[0], 0, Value::Int(77)).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let rec = ckp.checkpoint(&mut heap, &table, &roots).unwrap();
        assert_eq!(rec.stats().objects_recorded, 1);
    }
}
