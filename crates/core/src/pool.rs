//! A small recycling pool for checkpoint encode buffers.
//!
//! Steady-state incremental checkpointing produces one byte vector per
//! checkpoint; without recycling, every checkpoint re-allocates and
//! re-grows it. [`BufferPool`] closes the loop: a [`CheckpointRecord`]
//! carrying a pool hands its buffer back on drop, and the next
//! [`StreamWriter::with_buffer`] reuses the capacity — so the encode hot
//! loop allocates nothing once the pool is warm. The recovered capacity is
//! surfaced as [`TraversalStats::bytes_reused`].
//!
//! [`CheckpointRecord`]: crate::CheckpointRecord
//! [`StreamWriter::with_buffer`]: crate::StreamWriter::with_buffer
//! [`TraversalStats::bytes_reused`]: crate::TraversalStats::bytes_reused

use std::sync::{Arc, Mutex};

/// A bounded, shareable pool of byte buffers.
///
/// Clones share the same storage (the pool is an `Arc` internally), so a
/// checkpointer can hand a clone to every record it emits and still receive
/// the buffers back. Buffers past the capacity bound are simply dropped.
///
/// # Example
///
/// ```
/// use ickp_core::BufferPool;
///
/// let pool = BufferPool::new(2);
/// pool.recycle(Vec::with_capacity(128));
/// let buf = pool.acquire().expect("one buffer pooled");
/// assert!(buf.capacity() >= 128);
/// assert!(pool.acquire().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct BufferPool {
    buffers: Arc<Mutex<Vec<Vec<u8>>>>,
    max: usize,
}

impl BufferPool {
    /// Creates a pool holding at most `max` idle buffers.
    pub fn new(max: usize) -> BufferPool {
        BufferPool { buffers: Arc::new(Mutex::new(Vec::new())), max }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Vec<u8>>> {
        // A poisoned pool only means a panic elsewhere dropped a guard;
        // the Vec of Vecs cannot be left in a broken state.
        self.buffers.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes an idle buffer out of the pool, if any. The buffer keeps its
    /// capacity but carries stale contents; [`StreamWriter::with_buffer`]
    /// clears it before writing.
    ///
    /// [`StreamWriter::with_buffer`]: crate::StreamWriter::with_buffer
    pub fn acquire(&self) -> Option<Vec<u8>> {
        self.lock().pop()
    }

    /// Returns a buffer to the pool. Dropped instead if the pool is full
    /// or the buffer has no capacity worth keeping.
    pub fn recycle(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut buffers = self.lock();
        if buffers.len() < self.max {
            buffers.push(buf);
        }
    }

    /// Number of idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.lock().len()
    }
}

impl Default for BufferPool {
    /// A pool sized for one producer: a handful of in-flight records.
    fn default() -> BufferPool {
        BufferPool::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycle_then_acquire_round_trips_capacity() {
        let pool = BufferPool::new(4);
        assert!(pool.acquire().is_none());
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(b"stale");
        pool.recycle(buf);
        assert_eq!(pool.idle(), 1);
        let got = pool.acquire().unwrap();
        assert!(got.capacity() >= 256);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_is_bounded_and_skips_empty_buffers() {
        let pool = BufferPool::new(2);
        pool.recycle(Vec::new()); // no capacity: dropped
        assert_eq!(pool.idle(), 0);
        for _ in 0..5 {
            pool.recycle(Vec::with_capacity(8));
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn clones_share_storage() {
        let pool = BufferPool::new(4);
        let clone = pool.clone();
        clone.recycle(Vec::with_capacity(16));
        assert_eq!(pool.idle(), 1);
        assert!(pool.acquire().is_some());
        assert_eq!(clone.idle(), 0);
    }
}
