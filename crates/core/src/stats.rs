//! Instrumentation counters explaining *where* checkpoint time goes.

use std::ops::{Add, AddAssign};

/// Counters accumulated over one checkpoint traversal.
///
/// These are the quantities the paper's specializations attack:
/// `virtual_calls` (eliminated by structure specialization),
/// `flag_tests` and `objects_visited` (eliminated by modification-pattern
/// specialization), and `bytes_written` (the checkpoint size,
/// reduced by incrementality itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Objects reached by the traversal.
    pub objects_visited: u64,
    /// Objects whose state was recorded into the stream.
    pub objects_recorded: u64,
    /// Modified-flag tests performed.
    pub flag_tests: u64,
    /// Dynamic dispatches through the method table (or plan fallbacks).
    pub virtual_calls: u64,
    /// Reference edges followed.
    pub refs_followed: u64,
    /// Bytes appended to the checkpoint stream.
    pub bytes_written: u64,
    /// Journal entries that were live, still modified, and reachable —
    /// i.e. dirty objects the journal fast path recorded without
    /// traversing to them. Zero on slow-path checkpoints.
    pub journal_hits: u64,
    /// Reachable objects the journal fast path did *not* visit (the
    /// traversal and flag tests a slow-path checkpoint would have spent on
    /// them). Zero on slow-path checkpoints.
    pub subtrees_pruned: u64,
    /// Capacity (bytes) of the recycled encode buffer this checkpoint
    /// started from, courtesy of the [`BufferPool`](crate::BufferPool);
    /// zero when the stream had to allocate fresh.
    pub bytes_reused: u64,
    /// Bytes the durable layer did *not* have to store for this
    /// checkpoint because identical object records already existed in
    /// the store's content-hash index (see `ickp-durable` dedup). Zero
    /// until the record passes through a deduplicating sink.
    pub bytes_deduped: u64,
}

impl Add for TraversalStats {
    type Output = TraversalStats;

    fn add(self, rhs: TraversalStats) -> TraversalStats {
        TraversalStats {
            objects_visited: self.objects_visited + rhs.objects_visited,
            objects_recorded: self.objects_recorded + rhs.objects_recorded,
            flag_tests: self.flag_tests + rhs.flag_tests,
            virtual_calls: self.virtual_calls + rhs.virtual_calls,
            refs_followed: self.refs_followed + rhs.refs_followed,
            bytes_written: self.bytes_written + rhs.bytes_written,
            journal_hits: self.journal_hits + rhs.journal_hits,
            subtrees_pruned: self.subtrees_pruned + rhs.subtrees_pruned,
            bytes_reused: self.bytes_reused + rhs.bytes_reused,
            bytes_deduped: self.bytes_deduped + rhs.bytes_deduped,
        }
    }
}

impl AddAssign for TraversalStats {
    fn add_assign(&mut self, rhs: TraversalStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_fieldwise() {
        let a = TraversalStats {
            objects_visited: 1,
            objects_recorded: 2,
            flag_tests: 3,
            virtual_calls: 4,
            refs_followed: 5,
            bytes_written: 6,
            journal_hits: 7,
            subtrees_pruned: 8,
            bytes_reused: 9,
            bytes_deduped: 10,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.objects_visited, 2);
        assert_eq!(c.bytes_written, 12);
        assert_eq!(c.journal_hits, 14);
        assert_eq!(c.subtrees_pruned, 16);
        assert_eq!(c.bytes_reused, 18);
        assert_eq!(c.bytes_deduped, 20);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn default_is_all_zero() {
        let z = TraversalStats::default();
        assert_eq!(z.objects_visited, 0);
        assert_eq!(z + z, z);
    }
}
