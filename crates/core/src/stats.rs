//! Instrumentation counters explaining *where* checkpoint time goes.

use std::ops::{Add, AddAssign};

/// Counters accumulated over one checkpoint traversal.
///
/// These are the quantities the paper's specializations attack:
/// `virtual_calls` (eliminated by structure specialization),
/// `flag_tests` and `objects_visited` (eliminated by modification-pattern
/// specialization), and `bytes_written` (the checkpoint size,
/// reduced by incrementality itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Objects reached by the traversal.
    pub objects_visited: u64,
    /// Objects whose state was recorded into the stream.
    pub objects_recorded: u64,
    /// Modified-flag tests performed.
    pub flag_tests: u64,
    /// Dynamic dispatches through the method table (or plan fallbacks).
    pub virtual_calls: u64,
    /// Reference edges followed.
    pub refs_followed: u64,
    /// Bytes appended to the checkpoint stream.
    pub bytes_written: u64,
}

impl Add for TraversalStats {
    type Output = TraversalStats;

    fn add(self, rhs: TraversalStats) -> TraversalStats {
        TraversalStats {
            objects_visited: self.objects_visited + rhs.objects_visited,
            objects_recorded: self.objects_recorded + rhs.objects_recorded,
            flag_tests: self.flag_tests + rhs.flag_tests,
            virtual_calls: self.virtual_calls + rhs.virtual_calls,
            refs_followed: self.refs_followed + rhs.refs_followed,
            bytes_written: self.bytes_written + rhs.bytes_written,
        }
    }
}

impl AddAssign for TraversalStats {
    fn add_assign(&mut self, rhs: TraversalStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_fieldwise() {
        let a = TraversalStats {
            objects_visited: 1,
            objects_recorded: 2,
            flag_tests: 3,
            virtual_calls: 4,
            refs_followed: 5,
            bytes_written: 6,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.objects_visited, 2);
        assert_eq!(c.bytes_written, 12);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn default_is_all_zero() {
        let z = TraversalStats::default();
        assert_eq!(z.objects_visited, 0);
        assert_eq!(z + z, z);
    }
}
