//! The checkpoint store: an ordered log of checkpoints on "stable storage".
//!
//! The paper writes checkpoints to an output stream destined for stable
//! storage; recovery replays the sequence. [`CheckpointStore`] is that
//! stable storage, with sequence-number validation so a gap (a lost
//! checkpoint) is caught at append time rather than at recovery time.

use crate::checkpoint::CheckpointRecord;
use crate::error::CoreError;
use crate::stream::CheckpointKind;

/// An append-only, sequence-checked log of checkpoints.
///
/// # Example
///
/// ```
/// use ickp_core::{CheckpointConfig, Checkpointer, CheckpointStore, MethodTable};
/// use ickp_heap::{ClassRegistry, FieldType, Heap};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = ClassRegistry::new();
/// let c = reg.define("C", None, &[("v", FieldType::Int)])?;
/// let mut heap = Heap::new(reg);
/// let o = heap.alloc(c)?;
/// let table = MethodTable::derive(heap.registry());
/// let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
/// let mut store = CheckpointStore::new();
/// store.push(ckp.checkpoint(&mut heap, &table, &[o])?)?;
/// assert_eq!(store.len(), 1);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    records: Vec<CheckpointRecord>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Appends a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SequenceGap`] if the record's sequence number is
    /// not exactly one past the previous record's.
    pub fn push(&mut self, record: CheckpointRecord) -> Result<(), CoreError> {
        if let Some(last) = self.records.last() {
            let expected = last.seq() + 1;
            if record.seq() != expected {
                return Err(CoreError::SequenceGap { expected, got: record.seq() });
            }
        }
        self.records.push(record);
        Ok(())
    }

    /// Appends a checkpoint from a chain with *gaps*: the sequence number
    /// only has to be strictly greater than the previous record's.
    ///
    /// Retention merges (see `ickp-lifecycle`) collapse runs of
    /// consecutive increments into single records carrying the *last*
    /// sequence number of their group, so a compacted chain reads
    /// `0, 3, 4, 7, ...` — still ordered, no longer contiguous. Restore
    /// does not care (it replays records in order regardless of seq), but
    /// [`CheckpointStore::push`] would reject the jump.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SequenceGap`] if the record's sequence number
    /// does not increase.
    pub fn push_merged(&mut self, record: CheckpointRecord) -> Result<(), CoreError> {
        if let Some(last) = self.records.last() {
            if record.seq() <= last.seq() {
                return Err(CoreError::SequenceGap { expected: last.seq() + 1, got: record.seq() });
            }
        }
        self.records.push(record);
        Ok(())
    }

    /// Number of checkpoints stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no checkpoints are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The checkpoints in sequence order.
    pub fn records(&self) -> &[CheckpointRecord] {
        &self.records
    }

    /// The most recent checkpoint.
    pub fn latest(&self) -> Option<&CheckpointRecord> {
        self.records.last()
    }

    /// Total bytes across all stored checkpoints.
    pub fn total_bytes(&self) -> usize {
        self.records.iter().map(CheckpointRecord::len_bytes).sum()
    }

    /// Sizes of the individual checkpoints, in sequence order — the series
    /// behind the paper's min/max checkpoint-size rows in Table 1.
    pub fn sizes(&self) -> Vec<usize> {
        self.records.iter().map(CheckpointRecord::len_bytes).collect()
    }

    /// `true` if the first stored checkpoint is a full one (the
    /// precondition for strict restore).
    pub fn starts_full(&self) -> bool {
        self.records.first().is_some_and(|r| r.kind() == CheckpointKind::Full)
    }
}

impl Extend<CheckpointRecord> for CheckpointStore {
    /// Extends the store, panicking on sequence gaps.
    ///
    /// Use [`CheckpointStore::push`] when gaps must be handled gracefully.
    fn extend<T: IntoIterator<Item = CheckpointRecord>>(&mut self, iter: T) {
        for r in iter {
            self.push(r).expect("sequence gap while extending checkpoint store");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointConfig, Checkpointer};
    use crate::methods::MethodTable;
    use ickp_heap::{ClassRegistry, FieldType, Heap, Value};

    fn run(n: usize) -> (CheckpointStore, Heap) {
        let mut reg = ClassRegistry::new();
        let c = reg.define("C", None, &[("v", FieldType::Int)]).unwrap();
        let mut heap = Heap::new(reg);
        let o = heap.alloc(c).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        for i in 0..n {
            heap.set_field(o, 0, Value::Int(i as i32)).unwrap();
            store.push(ckp.checkpoint(&mut heap, &table, &[o]).unwrap()).unwrap();
        }
        (store, heap)
    }

    #[test]
    fn push_keeps_sequence_order() {
        let (store, _) = run(3);
        assert_eq!(store.len(), 3);
        let seqs: Vec<u64> = store.records().iter().map(|r| r.seq()).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(store.latest().unwrap().seq(), 2);
    }

    #[test]
    fn gaps_are_rejected() {
        let (store3, _) = run(3);
        let mut store = CheckpointStore::new();
        store.push(store3.records()[0].clone()).unwrap();
        let err = store.push(store3.records()[2].clone()).unwrap_err();
        assert_eq!(err, CoreError::SequenceGap { expected: 1, got: 2 });
    }

    #[test]
    fn push_merged_accepts_gaps_but_not_regressions() {
        let (donor, _) = run(4);
        let mut store = CheckpointStore::new();
        store.push_merged(donor.records()[0].clone()).unwrap();
        store.push_merged(donor.records()[3].clone()).unwrap();
        assert_eq!(store.len(), 2);
        let err = store.push_merged(donor.records()[1].clone()).unwrap_err();
        assert_eq!(err, CoreError::SequenceGap { expected: 4, got: 1 });
        let err = store.push_merged(donor.records()[3].clone()).unwrap_err();
        assert_eq!(err, CoreError::SequenceGap { expected: 4, got: 3 });
    }

    #[test]
    fn byte_accounting_sums_records() {
        let (store, _) = run(4);
        assert_eq!(store.total_bytes(), store.sizes().iter().sum::<usize>());
        assert_eq!(store.sizes().len(), 4);
        assert!(store.total_bytes() > 0);
    }

    #[test]
    fn starts_full_reflects_first_record_kind() {
        let (incr_store, _) = run(1);
        assert!(!incr_store.starts_full());
        assert!(CheckpointStore::new().is_empty());
        assert!(!CheckpointStore::new().starts_full());
    }

    #[test]
    fn extend_appends_in_order() {
        let (donor, _) = run(3);
        let mut store = CheckpointStore::new();
        store.extend(donor.records().iter().cloned());
        assert_eq!(store.len(), 3);
    }
}
