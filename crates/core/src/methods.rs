//! Per-class checkpointing methods — the virtual-dispatch analog.
//!
//! In the paper every checkpointable Java class defines `record(d)` and
//! `fold(c)` methods, invoked *virtually* by the generic driver because the
//! driver only knows the `Checkpointable` interface. Rust has no JVM
//! vtables, so we reify the same mechanism: a [`MethodTable`] maps each
//! class to boxed `record`/`fold` closures, and the generic checkpointer
//! reaches every object's behaviour through one dynamic indirection per
//! call — the cost the specializer later removes.
//!
//! [`MethodTable::derive`] plays the role of the paper's preprocessor: it
//! *systematically* generates the methods for every class from its layout,
//! so user classes never hand-write (and never get wrong) their
//! checkpointing code.

use crate::error::CoreError;
use crate::stream::StreamWriter;
use ickp_heap::{ClassId, ClassRegistry, FieldType, Heap, ObjectId, Value};

/// Boxed `record` method: writes the object's local state (all fields, with
/// references as child stable ids) into the stream.
pub type RecordFn =
    Box<dyn Fn(&Heap, ObjectId, &mut StreamWriter) -> Result<(), CoreError> + Send + Sync>;

/// Boxed `fold` method: applies the callback to each non-null child.
pub type FoldFn = Box<
    dyn Fn(
            &Heap,
            ObjectId,
            &mut dyn FnMut(ObjectId) -> Result<(), CoreError>,
        ) -> Result<(), CoreError>
        + Send
        + Sync,
>;

struct ClassMethods {
    record: RecordFn,
    fold: FoldFn,
}

/// The set of per-class checkpointing methods for one class registry.
///
/// # Example
///
/// ```
/// use ickp_heap::{ClassRegistry, FieldType, Heap};
/// use ickp_core::MethodTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = ClassRegistry::new();
/// reg.define("Leaf", None, &[("v", FieldType::Int)])?;
/// let table = MethodTable::derive(&reg);
/// assert_eq!(table.len(), 1);
/// # Ok(()) }
/// ```
pub struct MethodTable {
    methods: Vec<ClassMethods>,
}

impl std::fmt::Debug for MethodTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodTable").field("classes", &self.methods.len()).finish()
    }
}

impl MethodTable {
    /// Systematically derives `record` and `fold` for every class in the
    /// registry, exactly as the paper's preprocessor would annotate the
    /// source program.
    pub fn derive(registry: &ClassRegistry) -> MethodTable {
        let mut methods = Vec::with_capacity(registry.len());
        for def in registry.iter() {
            // Capture the layout shape once; the closures re-dispatch on the
            // value kind at run time, mirroring generic Java code that knows
            // only the static field types.
            let field_types: Vec<FieldType> = def.layout().iter().map(|f| f.ty()).collect();
            let ref_slots: Vec<usize> = def
                .layout()
                .iter()
                .enumerate()
                .filter(|(_, f)| f.ty().is_ref())
                .map(|(i, _)| i)
                .collect();

            let record_types = field_types;
            let record: RecordFn = Box::new(move |heap, id, w| {
                let obj = heap.object(id)?;
                let fields = obj.fields();
                for (slot, ty) in record_types.iter().enumerate() {
                    match (fields[slot], ty) {
                        (Value::Int(v), FieldType::Int) => w.write_int(v),
                        (Value::Long(v), FieldType::Long) => w.write_long(v),
                        (Value::Double(v), FieldType::Double) => w.write_double(v),
                        (Value::Bool(v), FieldType::Bool) => w.write_bool(v),
                        (Value::Ref(None), FieldType::Ref(_)) => w.write_ref(None),
                        (Value::Ref(Some(child)), FieldType::Ref(_)) => {
                            w.write_ref(Some(heap.stable_id(child)?))
                        }
                        // The heap's write barrier makes this unreachable,
                        // but generic code must stay total.
                        (v, ty) => {
                            return Err(CoreError::GuardFailed {
                                expected: format!("value of type {ty}"),
                                found: format!("{v}"),
                            })
                        }
                    }
                }
                Ok(())
            });

            let fold: FoldFn = Box::new(move |heap, id, visit| {
                let obj = heap.object(id)?;
                let fields = obj.fields();
                for &slot in &ref_slots {
                    if let Value::Ref(Some(child)) = fields[slot] {
                        visit(child)?;
                    }
                }
                Ok(())
            });

            methods.push(ClassMethods { record, fold });
        }
        MethodTable { methods }
    }

    /// Looks up the `record` method of a class (a virtual-call site).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClassIndex`] if the class is not covered
    /// by this table (e.g. defined after [`MethodTable::derive`]).
    pub fn record(&self, class: ClassId) -> Result<&RecordFn, CoreError> {
        self.methods
            .get(class.index())
            .map(|m| &m.record)
            .ok_or(CoreError::UnknownClassIndex(class.index() as u32))
    }

    /// Looks up the `fold` method of a class (a virtual-call site).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClassIndex`] if the class is not covered.
    pub fn fold(&self, class: ClassId) -> Result<&FoldFn, CoreError> {
        self.methods
            .get(class.index())
            .map(|m| &m.fold)
            .ok_or(CoreError::UnknownClassIndex(class.index() as u32))
    }

    /// Number of classes covered.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// `true` if no classes are covered.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{decode, CheckpointKind, RecordedValue};

    fn setup() -> (Heap, ClassId, MethodTable) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define(
                "Node",
                None,
                &[("v", FieldType::Int), ("a", FieldType::Ref(None)), ("b", FieldType::Ref(None))],
            )
            .unwrap();
        let table = MethodTable::derive(&reg);
        (Heap::new(reg), node, table)
    }

    #[test]
    fn derived_record_writes_layout_in_order() {
        let (mut heap, node, table) = setup();
        let child = heap.alloc(node).unwrap();
        let obj = heap.alloc(node).unwrap();
        heap.set_field(obj, 0, Value::Int(9)).unwrap();
        heap.set_field(obj, 1, Value::Ref(Some(child))).unwrap();

        let mut w = StreamWriter::new(0, CheckpointKind::Full, &[]);
        w.begin_object(heap.stable_id(obj).unwrap(), node, 3);
        table.record(node).unwrap()(&heap, obj, &mut w).unwrap();
        let bytes = w.finish();
        let d = decode(&bytes, heap.registry()).unwrap();
        assert_eq!(d.objects[0].fields[0], RecordedValue::Int(9));
        assert_eq!(
            d.objects[0].fields[1],
            RecordedValue::Ref(Some(heap.stable_id(child).unwrap()))
        );
        assert_eq!(d.objects[0].fields[2], RecordedValue::Ref(None));
    }

    #[test]
    fn derived_fold_visits_only_nonnull_children_in_slot_order() {
        let (mut heap, node, table) = setup();
        let c1 = heap.alloc(node).unwrap();
        let c2 = heap.alloc(node).unwrap();
        let obj = heap.alloc(node).unwrap();
        heap.set_field(obj, 1, Value::Ref(Some(c1))).unwrap();
        heap.set_field(obj, 2, Value::Ref(Some(c2))).unwrap();

        let mut seen = Vec::new();
        table.fold(node).unwrap()(&heap, obj, &mut |child| {
            seen.push(child);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![c1, c2]);

        heap.set_field(obj, 1, Value::Ref(None)).unwrap();
        seen.clear();
        table.fold(node).unwrap()(&heap, obj, &mut |child| {
            seen.push(child);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![c2]);
    }

    #[test]
    fn unknown_class_is_reported() {
        let (_, _, table) = setup();
        assert!(table.record(ClassId::from_index(5)).is_err());
        assert!(table.fold(ClassId::from_index(5)).is_err());
    }

    #[test]
    fn fold_propagates_callback_errors() {
        let (mut heap, node, table) = setup();
        let c = heap.alloc(node).unwrap();
        let obj = heap.alloc(node).unwrap();
        heap.set_field(obj, 1, Value::Ref(Some(c))).unwrap();
        let err =
            table.fold(node).unwrap()(&heap, obj, &mut |_| Err(CoreError::EmptyStore)).unwrap_err();
        assert_eq!(err, CoreError::EmptyStore);
    }

    #[test]
    fn table_covers_all_classes_at_derive_time() {
        let (_, _, table) = setup();
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }
}
