//! Destination abstraction for produced checkpoints.
//!
//! Engines produce [`CheckpointRecord`]s; where they go is the sink's
//! business: an in-memory [`CheckpointStore`], or a durable segmented
//! store (`ickp-durable`) that frames, checksums and fsyncs each record
//! before acknowledging it. Having the trait here lets every producer —
//! the sequential driver, the parallel sharded engine, the specialized
//! backends — stream records straight to stable storage without holding
//! the whole run in memory.

use crate::checkpoint::CheckpointRecord;
use crate::error::CoreError;
use crate::store::CheckpointStore;

/// Accepts a stream of checkpoints, in sequence order.
pub trait RecordSink {
    /// Accepts the next checkpoint.
    ///
    /// Ownership transfers on success *and* on failure: a sink that could
    /// not durably accept the record reports the error and drops the
    /// record (releasing its buffer back to any pool); producers that need
    /// the bytes for retry or re-dirtying must keep their own copy.
    ///
    /// # Errors
    ///
    /// * [`CoreError::SequenceGap`] if the record does not extend the
    ///   sink's sequence contiguously.
    /// * [`CoreError::Storage`] if the sink's backing storage failed.
    fn append_record(&mut self, record: CheckpointRecord) -> Result<(), CoreError>;

    /// Accepts a batch of checkpoints as one unit.
    ///
    /// The default forwards record by record; sinks with a cheaper bulk
    /// path override it — the durable store turns the batch into a
    /// single *group commit* (one fsync per touched segment, one
    /// manifest swap acknowledging the whole batch atomically), and a
    /// replicated sink ships it as one wire batch. As with
    /// [`RecordSink::append_record`], ownership transfers on success and
    /// on failure, and a failure acknowledges *none* of the batch.
    ///
    /// # Errors
    ///
    /// As [`RecordSink::append_record`], for any record of the batch.
    fn append_records(&mut self, records: Vec<CheckpointRecord>) -> Result<(), CoreError> {
        for record in records {
            self.append_record(record)?;
        }
        Ok(())
    }
}

impl RecordSink for CheckpointStore {
    fn append_record(&mut self, record: CheckpointRecord) -> Result<(), CoreError> {
        self.push(record)
    }
}

/// A [`RecordSink`] decorator that reports every acknowledgement to a
/// callback: after the inner sink accepts a record (or a whole batch),
/// the hook receives the cumulative acknowledged record count.
///
/// This is the trace seam on the producer side: durability tracing
/// (`ickp-durable`'s `TraceLog`) hangs a client-acknowledgement marker
/// on the hook, so the recorded op stream carries the exact points where
/// records became client-visible — without the sink knowing anything
/// about tracing. A failed append calls nothing: unacknowledged records
/// leave no marker.
#[derive(Debug)]
pub struct AckHook<S, F> {
    inner: S,
    hook: F,
    acked: u64,
}

impl<S: RecordSink, F: FnMut(u64)> AckHook<S, F> {
    /// Decorates `inner`, calling `hook(acked_total)` after every
    /// acknowledged append.
    pub fn new(inner: S, hook: F) -> AckHook<S, F> {
        AckHook { inner, hook, acked: 0 }
    }

    /// Records acknowledged through this hook so far.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Consumes the decorator, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The inner sink, for inspection.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: RecordSink, F: FnMut(u64)> RecordSink for AckHook<S, F> {
    fn append_record(&mut self, record: CheckpointRecord) -> Result<(), CoreError> {
        self.inner.append_record(record)?;
        self.acked += 1;
        (self.hook)(self.acked);
        Ok(())
    }

    fn append_records(&mut self, records: Vec<CheckpointRecord>) -> Result<(), CoreError> {
        let n = records.len() as u64;
        self.inner.append_records(records)?;
        self.acked += n;
        (self.hook)(self.acked);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointConfig, Checkpointer};
    use crate::methods::MethodTable;
    use ickp_heap::{ClassRegistry, FieldType, Heap};

    #[test]
    fn checkpoint_store_is_a_sink() {
        let mut reg = ClassRegistry::new();
        let c = reg.define("C", None, &[("v", FieldType::Int)]).unwrap();
        let mut heap = Heap::new(reg);
        let o = heap.alloc(c).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        let sink: &mut dyn RecordSink = &mut store;
        sink.append_record(ckp.checkpoint(&mut heap, &table, &[o]).unwrap()).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn ack_hook_reports_cumulative_acknowledgements() {
        let mut reg = ClassRegistry::new();
        let c = reg.define("C", None, &[("v", FieldType::Int)]).unwrap();
        let mut heap = Heap::new(reg);
        let o = heap.alloc(c).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut seen = Vec::new();
        let mut sink = AckHook::new(CheckpointStore::new(), |n| seen.push(n));
        sink.append_record(ckp.checkpoint(&mut heap, &table, &[o]).unwrap()).unwrap();
        let batch = vec![
            ckp.checkpoint(&mut heap, &table, &[o]).unwrap(),
            ckp.checkpoint(&mut heap, &table, &[o]).unwrap(),
        ];
        sink.append_records(batch).unwrap();
        assert_eq!(sink.acked(), 3);
        assert_eq!(sink.into_inner().len(), 3);
        assert_eq!(seen, vec![1, 3], "one marker per acknowledged append/batch");
    }
}
