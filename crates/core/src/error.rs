//! Error type for checkpointing, encoding, and restore.

use ickp_heap::{HeapError, StableId};
use std::error::Error;
use std::fmt;

/// Errors returned by checkpointing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying heap access failed.
    Heap(HeapError),
    /// The checkpoint byte stream was malformed.
    Decode {
        /// Byte offset at which decoding failed.
        offset: usize,
        /// Human-readable description of the problem.
        what: String,
    },
    /// A class index in the stream does not exist in the decoding registry.
    UnknownClassIndex(u32),
    /// A recorded field count disagrees with the class layout.
    FieldCountMismatch {
        /// Class name from the decoding registry.
        class: String,
        /// Field count found in the stream.
        recorded: usize,
        /// Field count the layout requires.
        expected: usize,
    },
    /// Restore encountered a reference to a stable id never recorded.
    MissingObject(StableId),
    /// Restore was asked to run on an empty store.
    EmptyStore,
    /// Checkpoint sequence numbers were not contiguous.
    SequenceGap {
        /// The sequence number that was expected next.
        expected: u64,
        /// The sequence number found.
        got: u64,
    },
    /// A persisted record's length prefix claims more bytes than the
    /// format allows; rejected before any allocation is sized from it.
    OversizedRecord {
        /// Zero-based position of the record in its container.
        index: usize,
        /// The length the prefix claimed.
        claimed: u64,
        /// The maximum length the format accepts.
        max: u64,
    },
    /// A persisted record's length prefix claims more bytes than the
    /// source actually holds (a truncated or torn container).
    TruncatedRecord {
        /// Zero-based position of the record in its container.
        index: usize,
        /// The length the prefix claimed.
        claimed: u64,
        /// The bytes actually available.
        got: u64,
    },
    /// The stable-storage layer beneath the store failed (I/O error,
    /// detected corruption, or a simulated crash in tests).
    Storage {
        /// Human-readable description of the failure.
        what: String,
    },
    /// The first checkpoint applied during restore was not a full one and
    /// strict mode was requested.
    BaseNotFull,
    /// A specialized plan's guard failed: the object graph no longer has
    /// the shape the plan was compiled for.
    GuardFailed {
        /// What the guard expected.
        expected: String,
        /// What was found instead.
        found: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Heap(e) => write!(f, "heap error: {e}"),
            CoreError::Decode { offset, what } => {
                write!(f, "malformed checkpoint stream at byte {offset}: {what}")
            }
            CoreError::UnknownClassIndex(i) => {
                write!(f, "checkpoint stream names unknown class index {i}")
            }
            CoreError::FieldCountMismatch { class, recorded, expected } => {
                write!(f, "class `{class}` records {recorded} fields but its layout has {expected}")
            }
            CoreError::MissingObject(id) => {
                write!(f, "restore references {id}, which was never recorded")
            }
            CoreError::EmptyStore => write!(f, "checkpoint store is empty"),
            CoreError::SequenceGap { expected, got } => {
                write!(f, "checkpoint sequence gap: expected {expected}, got {got}")
            }
            CoreError::OversizedRecord { index, claimed, max } => {
                write!(f, "record {index} claims {claimed} bytes, above the {max}-byte limit")
            }
            CoreError::TruncatedRecord { index, claimed, got } => {
                write!(f, "record {index} claims {claimed} bytes but only {got} are present")
            }
            CoreError::Storage { what } => write!(f, "stable-storage failure: {what}"),
            CoreError::BaseNotFull => {
                write!(f, "first checkpoint in store is not a full checkpoint")
            }
            CoreError::GuardFailed { expected, found } => {
                write!(f, "specialization guard failed: expected {expected}, found {found}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for CoreError {
    fn from(e: HeapError) -> CoreError {
        CoreError::Heap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let errors: Vec<CoreError> = vec![
            CoreError::Heap(HeapError::UnknownClassName("X".into())),
            CoreError::Decode { offset: 3, what: "bad tag".into() },
            CoreError::UnknownClassIndex(9),
            CoreError::FieldCountMismatch { class: "X".into(), recorded: 1, expected: 2 },
            CoreError::MissingObject(StableId(4)),
            CoreError::EmptyStore,
            CoreError::SequenceGap { expected: 2, got: 5 },
            CoreError::OversizedRecord { index: 0, claimed: 1 << 40, max: 1 << 30 },
            CoreError::TruncatedRecord { index: 1, claimed: 64, got: 7 },
            CoreError::Storage { what: "disk on fire".into() },
            CoreError::BaseNotFull,
            CoreError::GuardFailed { expected: "BTEntry".into(), found: "null".into() },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
