//! Randomized byte-identity of the dirty-set journal fast path.
//!
//! Three mirrored heaps receive the *same* operation script — field
//! writes, reference rewires, explicit `set_modified` calls,
//! `mark_all_modified` storms, fresh allocations (reachable and garbage),
//! and GC cycles — and are checkpointed each round by three drivers:
//!
//! * a journal-enabled [`Checkpointer`] (the fast path under test),
//! * a `without_journal` reference traversal (the slow path), and
//! * `checkpoint_parallel` on a journal-enabled driver.
//!
//! Every round the three streams must be byte-identical: the journal is a
//! membership filter over the cached pre-order, never a different format.
//! Each case is fully determined by its seed, named in every assertion.

use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
use ickp_heap::{ClassId, ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_prng::Prng;

const MIRRORS: usize = 3;

fn registry() -> (ClassRegistry, ClassId) {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define(
            "Node",
            None,
            &[
                ("v", FieldType::Int),
                ("left", FieldType::Ref(None)),
                ("right", FieldType::Ref(None)),
            ],
        )
        .unwrap();
    (reg, node)
}

/// The shared mutable world: `MIRRORS` heaps kept structurally identical
/// by replaying every operation on each. Because allocation order is
/// identical, `ObjectId`s coincide across mirrors and one id list serves
/// all heaps.
struct World {
    heaps: Vec<Heap>,
    node: ClassId,
    roots: Vec<ObjectId>,
    objects: Vec<ObjectId>,
}

impl World {
    fn seed(rng: &mut Prng, nroots: usize, extra: usize) -> World {
        let (reg, node) = registry();
        let heaps: Vec<Heap> = (0..MIRRORS).map(|_| Heap::new(reg.clone())).collect();
        let mut world = World { heaps, node, roots: Vec::new(), objects: Vec::new() };
        for _ in 0..nroots {
            let id = world.alloc();
            world.roots.push(id);
        }
        for _ in 0..extra {
            let id = world.alloc();
            world.attach(rng, id);
        }
        world
    }

    /// Allocates one node on every mirror, returning the (shared) id.
    fn alloc(&mut self) -> ObjectId {
        let ids: Vec<ObjectId> =
            self.heaps.iter_mut().map(|h| h.alloc(self.node).unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "mirrored allocation diverged");
        self.objects.push(ids[0]);
        ids[0]
    }

    /// Points a random ref slot of a random existing object at `target`.
    fn attach(&mut self, rng: &mut Prng, target: ObjectId) {
        let src = *rng.choose(&self.objects);
        let slot = 1 + rng.index(2);
        for h in &mut self.heaps {
            h.set_field(src, slot, Value::Ref(Some(target))).unwrap();
        }
    }

    /// Applies one random mutation to every mirror.
    fn step(&mut self, rng: &mut Prng) {
        match rng.below(100) {
            // Plain data writes dominate, as in any real mutator: they
            // dirty objects without invalidating the traversal cache.
            0..=59 => {
                let id = *rng.choose(&self.objects);
                let v = rng.next_i32();
                for h in &mut self.heaps {
                    h.set_field(id, 0, Value::Int(v)).unwrap();
                }
            }
            // Reference rewires change the graph shape (and may strand
            // subtrees for the next GC).
            60..=74 => {
                let src = *rng.choose(&self.objects);
                let slot = 1 + rng.index(2);
                let target = if rng.ratio(1, 4) { None } else { Some(*rng.choose(&self.objects)) };
                for h in &mut self.heaps {
                    h.set_field(src, slot, Value::Ref(target)).unwrap();
                }
            }
            // Fresh allocations: half wired into the graph, half left as
            // garbage for the collector.
            75..=84 => {
                let id = self.alloc();
                if rng.next_bool() {
                    self.attach(rng, id);
                }
            }
            // Out-of-band dirtying (native code, debugger pokes).
            85..=92 => {
                let id = *rng.choose(&self.objects);
                for h in &mut self.heaps {
                    h.set_modified(id).unwrap();
                }
            }
            // Conservative "everything is dirty" storms.
            93..=95 => {
                for h in &mut self.heaps {
                    h.mark_all_modified();
                }
            }
            // Garbage collection; prune dead ids from the shared list.
            _ => {
                let roots = self.roots.clone();
                for h in &mut self.heaps {
                    h.collect(&roots).unwrap();
                }
                let live = &self.heaps[0];
                self.objects.retain(|&id| live.contains(id));
            }
        }
    }
}

#[test]
fn journal_fast_path_streams_are_byte_identical_to_traversal() {
    let mut fast_rounds = 0u32;
    for case in 0..12u64 {
        let mut rng = Prng::seed_from_u64(0x10a2_2a01 + case);
        let nroots = 2 + rng.index(4);
        let extra = 8 + rng.index(24);
        let mut world = World::seed(&mut rng, nroots, extra);
        let table = MethodTable::derive(world.heaps[0].registry());

        let mut fast = Checkpointer::new(CheckpointConfig::incremental());
        let mut slow = Checkpointer::new(CheckpointConfig::incremental().without_journal());
        let mut par = Checkpointer::new(CheckpointConfig::incremental());

        for round in 0..24 {
            for _ in 0..rng.index(9) {
                world.step(&mut rng);
            }
            let roots = world.roots.clone();
            let a = fast.checkpoint(&mut world.heaps[0], &table, &roots).unwrap();
            let b = slow.checkpoint(&mut world.heaps[1], &table, &roots).unwrap();
            let c = par
                .checkpoint_parallel(&mut world.heaps[2], &table, &roots, 1 + round % 4)
                .unwrap();
            assert_eq!(a.bytes(), b.bytes(), "case {case} round {round}: fast vs slow");
            assert_eq!(c.bytes(), b.bytes(), "case {case} round {round}: parallel vs slow");
            assert_eq!(
                a.stats().objects_recorded,
                b.stats().objects_recorded,
                "case {case} round {round}"
            );
            if a.stats().journal_hits > 0 {
                fast_rounds += 1;
            }
        }
    }
    // The schedule must actually exercise the fast path, not merely fall
    // back to traversal every round.
    assert!(fast_rounds > 20, "only {fast_rounds} journal-served rounds across all cases");
}

/// The journal protocol survives the checkpoint lifecycle's two pointer
/// moves: [`Checkpointer::rollback`] onto a heap restored from a store
/// prefix (which must drop the now-stale traversal cache), and `compact`
/// (which rewrites the store under the producer). After each move the
/// journal fast path must keep producing streams byte-identical to a
/// slow-path reference on a mirrored heap, and every intermediate store
/// must restore to exactly the live state.
#[test]
fn journal_integrity_survives_rollback_and_compaction() {
    use ickp_core::{compact, restore, verify_restore, CheckpointStore, RestorePolicy};

    let mut journal_hits = 0u64;
    for case in 0..6u64 {
        let mut rng = Prng::seed_from_u64(0x0011_ba5e + case);
        let (nroots, extra) = (2 + rng.index(3), 10 + rng.index(16));
        let mut world = World::seed(&mut rng, nroots, extra);
        let node = world.node;
        let table = MethodTable::derive(world.heaps[0].registry());
        let mut fast = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        let roots = world.roots.clone();

        // Live rounds accumulating a base-plus-increments store.
        for _ in 0..6 {
            for _ in 0..1 + rng.index(6) {
                world.step(&mut rng);
            }
            store.push(fast.checkpoint(&mut world.heaps[0], &table, &roots).unwrap()).unwrap();
        }

        // "Crash": only a random prefix of the store survives. Restore
        // from it and resume mutating the restored heap, with the *same*
        // checkpointer rolled back — its cached traversal order belongs
        // to the old heap and must not leak into the new one. A clone of
        // the restored heap driven by a journal-free driver is the
        // byte-identity reference from here on.
        let keep = 1 + rng.index(store.len());
        let mut prefix = CheckpointStore::new();
        for rec in store.records().iter().take(keep) {
            prefix.push(rec.clone()).unwrap();
        }
        let rebuilt = restore(&prefix, world.heaps[0].registry(), RestorePolicy::Lenient).unwrap();
        let roots2 = rebuilt.roots().to_vec();
        let mut live = rebuilt.into_heap();
        let mut mirror = live.clone();
        fast.rollback(prefix.latest().unwrap().seq() + 1);
        let mut slow = Checkpointer::new(CheckpointConfig::incremental().without_journal());
        slow.set_next_seq(prefix.latest().unwrap().seq() + 1);

        let mut objects: Vec<ObjectId> = live.iter_live().collect();
        let mutate =
            |live: &mut Heap, mirror: &mut Heap, objects: &mut Vec<ObjectId>, rng: &mut Prng| {
                match rng.below(100) {
                    0..=64 => {
                        let id = *rng.choose(objects);
                        let v = rng.next_i32();
                        for h in [&mut *live, &mut *mirror] {
                            h.set_field(id, 0, Value::Int(v)).unwrap();
                        }
                    }
                    65..=79 => {
                        let src = *rng.choose(objects);
                        let slot = 1 + rng.index(2);
                        let target =
                            if rng.ratio(1, 4) { None } else { Some(*rng.choose(objects)) };
                        for h in [&mut *live, &mut *mirror] {
                            h.set_field(src, slot, Value::Ref(target)).unwrap();
                        }
                    }
                    80..=89 => {
                        let id = *rng.choose(objects);
                        for h in [&mut *live, &mut *mirror] {
                            h.set_modified(id).unwrap();
                        }
                    }
                    _ => {
                        let a = live.alloc(node).unwrap();
                        let b = mirror.alloc(node).unwrap();
                        assert_eq!(a, b, "mirrored allocation diverged after restore");
                        let src = *rng.choose(objects);
                        let slot = 1 + rng.index(2);
                        for h in [&mut *live, &mut *mirror] {
                            h.set_field(src, slot, Value::Ref(Some(a))).unwrap();
                        }
                        objects.push(a);
                    }
                }
            };

        for round in 0..8 {
            for _ in 0..rng.index(5) {
                mutate(&mut live, &mut mirror, &mut objects, &mut rng);
            }
            let a = fast.checkpoint(&mut live, &table, &roots2).unwrap();
            let b = slow.checkpoint(&mut mirror, &table, &roots2).unwrap();
            assert_eq!(
                a.bytes(),
                b.bytes(),
                "case {case} round {round}: post-rollback fast vs slow"
            );
            journal_hits += a.stats().journal_hits;
            prefix.push(a).unwrap();
        }
        let recheck = restore(&prefix, live.registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(
            verify_restore(&live, &roots2, &recheck).unwrap(),
            None,
            "case {case}: store diverged from live state after rollback"
        );

        // Compaction: squash the whole history into one full base, then
        // keep appending fast-path increments on top of it.
        let mut compacted = compact(&prefix, live.registry()).unwrap();
        let base = restore(&compacted, live.registry(), RestorePolicy::RequireFullBase).unwrap();
        assert_eq!(
            verify_restore(&live, &roots2, &base).unwrap(),
            None,
            "case {case}: compaction changed the restored state"
        );
        for round in 0..4 {
            for _ in 0..1 + rng.index(4) {
                mutate(&mut live, &mut mirror, &mut objects, &mut rng);
            }
            let a = fast.checkpoint(&mut live, &table, &roots2).unwrap();
            let b = slow.checkpoint(&mut mirror, &table, &roots2).unwrap();
            assert_eq!(
                a.bytes(),
                b.bytes(),
                "case {case} round {round}: post-compact fast vs slow"
            );
            journal_hits += a.stats().journal_hits;
            compacted.push(a).unwrap();
        }
        let end = restore(&compacted, live.registry(), RestorePolicy::RequireFullBase).unwrap();
        assert_eq!(
            verify_restore(&live, &roots2, &end).unwrap(),
            None,
            "case {case}: compacted store diverged from live state"
        );
    }
    // The schedule must actually exercise the journal fast path after the
    // rollbacks and compactions, not merely fall back to traversal.
    assert!(journal_hits > 0, "no journal-served records across all cases");
}

/// The journal survives epochs where *nothing* was modified: the fast
/// path emits a bare header+footer stream identical to what a full
/// traversal of an all-clean heap produces.
#[test]
fn clean_rounds_produce_identical_empty_streams() {
    let mut rng = Prng::seed_from_u64(0x10a2_2a99);
    let mut world = World::seed(&mut rng, 3, 12);
    let table = MethodTable::derive(world.heaps[0].registry());
    let mut fast = Checkpointer::new(CheckpointConfig::incremental());
    let mut slow = Checkpointer::new(CheckpointConfig::incremental().without_journal());
    let roots = world.roots.clone();

    // Round 0 clears allocation dirt and primes the cache.
    fast.checkpoint(&mut world.heaps[0], &table, &roots).unwrap();
    slow.checkpoint(&mut world.heaps[1], &table, &roots).unwrap();
    for round in 0..3 {
        let a = fast.checkpoint(&mut world.heaps[0], &table, &roots).unwrap();
        let b = slow.checkpoint(&mut world.heaps[1], &table, &roots).unwrap();
        assert_eq!(a.bytes(), b.bytes(), "round {round}");
        assert_eq!(a.stats().objects_recorded, 0, "round {round}");
        assert_eq!(a.stats().refs_followed, 0, "journal path chases no refs");
    }
}
