//! Randomized tests: stream round-trips and checkpoint/restore on random
//! object trees.
//!
//! Previously written with `proptest`; rewritten over the in-repo seeded
//! PRNG so the suite builds with no network access. Each case is fully
//! determined by its seed, named in the assertion message for replay.

use ickp_core::{
    decode, restore, verify_restore, CheckpointConfig, CheckpointKind, CheckpointStore,
    Checkpointer, MethodTable, RecordedValue, RestorePolicy, StreamWriter,
};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, StableId, Value};
use ickp_prng::Prng;

/// A random primitive value paired with its field type.
#[derive(Debug, Clone, Copy)]
enum PrimSpec {
    Int(i32),
    Long(i64),
    Double(f64),
    Bool(bool),
}

fn random_prim(rng: &mut Prng) -> PrimSpec {
    match rng.below(4) {
        0 => PrimSpec::Int(rng.next_i32()),
        1 => PrimSpec::Long(rng.next_i64()),
        2 => PrimSpec::Double(f64::from_bits(rng.next_u64())),
        _ => PrimSpec::Bool(rng.next_bool()),
    }
}

/// Any sequence of primitive fields round-trips bit-exactly through the
/// stream encoder and decoder.
#[test]
fn stream_round_trips_arbitrary_layouts() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0xc0de_0000 + case);
        let prims: Vec<PrimSpec> = (0..1 + rng.index(23)).map(|_| random_prim(&mut rng)).collect();

        let mut reg = ClassRegistry::new();
        let fields: Vec<(String, FieldType)> = prims
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let ty = match p {
                    PrimSpec::Int(_) => FieldType::Int,
                    PrimSpec::Long(_) => FieldType::Long,
                    PrimSpec::Double(_) => FieldType::Double,
                    PrimSpec::Bool(_) => FieldType::Bool,
                };
                (format!("f{i}"), ty)
            })
            .collect();
        let refs: Vec<(&str, FieldType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let class = reg.define("X", None, &refs).unwrap();

        let mut w = StreamWriter::new(7, CheckpointKind::Full, &[StableId(1)]);
        w.begin_object(StableId(1), class, prims.len());
        for p in &prims {
            match p {
                PrimSpec::Int(v) => w.write_int(*v),
                PrimSpec::Long(v) => w.write_long(*v),
                PrimSpec::Double(v) => w.write_double(*v),
                PrimSpec::Bool(v) => w.write_bool(*v),
            }
        }
        let bytes = w.finish();
        let d = decode(&bytes, &reg).unwrap();
        assert_eq!(d.objects.len(), 1, "case {case}");
        for (p, r) in prims.iter().zip(&d.objects[0].fields) {
            match (p, r) {
                (PrimSpec::Int(a), RecordedValue::Int(b)) => assert_eq!(a, b, "case {case}"),
                (PrimSpec::Long(a), RecordedValue::Long(b)) => assert_eq!(a, b, "case {case}"),
                (PrimSpec::Double(a), RecordedValue::Double(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "case {case}")
                }
                (PrimSpec::Bool(a), RecordedValue::Bool(b)) => assert_eq!(a, b, "case {case}"),
                (p, r) => panic!("case {case}: kind mismatch {p:?} vs {r:?}"),
            }
        }
    }
}

/// Random binary trees checkpoint and restore exactly, under both
/// full-then-increment and all-increment protocols.
#[test]
fn random_trees_restore_exactly() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0x7ee5_0000 + case);
        let structure: Vec<bool> = (0..1 + rng.index(39)).map(|_| rng.next_bool()).collect();
        let mutations: Vec<(u16, i32)> =
            (0..rng.index(30)).map(|_| (rng.below(1 << 16) as u16, rng.next_i32())).collect();
        let full_base = rng.next_bool();

        let mut reg = ClassRegistry::new();
        let node = reg
            .define(
                "Node",
                None,
                &[("v", FieldType::Int), ("l", FieldType::Ref(None)), ("r", FieldType::Ref(None))],
            )
            .unwrap();
        let mut heap = Heap::new(reg);

        // Build a random tree: each `true` attaches a new node to a
        // random existing one on the left or right.
        let root = heap.alloc(node).unwrap();
        let mut nodes: Vec<ObjectId> = vec![root];
        for (i, left) in structure.iter().enumerate() {
            let parent = nodes[i % nodes.len()];
            let slot = if *left { 1 } else { 2 };
            if heap.field(parent, slot).unwrap().is_null() {
                let child = heap.alloc(node).unwrap();
                heap.set_field(parent, slot, Value::Ref(Some(child))).unwrap();
                nodes.push(child);
            }
        }

        let table = MethodTable::derive(heap.registry());
        let mut store = CheckpointStore::new();
        if full_base {
            let mut full = Checkpointer::new(CheckpointConfig::full());
            store.push(full.checkpoint(&mut heap, &table, &[root]).unwrap()).unwrap();
        } else {
            let mut incr = Checkpointer::new(CheckpointConfig::incremental());
            store.push(incr.checkpoint(&mut heap, &table, &[root]).unwrap()).unwrap();
        }

        // Random mutation rounds, each followed by an increment.
        let mut incr = Checkpointer::new(CheckpointConfig::incremental());
        // Fast-forward the sequence past the base.
        incr.checkpoint(&mut heap.clone(), &table, &[]).unwrap();
        for chunk in mutations.chunks(5) {
            for (pick, v) in chunk {
                let target = nodes[*pick as usize % nodes.len()];
                heap.set_field(target, 0, Value::Int(*v)).unwrap();
            }
            let rec = incr.checkpoint(&mut heap, &table, &[root]).unwrap();
            store.push(rec).unwrap();
        }

        let policy =
            if full_base { RestorePolicy::RequireFullBase } else { RestorePolicy::Lenient };
        let rebuilt = restore(&store, heap.registry(), policy).unwrap();
        assert_eq!(verify_restore(&heap, &[root], &rebuilt).unwrap(), None, "case {case}");
    }
}

/// Compaction of any such store preserves the recovered state.
#[test]
fn compaction_is_semantics_preserving() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0xc0ac_0000 + case);
        let mutations: Vec<(u8, i32)> =
            (0..1 + rng.index(24)).map(|_| (rng.below(256) as u8, rng.next_i32())).collect();

        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let mut nodes = Vec::new();
        let mut next = None;
        for _ in 0..8 {
            let n = heap.alloc(node).unwrap();
            heap.set_field(n, 1, Value::Ref(next)).unwrap();
            next = Some(n);
            nodes.push(n);
        }
        let root = *nodes.last().unwrap();

        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        store.push(ckp.checkpoint(&mut heap, &table, &[root]).unwrap()).unwrap();
        for chunk in mutations.chunks(4) {
            for (pick, v) in chunk {
                let target = nodes[*pick as usize % nodes.len()];
                heap.set_field(target, 0, Value::Int(*v)).unwrap();
            }
            store.push(ckp.checkpoint(&mut heap, &table, &[root]).unwrap()).unwrap();
        }

        let compacted = ickp_core::compact(&store, heap.registry()).unwrap();
        let a = restore(&store, heap.registry(), RestorePolicy::Lenient).unwrap();
        let b = restore(&compacted, heap.registry(), RestorePolicy::RequireFullBase).unwrap();
        assert_eq!(verify_restore(&heap, &[root], &a).unwrap(), None, "case {case}");
        assert_eq!(verify_restore(&heap, &[root], &b).unwrap(), None, "case {case}");
    }
}
