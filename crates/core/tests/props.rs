//! Property tests: stream round-trips and checkpoint/restore on random
//! object trees.

use ickp_core::{
    decode, restore, verify_restore, CheckpointConfig, CheckpointKind, CheckpointStore,
    Checkpointer, MethodTable, RecordedValue, RestorePolicy, StreamWriter,
};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, StableId, Value};
use proptest::prelude::*;

/// A random primitive value paired with its field type.
#[derive(Debug, Clone, Copy)]
enum PrimSpec {
    Int(i32),
    Long(i64),
    Double(f64),
    Bool(bool),
}

fn arb_prim() -> impl Strategy<Value = PrimSpec> {
    prop_oneof![
        any::<i32>().prop_map(PrimSpec::Int),
        any::<i64>().prop_map(PrimSpec::Long),
        any::<f64>().prop_map(PrimSpec::Double),
        any::<bool>().prop_map(PrimSpec::Bool),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any sequence of primitive fields round-trips bit-exactly through
    /// the stream encoder and decoder.
    #[test]
    fn stream_round_trips_arbitrary_layouts(prims in proptest::collection::vec(arb_prim(), 1..24)) {
        let mut reg = ClassRegistry::new();
        let fields: Vec<(String, FieldType)> = prims
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let ty = match p {
                    PrimSpec::Int(_) => FieldType::Int,
                    PrimSpec::Long(_) => FieldType::Long,
                    PrimSpec::Double(_) => FieldType::Double,
                    PrimSpec::Bool(_) => FieldType::Bool,
                };
                (format!("f{i}"), ty)
            })
            .collect();
        let refs: Vec<(&str, FieldType)> =
            fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let class = reg.define("X", None, &refs).unwrap();

        let mut w = StreamWriter::new(7, CheckpointKind::Full, &[StableId(1)]);
        w.begin_object(StableId(1), class, prims.len());
        for p in &prims {
            match p {
                PrimSpec::Int(v) => w.write_int(*v),
                PrimSpec::Long(v) => w.write_long(*v),
                PrimSpec::Double(v) => w.write_double(*v),
                PrimSpec::Bool(v) => w.write_bool(*v),
            }
        }
        let bytes = w.finish();
        let d = decode(&bytes, &reg).unwrap();
        prop_assert_eq!(d.objects.len(), 1);
        for (p, r) in prims.iter().zip(&d.objects[0].fields) {
            match (p, r) {
                (PrimSpec::Int(a), RecordedValue::Int(b)) => prop_assert_eq!(a, b),
                (PrimSpec::Long(a), RecordedValue::Long(b)) => prop_assert_eq!(a, b),
                (PrimSpec::Double(a), RecordedValue::Double(b)) => {
                    prop_assert_eq!(a.to_bits(), b.to_bits())
                }
                (PrimSpec::Bool(a), RecordedValue::Bool(b)) => prop_assert_eq!(a, b),
                (p, r) => prop_assert!(false, "kind mismatch {p:?} vs {r:?}"),
            }
        }
    }

    /// Random binary trees checkpoint and restore exactly, under both
    /// full-then-increment and all-increment protocols.
    #[test]
    fn random_trees_restore_exactly(
        (structure, mutations, full_base) in (
            proptest::collection::vec(any::<bool>(), 1..40),
            proptest::collection::vec((any::<u16>(), any::<i32>()), 0..30),
            any::<bool>(),
        )
    ) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define(
                "Node",
                None,
                &[("v", FieldType::Int), ("l", FieldType::Ref(None)), ("r", FieldType::Ref(None))],
            )
            .unwrap();
        let mut heap = Heap::new(reg);

        // Build a random tree: each `true` attaches a new node to a
        // random existing one on the left or right.
        let root = heap.alloc(node).unwrap();
        let mut nodes: Vec<ObjectId> = vec![root];
        for (i, left) in structure.iter().enumerate() {
            let parent = nodes[i % nodes.len()];
            let slot = if *left { 1 } else { 2 };
            if heap.field(parent, slot).unwrap().is_null() {
                let child = heap.alloc(node).unwrap();
                heap.set_field(parent, slot, Value::Ref(Some(child))).unwrap();
                nodes.push(child);
            }
        }

        let table = MethodTable::derive(heap.registry());
        let mut store = CheckpointStore::new();
        if full_base {
            let mut full = Checkpointer::new(CheckpointConfig::full());
            store.push(full.checkpoint(&mut heap, &table, &[root]).unwrap()).unwrap();
        } else {
            let mut incr = Checkpointer::new(CheckpointConfig::incremental());
            store.push(incr.checkpoint(&mut heap, &table, &[root]).unwrap()).unwrap();
        }

        // Random mutation rounds, each followed by an increment.
        let mut incr = Checkpointer::new(CheckpointConfig::incremental());
        // Fast-forward the sequence past the base.
        incr.checkpoint(&mut heap.clone(), &table, &[]).unwrap();
        for chunk in mutations.chunks(5) {
            for (pick, v) in chunk {
                let target = nodes[*pick as usize % nodes.len()];
                heap.set_field(target, 0, Value::Int(*v)).unwrap();
            }
            let rec = incr.checkpoint(&mut heap, &table, &[root]).unwrap();
            store.push(rec).unwrap();
        }

        let policy = if full_base {
            RestorePolicy::RequireFullBase
        } else {
            RestorePolicy::Lenient
        };
        let rebuilt = restore(&store, heap.registry(), policy).unwrap();
        prop_assert_eq!(verify_restore(&heap, &[root], &rebuilt).unwrap(), None);
    }

    /// Compaction of any such store preserves the recovered state.
    #[test]
    fn compaction_is_semantics_preserving(
        mutations in proptest::collection::vec((any::<u8>(), any::<i32>()), 1..25)
    ) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let mut nodes = Vec::new();
        let mut next = None;
        for _ in 0..8 {
            let n = heap.alloc(node).unwrap();
            heap.set_field(n, 1, Value::Ref(next)).unwrap();
            next = Some(n);
            nodes.push(n);
        }
        let root = *nodes.last().unwrap();

        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        store.push(ckp.checkpoint(&mut heap, &table, &[root]).unwrap()).unwrap();
        for chunk in mutations.chunks(4) {
            for (pick, v) in chunk {
                let target = nodes[*pick as usize % nodes.len()];
                heap.set_field(target, 0, Value::Int(*v)).unwrap();
            }
            store.push(ckp.checkpoint(&mut heap, &table, &[root]).unwrap()).unwrap();
        }

        let compacted = ickp_core::compact(&store, heap.registry()).unwrap();
        let a = restore(&store, heap.registry(), RestorePolicy::Lenient).unwrap();
        let b = restore(&compacted, heap.registry(), RestorePolicy::RequireFullBase).unwrap();
        prop_assert_eq!(verify_restore(&heap, &[root], &a).unwrap(), None);
        prop_assert_eq!(verify_restore(&heap, &[root], &b).unwrap(), None);
    }
}
