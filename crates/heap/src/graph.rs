//! Object-graph traversal utilities: reachability, acyclicity checks, and
//! shard partitioning for the parallel checkpointer.
//!
//! The paper assumes checkpointed object graphs are acyclic (§2: "we assume
//! that the checkpointed objects do not contain cycles"). The checkpointers
//! in `ickp-core`/`ickp-spec` inherit that assumption; this module provides
//! [`validate_acyclic`] so callers can *check* it instead of diverging, and
//! [`reachable_from`], which the full checkpointer and the restore verifier
//! use to enumerate a compound structure.
//!
//! [`partition_roots`] is the ownership pre-pass behind
//! `ickp_core::Checkpointer::checkpoint_parallel`: it splits a root set into
//! contiguous shards and assigns every reachable object to exactly one shard
//! (its *owner*), so independent workers can traverse and record disjoint
//! slices of the graph whose concatenation reproduces the sequential
//! traversal exactly.

use crate::error::HeapError;
use crate::heap::Heap;
use crate::ids::ObjectId;
use crate::value::Value;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Error produced by graph validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    /// A heap access failed (dangling reference, …).
    Heap(HeapError),
    /// A reference cycle was found through this object.
    Cycle(ObjectId),
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::Heap(e) => write!(f, "heap error during traversal: {e}"),
            ReachError::Cycle(o) => write!(f, "reference cycle through {o}"),
        }
    }
}

impl Error for ReachError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReachError::Heap(e) => Some(e),
            ReachError::Cycle(_) => None,
        }
    }
}

impl From<HeapError> for ReachError {
    fn from(e: HeapError) -> ReachError {
        ReachError::Heap(e)
    }
}

/// Enumerates every object reachable from `roots` (roots included),
/// in depth-first pre-order with duplicates removed.
///
/// Shared subobjects appear once. Cycles do not hang the traversal (a
/// visited set is kept) but are not reported either; use
/// [`validate_acyclic`] first when the acyclicity contract matters.
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points at
/// a freed object.
pub fn reachable_from(heap: &Heap, roots: &[ObjectId]) -> Result<Vec<ObjectId>, HeapError> {
    let mut seen: HashSet<ObjectId> = HashSet::new();
    let mut order = Vec::new();
    let mut stack: Vec<ObjectId> = roots.iter().rev().copied().collect();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        order.push(id);
        let obj = heap.object(id)?;
        // Push children in reverse so the first field is visited first.
        for value in obj.fields().iter().rev() {
            if let Value::Ref(Some(child)) = value {
                if !seen.contains(child) {
                    stack.push(*child);
                }
            }
        }
    }
    Ok(order)
}

/// Verifies that the graph reachable from `roots` contains no reference
/// cycle.
///
/// # Errors
///
/// * [`ReachError::Cycle`] naming an object on a cycle.
/// * [`ReachError::Heap`] if a traversed reference dangles.
pub fn validate_acyclic(heap: &Heap, roots: &[ObjectId]) -> Result<(), ReachError> {
    // Iterative three-color DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        Gray,
        Black,
    }
    let mut color: std::collections::HashMap<ObjectId, Color> = std::collections::HashMap::new();
    enum Step {
        Enter(ObjectId),
        Exit(ObjectId),
    }
    let mut stack: Vec<Step> = roots.iter().rev().map(|&r| Step::Enter(r)).collect();
    while let Some(step) = stack.pop() {
        match step {
            Step::Enter(id) => match color.get(&id) {
                Some(Color::Gray) => return Err(ReachError::Cycle(id)),
                Some(Color::Black) => {}
                None => {
                    color.insert(id, Color::Gray);
                    stack.push(Step::Exit(id));
                    let obj = heap.object(id)?;
                    for value in obj.fields().iter().rev() {
                        if let Value::Ref(Some(child)) = value {
                            match color.get(child) {
                                Some(Color::Gray) => return Err(ReachError::Cycle(*child)),
                                Some(Color::Black) => {}
                                None => stack.push(Step::Enter(*child)),
                            }
                        }
                    }
                }
            },
            Step::Exit(id) => {
                color.insert(id, Color::Black);
            }
        }
    }
    Ok(())
}

/// A partition of a root set into disjoint ownership shards.
///
/// Produced by [`partition_roots`]. Shard `i` holds a contiguous slice of
/// the original root order, and every object reachable from the whole root
/// set is owned by exactly one shard: the shard whose roots reach it
/// *first* in the sequential depth-first traversal order. Two invariants
/// follow, and the parallel checkpointer in `ickp-core` relies on both:
///
/// 1. **Prunability** — a traversal from shard `i`'s roots can stop at any
///    object it does not own: everything reachable through a foreign object
///    is owned by an earlier shard (first-touch ownership is closed under
///    reachability).
/// 2. **Order** — concatenating the owned objects of shard `0, 1, …` in
///    each shard's local depth-first order reproduces the global
///    depth-first pre-order over all roots, object for object.
///
/// # Example
///
/// ```
/// use ickp_heap::{partition_roots, ClassRegistry, FieldType, Heap};
///
/// # fn main() -> Result<(), ickp_heap::HeapError> {
/// let mut reg = ClassRegistry::new();
/// let leaf = reg.define("Leaf", None, &[("v", FieldType::Int)])?;
/// let mut heap = Heap::new(reg);
/// let roots: Vec<_> = (0..4).map(|_| heap.alloc(leaf)).collect::<Result<_, _>>()?;
///
/// let plan = partition_roots(&heap, &roots, 2)?;
/// assert_eq!(plan.num_shards(), 2);
/// assert_eq!(plan.roots(0), &roots[..2]);
/// assert_eq!(plan.roots(1), &roots[2..]);
/// assert_eq!(plan.owner_of(roots[3]), Some(1));
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<Vec<ObjectId>>,
    /// Owner shard per arena slot ([`UNOWNED`] = unreachable). Dense
    /// slot-indexed storage (see [`Heap::arena_size`]) keeps the per-object
    /// ownership test branch-predictable and hash-free, since both the
    /// pre-pass and every parallel worker consult it on each visit.
    owner: Vec<u32>,
    objects: usize,
}

/// Sentinel in [`ShardPlan::owner`] for slots not reachable from the roots.
const UNOWNED: u32 = u32::MAX;

impl ShardPlan {
    /// Number of shards: at most the requested worker count, at most the
    /// number of roots (and 0 for an empty root set).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The roots assigned to `shard`, in original root order.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn roots(&self, shard: usize) -> &[ObjectId] {
        &self.shards[shard]
    }

    /// The shard that owns `id`, or `None` if `id` was not reachable from
    /// the partitioned root set.
    pub fn owner_of(&self, id: ObjectId) -> Option<u32> {
        self.owner.get(id.index()).copied().filter(|&s| s != UNOWNED)
    }

    /// `true` if `shard` owns `id`.
    #[inline]
    pub fn owns(&self, shard: usize, id: ObjectId) -> bool {
        self.owner.get(id.index()) == Some(&(shard as u32))
    }

    /// Total number of owned (= reachable) objects across all shards.
    pub fn num_objects(&self) -> usize {
        self.objects
    }

    /// Owned-object count per shard — the load-balance picture.
    pub fn objects_per_shard(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shards.len()];
        for &s in &self.owner {
            if s != UNOWNED {
                counts[s as usize] += 1;
            }
        }
        counts
    }

    /// The objects `shard` owns, in the order its worker visits (and, for
    /// a full checkpoint, records) them: depth-first from the shard's
    /// roots, pruned at every foreign object.
    ///
    /// This is the per-shard *footprint* of the parallel engine — exactly
    /// the traversal `ickp_core::Checkpointer::checkpoint_parallel`
    /// performs per worker — exposed so static analyses (the shard audit
    /// in `ickp-audit`) and tests can reason about what each worker may
    /// touch without running the engine. Concatenating the results for
    /// shard `0, 1, …` reproduces the global depth-first pre-order
    /// (invariant 2 above).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`] if a traversed reference
    /// points at a freed object.
    pub fn shard_preorder(&self, heap: &Heap, shard: usize) -> Result<Vec<ObjectId>, HeapError> {
        let mut order = Vec::new();
        let mut seen: HashSet<ObjectId> = HashSet::new();
        let mut stack: Vec<ObjectId> = self.shards[shard].iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            if !self.owns(shard, id) || !seen.insert(id) {
                continue;
            }
            order.push(id);
            let obj = heap.object(id)?;
            for value in obj.fields().iter().rev() {
                if let Value::Ref(Some(child)) = value {
                    stack.push(*child);
                }
            }
        }
        Ok(order)
    }
}

/// Splits `roots` into at most `shards` contiguous, balanced chunks: the
/// first `len % shards` chunks get one extra root, empty chunks are
/// dropped. Contiguity (not round-robin) is what makes shard-order
/// concatenation equal the sequential traversal order, so every shard
/// assignment in this crate goes through this function.
pub fn chunk_roots(roots: &[ObjectId], shards: usize) -> Vec<Vec<ObjectId>> {
    let shards = shards.max(1).min(roots.len().max(1));
    let base = roots.len() / shards;
    let extra = roots.len() % shards;
    let mut chunks: Vec<Vec<ObjectId>> = Vec::with_capacity(shards);
    let mut next = 0usize;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        chunks.push(roots[next..next + len].to_vec());
        next += len;
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Assigns every object reachable from `chunks` to its **first-touch
/// owner**: the lowest-index chunk whose depth-first traversal reaches it
/// first. This is the ownership pre-pass behind [`partition_roots`],
/// exposed separately so callers with a non-contiguous or hand-built
/// chunking (tests, the shard audit) can compute the same deterministic
/// prediction the parallel engine relies on.
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points
/// at a freed object.
pub fn first_touch_plan(heap: &Heap, chunks: Vec<Vec<ObjectId>>) -> Result<ShardPlan, HeapError> {
    let mut owner: Vec<u32> = vec![UNOWNED; heap.arena_size()];
    let mut objects = 0usize;
    for (index, chunk) in chunks.iter().enumerate() {
        let mut stack: Vec<ObjectId> = chunk.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            if owner[id.index()] != UNOWNED {
                continue;
            }
            owner[id.index()] = index as u32;
            objects += 1;
            let obj = heap.object(id)?;
            for value in obj.fields().iter().rev() {
                if let Value::Ref(Some(child)) = value {
                    if owner[child.index()] == UNOWNED {
                        stack.push(*child);
                    }
                }
            }
        }
    }
    Ok(ShardPlan { shards: chunks, owner, objects })
}

/// Splits `roots` into at most `shards` contiguous chunks and assigns every
/// reachable object to its first-touch owner shard.
///
/// The pre-pass is one sequential depth-first traversal (the same order as
/// [`reachable_from`]); an object shared between shards is owned by the
/// lowest-index shard that reaches it, which keeps ownership deterministic
/// and independent of any later parallel execution schedule. A `shards`
/// value of 0 is treated as 1; empty chunks are dropped, so
/// [`ShardPlan::num_shards`] may be less than `shards`.
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points at
/// a freed object.
pub fn partition_roots(
    heap: &Heap,
    roots: &[ObjectId],
    shards: usize,
) -> Result<ShardPlan, HeapError> {
    first_touch_plan(heap, chunk_roots(roots, shards))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassRegistry;
    use crate::ids::ClassId;
    use crate::value::FieldType;

    fn list_heap() -> (Heap, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define(
                "Node",
                None,
                &[("v", FieldType::Int), ("a", FieldType::Ref(None)), ("b", FieldType::Ref(None))],
            )
            .unwrap();
        (Heap::new(reg), node)
    }

    #[test]
    fn reachability_is_preorder_and_deduplicated() {
        let (mut heap, node) = list_heap();
        let leaf = heap.alloc(node).unwrap();
        let mid = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(mid))).unwrap();
        heap.set_field(root, 2, Value::Ref(Some(leaf))).unwrap();
        heap.set_field(mid, 1, Value::Ref(Some(leaf))).unwrap(); // shared
        let order = reachable_from(&heap, &[root]).unwrap();
        assert_eq!(order, vec![root, mid, leaf]);
    }

    #[test]
    fn multiple_roots_are_all_covered() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let order = reachable_from(&heap, &[a, b]).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn dag_sharing_is_not_a_cycle() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(shared))).unwrap();
        heap.set_field(root, 2, Value::Ref(Some(shared))).unwrap();
        validate_acyclic(&heap, &[root]).unwrap();
    }

    #[test]
    fn self_loop_is_detected() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(a))).unwrap();
        assert!(matches!(validate_acyclic(&heap, &[a]), Err(ReachError::Cycle(_))));
    }

    #[test]
    fn long_cycle_is_detected() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let c = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(b))).unwrap();
        heap.set_field(b, 1, Value::Ref(Some(c))).unwrap();
        heap.set_field(c, 1, Value::Ref(Some(a))).unwrap();
        assert!(matches!(validate_acyclic(&heap, &[a]), Err(ReachError::Cycle(_))));
    }

    #[test]
    fn reachable_does_not_hang_on_cycles() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(a))).unwrap();
        assert_eq!(reachable_from(&heap, &[a]).unwrap(), vec![a]);
    }

    #[test]
    fn dangling_reference_is_reported() {
        let (mut heap, node) = list_heap();
        let child = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();
        heap.free(child).unwrap();
        assert!(reachable_from(&heap, &[root]).is_err());
        assert!(matches!(validate_acyclic(&heap, &[root]), Err(ReachError::Heap(_))));
    }

    /// Builds `n` disjoint two-node chains and returns their heads.
    fn chains(heap: &mut Heap, node: ClassId, n: usize) -> Vec<ObjectId> {
        (0..n)
            .map(|_| {
                let tail = heap.alloc(node).unwrap();
                let head = heap.alloc(node).unwrap();
                heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
                head
            })
            .collect()
    }

    #[test]
    fn partition_covers_every_reachable_object_exactly_once() {
        let (mut heap, node) = list_heap();
        let roots = chains(&mut heap, node, 8);
        let plan = partition_roots(&heap, &roots, 4).unwrap();
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.num_objects(), 16);
        assert_eq!(plan.objects_per_shard(), vec![4, 4, 4, 4]);
        for id in reachable_from(&heap, &roots).unwrap() {
            assert!(plan.owner_of(id).is_some());
        }
    }

    #[test]
    fn chunks_are_contiguous_and_balanced() {
        let (mut heap, node) = list_heap();
        let roots = chains(&mut heap, node, 7);
        let plan = partition_roots(&heap, &roots, 3).unwrap();
        assert_eq!(plan.roots(0), &roots[0..3]);
        assert_eq!(plan.roots(1), &roots[3..5]);
        assert_eq!(plan.roots(2), &roots[5..7]);
    }

    #[test]
    fn shared_objects_go_to_the_lowest_reaching_shard() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(shared))).unwrap();
        heap.set_field(b, 1, Value::Ref(Some(shared))).unwrap();
        let plan = partition_roots(&heap, &[a, b], 2).unwrap();
        assert!(plan.owns(0, a));
        assert!(plan.owns(1, b));
        assert!(plan.owns(0, shared), "first-touch owner is the earlier shard");
        assert!(!plan.owns(1, shared));
    }

    #[test]
    fn shard_concatenation_matches_the_sequential_preorder() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let mut roots = chains(&mut heap, node, 6);
        // Cross-links: root 1 and root 4 both reach `shared`.
        heap.set_field(roots[1], 2, Value::Ref(Some(shared))).unwrap();
        heap.set_field(roots[4], 2, Value::Ref(Some(shared))).unwrap();
        // A duplicate root exercises within- and across-shard dedup.
        roots.push(roots[0]);

        let sequential = reachable_from(&heap, &roots).unwrap();
        for shards in [1, 2, 3, 4, 7] {
            let plan = partition_roots(&heap, &roots, shards).unwrap();
            let mut merged = Vec::new();
            for shard in 0..plan.num_shards() {
                // Local traversal exactly as a parallel worker performs it:
                // depth-first from the shard's roots, pruning at any object
                // the shard does not own.
                let mut stack: Vec<ObjectId> = plan.roots(shard).iter().rev().copied().collect();
                let mut seen = HashSet::new();
                while let Some(id) = stack.pop() {
                    if !plan.owns(shard, id) || !seen.insert(id) {
                        continue;
                    }
                    merged.push(id);
                    let obj = heap.object(id).unwrap();
                    for value in obj.fields().iter().rev() {
                        if let Value::Ref(Some(child)) = value {
                            stack.push(*child);
                        }
                    }
                }
            }
            assert_eq!(merged, sequential, "{shards} shards");
        }
    }

    #[test]
    fn shard_preorder_concatenation_is_the_sequential_preorder() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let roots = chains(&mut heap, node, 5);
        heap.set_field(roots[0], 2, Value::Ref(Some(shared))).unwrap();
        heap.set_field(roots[3], 2, Value::Ref(Some(shared))).unwrap();
        let sequential = reachable_from(&heap, &roots).unwrap();
        for shards in [1, 2, 3, 5] {
            let plan = partition_roots(&heap, &roots, shards).unwrap();
            let mut merged = Vec::new();
            for shard in 0..plan.num_shards() {
                let slice = plan.shard_preorder(&heap, shard).unwrap();
                assert_eq!(slice.len(), plan.objects_per_shard()[shard]);
                merged.extend(slice);
            }
            assert_eq!(merged, sequential, "{shards} shards");
        }
    }

    #[test]
    fn chunking_and_first_touch_compose_to_partition_roots() {
        let (mut heap, node) = list_heap();
        let roots = chains(&mut heap, node, 7);
        let chunks = chunk_roots(&roots, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.concat(), roots);
        let composed = first_touch_plan(&heap, chunks).unwrap();
        let direct = partition_roots(&heap, &roots, 3).unwrap();
        assert_eq!(composed.num_objects(), direct.num_objects());
        for id in reachable_from(&heap, &roots).unwrap() {
            assert_eq!(composed.owner_of(id), direct.owner_of(id));
        }
        // Non-contiguous hand-built chunks are accepted: first-touch is a
        // property of the chunk order, not of contiguity.
        let scrambled = first_touch_plan(&heap, vec![vec![roots[4]], vec![roots[0], roots[2]]]);
        let plan = scrambled.unwrap();
        assert_eq!(plan.num_shards(), 2);
        assert_eq!(plan.owner_of(roots[4]), Some(0));
        assert_eq!(plan.owner_of(roots[0]), Some(1));
        assert_eq!(plan.owner_of(roots[6]), None, "unlisted roots stay unowned");
    }

    #[test]
    fn degenerate_shard_counts_are_clamped() {
        let (mut heap, node) = list_heap();
        let roots = chains(&mut heap, node, 2);
        assert_eq!(partition_roots(&heap, &roots, 0).unwrap().num_shards(), 1);
        assert_eq!(partition_roots(&heap, &roots, 9).unwrap().num_shards(), 2);
        let empty = partition_roots(&heap, &[], 4).unwrap();
        assert_eq!(empty.num_shards(), 0);
        assert_eq!(empty.num_objects(), 0);
    }

    #[test]
    fn partition_reports_dangling_references() {
        let (mut heap, node) = list_heap();
        let child = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();
        heap.free(child).unwrap();
        assert!(partition_roots(&heap, &[root], 2).is_err());
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        let (mut heap, node) = list_heap();
        let mut head = heap.alloc(node).unwrap();
        for _ in 0..100_000 {
            let next = heap.alloc(node).unwrap();
            heap.set_field(next, 1, Value::Ref(Some(head))).unwrap();
            head = next;
        }
        assert_eq!(reachable_from(&heap, &[head]).unwrap().len(), 100_001);
        validate_acyclic(&heap, &[head]).unwrap();
    }
}
