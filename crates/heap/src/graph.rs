//! Object-graph traversal utilities: reachability and acyclicity checks.
//!
//! The paper assumes checkpointed object graphs are acyclic (§2: "we assume
//! that the checkpointed objects do not contain cycles"). The checkpointers
//! in `ickp-core`/`ickp-spec` inherit that assumption; this module provides
//! [`validate_acyclic`] so callers can *check* it instead of diverging, and
//! [`reachable_from`], which the full checkpointer and the restore verifier
//! use to enumerate a compound structure.

use crate::error::HeapError;
use crate::heap::Heap;
use crate::ids::ObjectId;
use crate::value::Value;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Error produced by graph validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    /// A heap access failed (dangling reference, …).
    Heap(HeapError),
    /// A reference cycle was found through this object.
    Cycle(ObjectId),
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::Heap(e) => write!(f, "heap error during traversal: {e}"),
            ReachError::Cycle(o) => write!(f, "reference cycle through {o}"),
        }
    }
}

impl Error for ReachError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReachError::Heap(e) => Some(e),
            ReachError::Cycle(_) => None,
        }
    }
}

impl From<HeapError> for ReachError {
    fn from(e: HeapError) -> ReachError {
        ReachError::Heap(e)
    }
}

/// Enumerates every object reachable from `roots` (roots included),
/// in depth-first pre-order with duplicates removed.
///
/// Shared subobjects appear once. Cycles do not hang the traversal (a
/// visited set is kept) but are not reported either; use
/// [`validate_acyclic`] first when the acyclicity contract matters.
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points at
/// a freed object.
pub fn reachable_from(heap: &Heap, roots: &[ObjectId]) -> Result<Vec<ObjectId>, HeapError> {
    let mut seen: HashSet<ObjectId> = HashSet::new();
    let mut order = Vec::new();
    let mut stack: Vec<ObjectId> = roots.iter().rev().copied().collect();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        order.push(id);
        let obj = heap.object(id)?;
        // Push children in reverse so the first field is visited first.
        for value in obj.fields().iter().rev() {
            if let Value::Ref(Some(child)) = value {
                if !seen.contains(child) {
                    stack.push(*child);
                }
            }
        }
    }
    Ok(order)
}

/// Verifies that the graph reachable from `roots` contains no reference
/// cycle.
///
/// # Errors
///
/// * [`ReachError::Cycle`] naming an object on a cycle.
/// * [`ReachError::Heap`] if a traversed reference dangles.
pub fn validate_acyclic(heap: &Heap, roots: &[ObjectId]) -> Result<(), ReachError> {
    // Iterative three-color DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        Gray,
        Black,
    }
    let mut color: std::collections::HashMap<ObjectId, Color> = std::collections::HashMap::new();
    enum Step {
        Enter(ObjectId),
        Exit(ObjectId),
    }
    let mut stack: Vec<Step> = roots.iter().rev().map(|&r| Step::Enter(r)).collect();
    while let Some(step) = stack.pop() {
        match step {
            Step::Enter(id) => match color.get(&id) {
                Some(Color::Gray) => return Err(ReachError::Cycle(id)),
                Some(Color::Black) => {}
                None => {
                    color.insert(id, Color::Gray);
                    stack.push(Step::Exit(id));
                    let obj = heap.object(id)?;
                    for value in obj.fields().iter().rev() {
                        if let Value::Ref(Some(child)) = value {
                            match color.get(child) {
                                Some(Color::Gray) => return Err(ReachError::Cycle(*child)),
                                Some(Color::Black) => {}
                                None => stack.push(Step::Enter(*child)),
                            }
                        }
                    }
                }
            },
            Step::Exit(id) => {
                color.insert(id, Color::Black);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassRegistry;
    use crate::ids::ClassId;
    use crate::value::FieldType;

    fn list_heap() -> (Heap, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define(
                "Node",
                None,
                &[("v", FieldType::Int), ("a", FieldType::Ref(None)), ("b", FieldType::Ref(None))],
            )
            .unwrap();
        (Heap::new(reg), node)
    }

    #[test]
    fn reachability_is_preorder_and_deduplicated() {
        let (mut heap, node) = list_heap();
        let leaf = heap.alloc(node).unwrap();
        let mid = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(mid))).unwrap();
        heap.set_field(root, 2, Value::Ref(Some(leaf))).unwrap();
        heap.set_field(mid, 1, Value::Ref(Some(leaf))).unwrap(); // shared
        let order = reachable_from(&heap, &[root]).unwrap();
        assert_eq!(order, vec![root, mid, leaf]);
    }

    #[test]
    fn multiple_roots_are_all_covered() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let order = reachable_from(&heap, &[a, b]).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn dag_sharing_is_not_a_cycle() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(shared))).unwrap();
        heap.set_field(root, 2, Value::Ref(Some(shared))).unwrap();
        validate_acyclic(&heap, &[root]).unwrap();
    }

    #[test]
    fn self_loop_is_detected() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(a))).unwrap();
        assert!(matches!(validate_acyclic(&heap, &[a]), Err(ReachError::Cycle(_))));
    }

    #[test]
    fn long_cycle_is_detected() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let c = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(b))).unwrap();
        heap.set_field(b, 1, Value::Ref(Some(c))).unwrap();
        heap.set_field(c, 1, Value::Ref(Some(a))).unwrap();
        assert!(matches!(validate_acyclic(&heap, &[a]), Err(ReachError::Cycle(_))));
    }

    #[test]
    fn reachable_does_not_hang_on_cycles() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(a))).unwrap();
        assert_eq!(reachable_from(&heap, &[a]).unwrap(), vec![a]);
    }

    #[test]
    fn dangling_reference_is_reported() {
        let (mut heap, node) = list_heap();
        let child = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();
        heap.free(child).unwrap();
        assert!(reachable_from(&heap, &[root]).is_err());
        assert!(matches!(validate_acyclic(&heap, &[root]), Err(ReachError::Heap(_))));
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        let (mut heap, node) = list_heap();
        let mut head = heap.alloc(node).unwrap();
        for _ in 0..100_000 {
            let next = heap.alloc(node).unwrap();
            heap.set_field(next, 1, Value::Ref(Some(head))).unwrap();
            head = next;
        }
        assert_eq!(reachable_from(&heap, &[head]).unwrap().len(), 100_001);
        validate_acyclic(&heap, &[head]).unwrap();
    }
}
