//! Object-graph traversal utilities: reachability, acyclicity checks, and
//! shard partitioning for the parallel checkpointer.
//!
//! The paper assumes checkpointed object graphs are acyclic (§2: "we assume
//! that the checkpointed objects do not contain cycles"). The checkpointers
//! in `ickp-core`/`ickp-spec` inherit that assumption; this module provides
//! [`validate_acyclic`] so callers can *check* it instead of diverging, and
//! [`reachable_from`], which the full checkpointer and the restore verifier
//! use to enumerate a compound structure.
//!
//! [`partition_roots`] is the ownership pre-pass behind
//! `ickp_core::Checkpointer::checkpoint_parallel`: it splits a root set into
//! contiguous shards and assigns every reachable object to exactly one shard
//! (its *owner*), so independent workers can traverse and record disjoint
//! slices of the graph whose concatenation reproduces the sequential
//! traversal exactly.
//!
//! The pre-pass itself comes in two interchangeable forms: the sequential
//! oracle ([`first_touch_plan`] / [`partition_roots`]) and a parallel
//! version ([`first_touch_plan_parallel`] / [`partition_roots_parallel`])
//! that computes the *same* plan with per-chunk traversals racing on an
//! atomic owner array — see the equivalence argument on
//! [`first_touch_plan_parallel`]. Chunk boundaries can be placed by root
//! count ([`chunk_bounds`]) or by per-root byte weight
//! ([`chunk_bounds_weighted`], fed by [`root_weights`]); both stay
//! contiguous, so the stream-order invariant is untouched.

use crate::error::HeapError;
use crate::heap::Heap;
use crate::ids::ObjectId;
use crate::value::Value;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Error produced by graph validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    /// A heap access failed (dangling reference, …).
    Heap(HeapError),
    /// A reference cycle was found through this object.
    Cycle(ObjectId),
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::Heap(e) => write!(f, "heap error during traversal: {e}"),
            ReachError::Cycle(o) => write!(f, "reference cycle through {o}"),
        }
    }
}

impl Error for ReachError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReachError::Heap(e) => Some(e),
            ReachError::Cycle(_) => None,
        }
    }
}

impl From<HeapError> for ReachError {
    fn from(e: HeapError) -> ReachError {
        ReachError::Heap(e)
    }
}

/// Enumerates every object reachable from `roots` (roots included),
/// in depth-first pre-order with duplicates removed.
///
/// Shared subobjects appear once. Cycles do not hang the traversal (a
/// visited set is kept) but are not reported either; use
/// [`validate_acyclic`] first when the acyclicity contract matters.
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points at
/// a freed object.
pub fn reachable_from(heap: &Heap, roots: &[ObjectId]) -> Result<Vec<ObjectId>, HeapError> {
    let mut seen: HashSet<ObjectId> = HashSet::new();
    let mut order = Vec::new();
    let mut stack: Vec<ObjectId> = roots.iter().rev().copied().collect();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        order.push(id);
        let obj = heap.object(id)?;
        // Push children in reverse so the first field is visited first.
        for value in obj.fields().iter().rev() {
            if let Value::Ref(Some(child)) = value {
                if !seen.contains(child) {
                    stack.push(*child);
                }
            }
        }
    }
    Ok(order)
}

/// Verifies that the graph reachable from `roots` contains no reference
/// cycle.
///
/// # Errors
///
/// * [`ReachError::Cycle`] naming an object on a cycle.
/// * [`ReachError::Heap`] if a traversed reference dangles.
pub fn validate_acyclic(heap: &Heap, roots: &[ObjectId]) -> Result<(), ReachError> {
    // Iterative three-color DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        Gray,
        Black,
    }
    let mut color: std::collections::HashMap<ObjectId, Color> = std::collections::HashMap::new();
    enum Step {
        Enter(ObjectId),
        Exit(ObjectId),
    }
    let mut stack: Vec<Step> = roots.iter().rev().map(|&r| Step::Enter(r)).collect();
    while let Some(step) = stack.pop() {
        match step {
            Step::Enter(id) => match color.get(&id) {
                Some(Color::Gray) => return Err(ReachError::Cycle(id)),
                Some(Color::Black) => {}
                None => {
                    color.insert(id, Color::Gray);
                    stack.push(Step::Exit(id));
                    let obj = heap.object(id)?;
                    for value in obj.fields().iter().rev() {
                        if let Value::Ref(Some(child)) = value {
                            match color.get(child) {
                                Some(Color::Gray) => return Err(ReachError::Cycle(*child)),
                                Some(Color::Black) => {}
                                None => stack.push(Step::Enter(*child)),
                            }
                        }
                    }
                }
            },
            Step::Exit(id) => {
                color.insert(id, Color::Black);
            }
        }
    }
    Ok(())
}

/// A partition of a root set into disjoint ownership shards.
///
/// Produced by [`partition_roots`]. Shard `i` holds a contiguous slice of
/// the original root order, and every object reachable from the whole root
/// set is owned by exactly one shard: the shard whose roots reach it
/// *first* in the sequential depth-first traversal order. Two invariants
/// follow, and the parallel checkpointer in `ickp-core` relies on both:
///
/// 1. **Prunability** — a traversal from shard `i`'s roots can stop at any
///    object it does not own: everything reachable through a foreign object
///    is owned by an earlier shard (first-touch ownership is closed under
///    reachability).
/// 2. **Order** — concatenating the owned objects of shard `0, 1, …` in
///    each shard's local depth-first order reproduces the global
///    depth-first pre-order over all roots, object for object.
///
/// # Example
///
/// ```
/// use ickp_heap::{partition_roots, ClassRegistry, FieldType, Heap};
///
/// # fn main() -> Result<(), ickp_heap::HeapError> {
/// let mut reg = ClassRegistry::new();
/// let leaf = reg.define("Leaf", None, &[("v", FieldType::Int)])?;
/// let mut heap = Heap::new(reg);
/// let roots: Vec<_> = (0..4).map(|_| heap.alloc(leaf)).collect::<Result<_, _>>()?;
///
/// let plan = partition_roots(&heap, &roots, 2)?;
/// assert_eq!(plan.num_shards(), 2);
/// assert_eq!(plan.roots(0), &roots[..2]);
/// assert_eq!(plan.roots(1), &roots[2..]);
/// assert_eq!(plan.owner_of(roots[3]), Some(1));
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// All chunk roots, concatenated in shard order. Shard `i` is the
    /// range `roots[bounds[i]..bounds[i + 1]]` — ranges over one flat
    /// buffer instead of a `Vec<Vec<ObjectId>>`, so building a plan costs
    /// two allocations regardless of the shard count (the pre-pass runs on
    /// every structure change, so this is a measured hot path — see the
    /// `prepass` microbench).
    roots: Vec<ObjectId>,
    /// Chunk boundaries into `roots`: `bounds.len() == num_shards() + 1`,
    /// `bounds[0] == 0`, strictly increasing.
    bounds: Vec<usize>,
    /// Owner shard per arena slot ([`UNOWNED`] = unreachable). Dense
    /// slot-indexed storage (see [`Heap::arena_size`]) keeps the per-object
    /// ownership test branch-predictable and hash-free, since both the
    /// pre-pass and every parallel worker consult it on each visit.
    owner: Vec<u32>,
    objects: usize,
}

/// Sentinel in [`ShardPlan::owner`] for slots not reachable from the roots.
const UNOWNED: u32 = u32::MAX;

impl ShardPlan {
    /// Number of shards: at most the requested worker count, at most the
    /// number of roots (and 0 for an empty root set).
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The roots assigned to `shard`, in original root order.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn roots(&self, shard: usize) -> &[ObjectId] {
        &self.roots[self.bounds[shard]..self.bounds[shard + 1]]
    }

    /// All chunk roots, concatenated in shard order. For a contiguous
    /// chunking this is the original root set verbatim.
    pub fn all_roots(&self) -> &[ObjectId] {
        &self.roots
    }

    /// The owner array, indexed by arena slot: `owner_table()[id.index()]`
    /// is the owning shard, or `u32::MAX` for slots not reachable from the
    /// partitioned roots. Exposed so equivalence suites can assert that two
    /// pre-pass implementations computed the *same* ownership, slot for
    /// slot.
    pub fn owner_table(&self) -> &[u32] {
        &self.owner
    }

    /// The shard that owns `id`, or `None` if `id` was not reachable from
    /// the partitioned root set.
    pub fn owner_of(&self, id: ObjectId) -> Option<u32> {
        self.owner.get(id.index()).copied().filter(|&s| s != UNOWNED)
    }

    /// `true` if `shard` owns `id`.
    #[inline]
    pub fn owns(&self, shard: usize, id: ObjectId) -> bool {
        self.owner.get(id.index()) == Some(&(shard as u32))
    }

    /// Total number of owned (= reachable) objects across all shards.
    pub fn num_objects(&self) -> usize {
        self.objects
    }

    /// Owned-object count per shard — the load-balance picture.
    pub fn objects_per_shard(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_shards()];
        for &s in &self.owner {
            if s != UNOWNED {
                counts[s as usize] += 1;
            }
        }
        counts
    }

    /// The objects `shard` owns, in the order its worker visits (and, for
    /// a full checkpoint, records) them: depth-first from the shard's
    /// roots, pruned at every foreign object.
    ///
    /// This is the per-shard *footprint* of the parallel engine — exactly
    /// the traversal `ickp_core::Checkpointer::checkpoint_parallel`
    /// performs per worker — exposed so static analyses (the shard audit
    /// in `ickp-audit`) and tests can reason about what each worker may
    /// touch without running the engine. Concatenating the results for
    /// shard `0, 1, …` reproduces the global depth-first pre-order
    /// (invariant 2 above).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`] if a traversed reference
    /// points at a freed object.
    pub fn shard_preorder(&self, heap: &Heap, shard: usize) -> Result<Vec<ObjectId>, HeapError> {
        let mut order = Vec::new();
        let mut seen: HashSet<ObjectId> = HashSet::new();
        let mut stack: Vec<ObjectId> = self.roots(shard).iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            if !self.owns(shard, id) || !seen.insert(id) {
                continue;
            }
            order.push(id);
            let obj = heap.object(id)?;
            for value in obj.fields().iter().rev() {
                if let Value::Ref(Some(child)) = value {
                    stack.push(*child);
                }
            }
        }
        Ok(order)
    }
}

/// Computes count-balanced contiguous chunk boundaries over a root slice of
/// length `len`: at most `shards` chunks, the first `len % shards` chunks
/// one root longer. Returns the boundary vector `bounds` with
/// `bounds.len() == chunks + 1`, `bounds[0] == 0`, strictly increasing —
/// chunk `i` is `roots[bounds[i]..bounds[i + 1]]`. An empty root slice
/// yields `[0]` (zero chunks). Contiguity (not round-robin) is what makes
/// shard-order concatenation equal the sequential traversal order, so every
/// shard assignment in this crate goes through this function or its
/// weighted sibling [`chunk_bounds_weighted`].
pub fn chunk_bounds(len: usize, shards: usize) -> Vec<usize> {
    if len == 0 {
        return vec![0];
    }
    let shards = shards.max(1).min(len);
    let base = len / shards;
    let extra = len % shards;
    let mut bounds = Vec::with_capacity(shards + 1);
    bounds.push(0);
    let mut next = 0usize;
    for i in 0..shards {
        next += base + usize::from(i < extra);
        bounds.push(next);
    }
    bounds
}

/// Computes **byte-weighted** contiguous chunk boundaries: `weights[i]` is
/// the estimated stream contribution of root `i` (see [`root_weights`]),
/// and boundary `j` is placed at the smallest index whose weight prefix sum
/// reaches `j/k` of the total — clamped so every chunk keeps at least one
/// root. Same return convention as [`chunk_bounds`].
///
/// Chunks stay contiguous, so the sequential-order concatenation invariant
/// (and therefore byte-identity of the merged parallel stream) is
/// unaffected; only the *placement* of the cut points changes. With uniform
/// weights this degenerates to exactly [`chunk_bounds`].
pub fn chunk_bounds_weighted(weights: &[u64], shards: usize) -> Vec<usize> {
    let n = weights.len();
    if n == 0 {
        return vec![0];
    }
    let k = shards.max(1).min(n);
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    let mut bounds = Vec::with_capacity(k + 1);
    bounds.push(0);
    let mut prefix: u128 = 0;
    let mut i = 0usize;
    for j in 1..k {
        // Smallest i with prefix(i) >= j * total / k (exact rational
        // comparison), kept inside [prev + 1, n - (k - j)] so all k chunks
        // stay non-empty.
        let min_i = bounds[j - 1] + 1;
        let max_i = n - (k - j);
        while i < max_i && (i < min_i || prefix * (k as u128) < total * (j as u128)) {
            prefix += weights[i] as u128;
            i += 1;
        }
        bounds.push(i);
    }
    bounds.push(n);
    bounds
}

/// Splits `roots` into at most `shards` contiguous, count-balanced chunks
/// (see [`chunk_bounds`]), materialized as owned vectors. The engine's hot
/// path works on boundary ranges instead; this shape survives for callers
/// that build or scramble chunkings by hand (the shard audit, tests).
pub fn chunk_roots(roots: &[ObjectId], shards: usize) -> Vec<Vec<ObjectId>> {
    chunk_bounds(roots.len(), shards).windows(2).map(|w| roots[w[0]..w[1]].to_vec()).collect()
}

/// Splits `roots` into at most `shards` contiguous chunks whose boundaries
/// are placed by the per-root byte estimates `weights` (see
/// [`chunk_bounds_weighted`]), materialized as owned vectors.
///
/// # Panics
///
/// Panics if `weights.len() != roots.len()`.
pub fn chunk_roots_weighted(
    roots: &[ObjectId],
    weights: &[u64],
    shards: usize,
) -> Vec<Vec<ObjectId>> {
    assert_eq!(weights.len(), roots.len(), "one weight per root");
    chunk_bounds_weighted(weights, shards).windows(2).map(|w| roots[w[0]..w[1]].to_vec()).collect()
}

/// Flattens a hand-built chunking into the internal (roots, bounds)
/// representation. Empty chunks are kept (as empty ranges), matching the
/// historical acceptance of arbitrary chunk vectors.
fn flatten_chunks(chunks: Vec<Vec<ObjectId>>) -> (Vec<ObjectId>, Vec<usize>) {
    let mut roots = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    let mut bounds = Vec::with_capacity(chunks.len() + 1);
    bounds.push(0);
    for chunk in chunks {
        roots.extend_from_slice(&chunk);
        bounds.push(roots.len());
    }
    (roots, bounds)
}

/// Assigns every object reachable from `chunks` to its **first-touch
/// owner**: the lowest-index chunk whose depth-first traversal reaches it
/// first. This is the sequential ownership oracle behind
/// [`partition_roots`], exposed separately so callers with a non-contiguous
/// or hand-built chunking (tests, the shard audit) can compute the same
/// deterministic prediction the parallel engine relies on.
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points
/// at a freed object.
pub fn first_touch_plan(heap: &Heap, chunks: Vec<Vec<ObjectId>>) -> Result<ShardPlan, HeapError> {
    let (roots, bounds) = flatten_chunks(chunks);
    first_touch_sequential(heap, roots, bounds)
}

/// Computes the same [`ShardPlan`] as [`first_touch_plan`] — same owner
/// array, slot for slot — with one traversal *per chunk* running in
/// parallel, racing on an atomic owner array with `fetch_min`.
///
/// **Equivalence argument.** Sequential first-touch ownership equals
/// "lowest-index chunk that can reach the object": chunk *i*'s sequential
/// traversal only skips nodes already owned by chunks `< i`, and first-touch
/// ownership is closed under reachability, so everything behind a skipped
/// node is also owned by an earlier chunk. That reformulation is
/// order-free, so each chunk can traverse independently and claim nodes
/// with an atomic minimum: a worker for chunk *i* expands a node only when
/// `fetch_min(i)` observed a previous owner `> i`, and prunes when the
/// previous owner is `<= i` (either chunk *i* itself already expanded it,
/// or a lower chunk reaches it — and, along any path from chunk *i*'s roots
/// to a node whose minimum reaching chunk is *i*, every intermediate node
/// *also* has minimum *i*, so the pruning never cuts chunk *i* off from a
/// node it must own). `Relaxed` ordering suffices: a stale high read only
/// causes a redundant push, never a wrong final value, and the spawning
/// scope's join synchronizes the final reads.
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points at
/// a freed object. Which worker trips the error first is
/// schedule-dependent; the error reported is the one from the
/// lowest-indexed failing chunk.
pub fn first_touch_plan_parallel(
    heap: &Heap,
    chunks: Vec<Vec<ObjectId>>,
) -> Result<ShardPlan, HeapError> {
    let (roots, bounds) = flatten_chunks(chunks);
    first_touch_parallel(heap, roots, bounds)
}

/// Splits `roots` into at most `shards` contiguous chunks and assigns every
/// reachable object to its first-touch owner shard.
///
/// The pre-pass is one sequential depth-first traversal (the same order as
/// [`reachable_from`]); an object shared between shards is owned by the
/// lowest-index shard that reaches it, which keeps ownership deterministic
/// and independent of any later parallel execution schedule. A `shards`
/// value of 0 is treated as 1 and the chunk count never exceeds the root
/// count, so [`ShardPlan::num_shards`] may be less than `shards`.
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points at
/// a freed object.
pub fn partition_roots(
    heap: &Heap,
    roots: &[ObjectId],
    shards: usize,
) -> Result<ShardPlan, HeapError> {
    first_touch_sequential(heap, roots.to_vec(), chunk_bounds(roots.len(), shards))
}

/// [`partition_roots`] with the ownership pre-pass run in parallel, one
/// worker per chunk (see [`first_touch_plan_parallel`] for the equivalence
/// argument). Produces the identical [`ShardPlan`].
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points at
/// a freed object.
pub fn partition_roots_parallel(
    heap: &Heap,
    roots: &[ObjectId],
    shards: usize,
) -> Result<ShardPlan, HeapError> {
    first_touch_parallel(heap, roots.to_vec(), chunk_bounds(roots.len(), shards))
}

/// Splits `roots` into at most `shards` contiguous chunks whose boundaries
/// are placed by the per-root byte estimates `weights` (see
/// [`chunk_bounds_weighted`] and [`root_weights`]), then assigns first-touch
/// ownership with the parallel pre-pass.
///
/// Because the weighted chunks are still contiguous, the resulting plan
/// satisfies the same two invariants as [`partition_roots`] (prunability
/// and sequential-order concatenation) and produces byte-identical merged
/// streams; only the load balance changes.
///
/// # Panics
///
/// Panics if `weights.len() != roots.len()`.
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points at
/// a freed object.
pub fn partition_roots_weighted(
    heap: &Heap,
    roots: &[ObjectId],
    weights: &[u64],
    shards: usize,
) -> Result<ShardPlan, HeapError> {
    assert_eq!(weights.len(), roots.len(), "one weight per root");
    first_touch_parallel(heap, roots.to_vec(), chunk_bounds_weighted(weights, shards))
}

/// The sequential first-touch oracle over the flat (roots, bounds)
/// representation.
fn first_touch_sequential(
    heap: &Heap,
    roots: Vec<ObjectId>,
    bounds: Vec<usize>,
) -> Result<ShardPlan, HeapError> {
    let mut owner: Vec<u32> = vec![UNOWNED; heap.arena_size()];
    let mut objects = 0usize;
    let mut stack: Vec<ObjectId> = Vec::new();
    for (index, window) in bounds.windows(2).enumerate() {
        stack.extend(roots[window[0]..window[1]].iter().rev());
        while let Some(id) = stack.pop() {
            if owner[id.index()] != UNOWNED {
                continue;
            }
            owner[id.index()] = index as u32;
            objects += 1;
            let obj = heap.object(id)?;
            for value in obj.fields().iter().rev() {
                if let Value::Ref(Some(child)) = value {
                    if owner[child.index()] == UNOWNED {
                        stack.push(*child);
                    }
                }
            }
        }
    }
    Ok(ShardPlan { roots, bounds, owner, objects })
}

/// The parallel first-touch pre-pass: one scoped worker per chunk, all
/// racing `fetch_min` claims on a shared atomic owner array.
fn first_touch_parallel(
    heap: &Heap,
    roots: Vec<ObjectId>,
    bounds: Vec<usize>,
) -> Result<ShardPlan, HeapError> {
    let shards = bounds.len() - 1;
    if shards <= 1 {
        // One chunk cannot race with anyone; skip the thread machinery.
        return first_touch_sequential(heap, roots, bounds);
    }
    let owner: Vec<AtomicU32> = (0..heap.arena_size()).map(|_| AtomicU32::new(UNOWNED)).collect();
    let results: Vec<Result<(), HeapError>> = std::thread::scope(|scope| {
        let owner = &owner;
        let roots = &roots;
        let handles: Vec<_> = bounds
            .windows(2)
            .enumerate()
            .map(|(index, window)| {
                let chunk = &roots[window[0]..window[1]];
                scope.spawn(move || claim_chunk(heap, owner, chunk, index as u32))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pre-pass worker panicked")).collect()
    });
    for result in results {
        result?;
    }
    let mut objects = 0usize;
    let owner: Vec<u32> = owner
        .into_iter()
        .map(|slot| {
            let s = slot.into_inner();
            objects += usize::from(s != UNOWNED);
            s
        })
        .collect();
    Ok(ShardPlan { roots, bounds, owner, objects })
}

/// Depth-first claim traversal for one chunk: claim each reached node with
/// `fetch_min(index)`, expand it only if the previous owner was higher, and
/// prune wherever a lower (or equal, i.e. already-visited) owner holds the
/// slot. See [`first_touch_plan_parallel`] for why pruning at lower-owned
/// nodes is safe.
fn claim_chunk(
    heap: &Heap,
    owner: &[AtomicU32],
    chunk: &[ObjectId],
    index: u32,
) -> Result<(), HeapError> {
    let mut stack: Vec<ObjectId> = chunk.iter().rev().copied().collect();
    while let Some(id) = stack.pop() {
        if owner[id.index()].fetch_min(index, Ordering::Relaxed) <= index {
            continue;
        }
        let obj = heap.object(id)?;
        for value in obj.fields().iter().rev() {
            if let Value::Ref(Some(child)) = value {
                // A stale high read only costs a redundant push; the claim
                // above re-checks before expanding.
                if owner[child.index()].load(Ordering::Relaxed) > index {
                    stack.push(*child);
                }
            }
        }
    }
    Ok(())
}

/// Estimates, for every root, the number of stream bytes a full checkpoint
/// of the whole root set attributes to that root: each reachable object
/// counts `overhead_per_object` (the per-record header bytes) plus its
/// class's encoded state size, credited to the **lowest-index root** that
/// reaches it.
///
/// First-touch at root granularity makes the estimate *exact* for
/// contiguous chunkings: a chunk's byte footprint under first-touch
/// ownership is precisely the sum of its roots' weights, because "lowest
/// root reaching an object lies in chunk c" and "lowest chunk reaching it
/// is c" coincide when chunks are contiguous in root order. These weights
/// feed [`chunk_bounds_weighted`] / [`partition_roots_weighted`]; the same
/// estimate is what the shard-imbalance lint (AUD205 in `ickp-audit`)
/// computes per shard, so balancing on it closes that feedback loop.
///
/// The per-root ownership pass runs in parallel (contiguous bands of roots
/// across the available cores, same claim algorithm as
/// [`first_touch_plan_parallel`]); the byte summation is one scan over the
/// live arena.
///
/// # Errors
///
/// Returns [`HeapError::DanglingObject`] if a traversed reference points at
/// a freed object.
pub fn root_weights(
    heap: &Heap,
    roots: &[ObjectId],
    overhead_per_object: u64,
) -> Result<Vec<u64>, HeapError> {
    let n = roots.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let owner: Vec<AtomicU32> = (0..heap.arena_size()).map(|_| AtomicU32::new(UNOWNED)).collect();
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get()).min(n);
    let bands = chunk_bounds(n, workers);
    let results: Vec<Result<(), HeapError>> = std::thread::scope(|scope| {
        let owner = &owner;
        let handles: Vec<_> = bands
            .windows(2)
            .map(|window| {
                let (start, end) = (window[0], window[1]);
                let band = &roots[start..end];
                scope.spawn(move || {
                    for (offset, root) in band.iter().enumerate() {
                        claim_chunk(
                            heap,
                            owner,
                            std::slice::from_ref(root),
                            (start + offset) as u32,
                        )?;
                    }
                    Ok(())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("weight worker panicked")).collect()
    });
    for result in results {
        result?;
    }
    let mut weights = vec![0u64; n];
    // Per-class encoded sizes are pure functions of the layout; memoize by
    // class index so the summation scan stays O(live objects).
    let mut class_sizes: Vec<Option<u64>> = Vec::new();
    for id in heap.iter_live() {
        let root = owner[id.index()].load(Ordering::Relaxed);
        if root == UNOWNED {
            continue;
        }
        let class = heap.class_of(id)?;
        let ci = class.index();
        if ci >= class_sizes.len() {
            class_sizes.resize(ci + 1, None);
        }
        let state = match class_sizes[ci] {
            Some(s) => s,
            None => {
                let s = heap.class(class)?.encoded_state_size() as u64;
                class_sizes[ci] = Some(s);
                s
            }
        };
        weights[root as usize] += overhead_per_object + state;
    }
    Ok(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassRegistry;
    use crate::ids::ClassId;
    use crate::value::FieldType;

    fn list_heap() -> (Heap, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define(
                "Node",
                None,
                &[("v", FieldType::Int), ("a", FieldType::Ref(None)), ("b", FieldType::Ref(None))],
            )
            .unwrap();
        (Heap::new(reg), node)
    }

    #[test]
    fn reachability_is_preorder_and_deduplicated() {
        let (mut heap, node) = list_heap();
        let leaf = heap.alloc(node).unwrap();
        let mid = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(mid))).unwrap();
        heap.set_field(root, 2, Value::Ref(Some(leaf))).unwrap();
        heap.set_field(mid, 1, Value::Ref(Some(leaf))).unwrap(); // shared
        let order = reachable_from(&heap, &[root]).unwrap();
        assert_eq!(order, vec![root, mid, leaf]);
    }

    #[test]
    fn multiple_roots_are_all_covered() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let order = reachable_from(&heap, &[a, b]).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn dag_sharing_is_not_a_cycle() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(shared))).unwrap();
        heap.set_field(root, 2, Value::Ref(Some(shared))).unwrap();
        validate_acyclic(&heap, &[root]).unwrap();
    }

    #[test]
    fn self_loop_is_detected() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(a))).unwrap();
        assert!(matches!(validate_acyclic(&heap, &[a]), Err(ReachError::Cycle(_))));
    }

    #[test]
    fn long_cycle_is_detected() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let c = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(b))).unwrap();
        heap.set_field(b, 1, Value::Ref(Some(c))).unwrap();
        heap.set_field(c, 1, Value::Ref(Some(a))).unwrap();
        assert!(matches!(validate_acyclic(&heap, &[a]), Err(ReachError::Cycle(_))));
    }

    #[test]
    fn reachable_does_not_hang_on_cycles() {
        let (mut heap, node) = list_heap();
        let a = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(a))).unwrap();
        assert_eq!(reachable_from(&heap, &[a]).unwrap(), vec![a]);
    }

    #[test]
    fn dangling_reference_is_reported() {
        let (mut heap, node) = list_heap();
        let child = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();
        heap.free(child).unwrap();
        assert!(reachable_from(&heap, &[root]).is_err());
        assert!(matches!(validate_acyclic(&heap, &[root]), Err(ReachError::Heap(_))));
    }

    /// Builds `n` disjoint two-node chains and returns their heads.
    fn chains(heap: &mut Heap, node: ClassId, n: usize) -> Vec<ObjectId> {
        (0..n)
            .map(|_| {
                let tail = heap.alloc(node).unwrap();
                let head = heap.alloc(node).unwrap();
                heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
                head
            })
            .collect()
    }

    #[test]
    fn partition_covers_every_reachable_object_exactly_once() {
        let (mut heap, node) = list_heap();
        let roots = chains(&mut heap, node, 8);
        let plan = partition_roots(&heap, &roots, 4).unwrap();
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.num_objects(), 16);
        assert_eq!(plan.objects_per_shard(), vec![4, 4, 4, 4]);
        for id in reachable_from(&heap, &roots).unwrap() {
            assert!(plan.owner_of(id).is_some());
        }
    }

    #[test]
    fn chunks_are_contiguous_and_balanced() {
        let (mut heap, node) = list_heap();
        let roots = chains(&mut heap, node, 7);
        let plan = partition_roots(&heap, &roots, 3).unwrap();
        assert_eq!(plan.roots(0), &roots[0..3]);
        assert_eq!(plan.roots(1), &roots[3..5]);
        assert_eq!(plan.roots(2), &roots[5..7]);
    }

    #[test]
    fn shared_objects_go_to_the_lowest_reaching_shard() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(shared))).unwrap();
        heap.set_field(b, 1, Value::Ref(Some(shared))).unwrap();
        let plan = partition_roots(&heap, &[a, b], 2).unwrap();
        assert!(plan.owns(0, a));
        assert!(plan.owns(1, b));
        assert!(plan.owns(0, shared), "first-touch owner is the earlier shard");
        assert!(!plan.owns(1, shared));
    }

    #[test]
    fn shard_concatenation_matches_the_sequential_preorder() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let mut roots = chains(&mut heap, node, 6);
        // Cross-links: root 1 and root 4 both reach `shared`.
        heap.set_field(roots[1], 2, Value::Ref(Some(shared))).unwrap();
        heap.set_field(roots[4], 2, Value::Ref(Some(shared))).unwrap();
        // A duplicate root exercises within- and across-shard dedup.
        roots.push(roots[0]);

        let sequential = reachable_from(&heap, &roots).unwrap();
        for shards in [1, 2, 3, 4, 7] {
            let plan = partition_roots(&heap, &roots, shards).unwrap();
            let mut merged = Vec::new();
            for shard in 0..plan.num_shards() {
                // Local traversal exactly as a parallel worker performs it:
                // depth-first from the shard's roots, pruning at any object
                // the shard does not own.
                let mut stack: Vec<ObjectId> = plan.roots(shard).iter().rev().copied().collect();
                let mut seen = HashSet::new();
                while let Some(id) = stack.pop() {
                    if !plan.owns(shard, id) || !seen.insert(id) {
                        continue;
                    }
                    merged.push(id);
                    let obj = heap.object(id).unwrap();
                    for value in obj.fields().iter().rev() {
                        if let Value::Ref(Some(child)) = value {
                            stack.push(*child);
                        }
                    }
                }
            }
            assert_eq!(merged, sequential, "{shards} shards");
        }
    }

    #[test]
    fn shard_preorder_concatenation_is_the_sequential_preorder() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let roots = chains(&mut heap, node, 5);
        heap.set_field(roots[0], 2, Value::Ref(Some(shared))).unwrap();
        heap.set_field(roots[3], 2, Value::Ref(Some(shared))).unwrap();
        let sequential = reachable_from(&heap, &roots).unwrap();
        for shards in [1, 2, 3, 5] {
            let plan = partition_roots(&heap, &roots, shards).unwrap();
            let mut merged = Vec::new();
            for shard in 0..plan.num_shards() {
                let slice = plan.shard_preorder(&heap, shard).unwrap();
                assert_eq!(slice.len(), plan.objects_per_shard()[shard]);
                merged.extend(slice);
            }
            assert_eq!(merged, sequential, "{shards} shards");
        }
    }

    #[test]
    fn chunking_and_first_touch_compose_to_partition_roots() {
        let (mut heap, node) = list_heap();
        let roots = chains(&mut heap, node, 7);
        let chunks = chunk_roots(&roots, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.concat(), roots);
        let composed = first_touch_plan(&heap, chunks).unwrap();
        let direct = partition_roots(&heap, &roots, 3).unwrap();
        assert_eq!(composed.num_objects(), direct.num_objects());
        for id in reachable_from(&heap, &roots).unwrap() {
            assert_eq!(composed.owner_of(id), direct.owner_of(id));
        }
        // Non-contiguous hand-built chunks are accepted: first-touch is a
        // property of the chunk order, not of contiguity.
        let scrambled = first_touch_plan(&heap, vec![vec![roots[4]], vec![roots[0], roots[2]]]);
        let plan = scrambled.unwrap();
        assert_eq!(plan.num_shards(), 2);
        assert_eq!(plan.owner_of(roots[4]), Some(0));
        assert_eq!(plan.owner_of(roots[0]), Some(1));
        assert_eq!(plan.owner_of(roots[6]), None, "unlisted roots stay unowned");
    }

    #[test]
    fn parallel_plan_equals_the_sequential_oracle() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let mut roots = chains(&mut heap, node, 9);
        heap.set_field(roots[1], 2, Value::Ref(Some(shared))).unwrap();
        heap.set_field(roots[6], 2, Value::Ref(Some(shared))).unwrap();
        roots.push(roots[2]); // duplicate root: cross-shard dedup
        for shards in [1, 2, 3, 4, 8, 100] {
            let sequential = partition_roots(&heap, &roots, shards).unwrap();
            let parallel = partition_roots_parallel(&heap, &roots, shards).unwrap();
            assert_eq!(parallel, sequential, "{shards} shards");
            assert_eq!(parallel.owner_table(), sequential.owner_table());
        }
    }

    #[test]
    fn parallel_plan_handles_hand_built_chunks() {
        let (mut heap, node) = list_heap();
        let roots = chains(&mut heap, node, 6);
        let chunks =
            vec![vec![roots[4]], vec![], vec![roots[0], roots[2]], vec![roots[4], roots[1]]];
        let sequential = first_touch_plan(&heap, chunks.clone()).unwrap();
        let parallel = first_touch_plan_parallel(&heap, chunks).unwrap();
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.num_shards(), 4);
        assert_eq!(parallel.roots(1), &[] as &[ObjectId]);
    }

    #[test]
    fn parallel_partition_reports_dangling_references() {
        let (mut heap, node) = list_heap();
        let child = heap.alloc(node).unwrap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        heap.set_field(b, 1, Value::Ref(Some(child))).unwrap();
        heap.free(child).unwrap();
        assert!(partition_roots_parallel(&heap, &[a, b], 2).is_err());
    }

    #[test]
    fn uniform_weights_reproduce_count_balanced_bounds() {
        for len in [1usize, 2, 3, 7, 8, 40] {
            for shards in [1usize, 2, 3, 4, 8] {
                let weights = vec![37u64; len];
                assert_eq!(
                    chunk_bounds_weighted(&weights, shards),
                    chunk_bounds(len, shards),
                    "{len} roots, {shards} shards"
                );
            }
        }
        assert_eq!(chunk_bounds(0, 4), vec![0]);
        assert_eq!(chunk_bounds_weighted(&[], 4), vec![0]);
    }

    #[test]
    fn weighted_bounds_cut_by_bytes_not_count() {
        // One heavy root up front: by count, 2 shards split 2+2; by weight,
        // the heavy root stands alone.
        assert_eq!(chunk_bounds_weighted(&[100, 1, 1, 1], 2), vec![0, 1, 4]);
        // Heavy tail: the light prefix groups together.
        assert_eq!(chunk_bounds_weighted(&[1, 1, 1, 100], 2), vec![0, 3, 4]);
        // Every chunk keeps at least one root even under extreme skew.
        assert_eq!(chunk_bounds_weighted(&[1000, 0, 0, 0], 4), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weighted_partition_keeps_the_sequential_concatenation() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let roots = chains(&mut heap, node, 7);
        heap.set_field(roots[0], 2, Value::Ref(Some(shared))).unwrap();
        heap.set_field(roots[5], 2, Value::Ref(Some(shared))).unwrap();
        let sequential = reachable_from(&heap, &roots).unwrap();
        let weights = root_weights(&heap, &roots, 15).unwrap();
        for shards in [1, 2, 3, 7] {
            let plan = partition_roots_weighted(&heap, &roots, &weights, shards).unwrap();
            let mut merged = Vec::new();
            for shard in 0..plan.num_shards() {
                merged.extend(plan.shard_preorder(&heap, shard).unwrap());
            }
            assert_eq!(merged, sequential, "{shards} shards");
            assert_eq!(plan.all_roots(), &roots[..]);
        }
    }

    #[test]
    fn root_weights_credit_shared_subgraphs_to_the_lowest_root() {
        let (mut heap, node) = list_heap();
        let shared = heap.alloc(node).unwrap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(shared))).unwrap();
        heap.set_field(b, 1, Value::Ref(Some(shared))).unwrap();
        // Node: int(4) + ref(8) + ref(8) = 20 state bytes; overhead 15.
        let per_object = 15 + 20u64;
        let weights = root_weights(&heap, &[a, b], 15).unwrap();
        assert_eq!(weights, vec![2 * per_object, per_object]);
        // Weights sum to the full-checkpoint footprint: each reachable
        // object counted exactly once.
        let reachable = reachable_from(&heap, &[a, b]).unwrap().len() as u64;
        assert_eq!(weights.iter().sum::<u64>(), reachable * per_object);
    }

    #[test]
    fn degenerate_shard_counts_are_clamped() {
        let (mut heap, node) = list_heap();
        let roots = chains(&mut heap, node, 2);
        assert_eq!(partition_roots(&heap, &roots, 0).unwrap().num_shards(), 1);
        assert_eq!(partition_roots(&heap, &roots, 9).unwrap().num_shards(), 2);
        let empty = partition_roots(&heap, &[], 4).unwrap();
        assert_eq!(empty.num_shards(), 0);
        assert_eq!(empty.num_objects(), 0);
    }

    #[test]
    fn partition_reports_dangling_references() {
        let (mut heap, node) = list_heap();
        let child = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();
        heap.free(child).unwrap();
        assert!(partition_roots(&heap, &[root], 2).is_err());
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        let (mut heap, node) = list_heap();
        let mut head = heap.alloc(node).unwrap();
        for _ in 0..100_000 {
            let next = heap.alloc(node).unwrap();
            heap.set_field(next, 1, Value::Ref(Some(head))).unwrap();
            head = next;
        }
        assert_eq!(reachable_from(&heap, &[head]).unwrap().len(), 100_001);
        validate_acyclic(&heap, &[head]).unwrap();
    }
}
