//! Error type for heap operations.

use crate::ids::{ClassId, ObjectId};
use crate::value::FieldType;
use std::error::Error;
use std::fmt;

/// Errors returned by class-registry and heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// A class id did not name a class of this registry.
    UnknownClass(ClassId),
    /// A class name was not defined in this registry.
    UnknownClassName(String),
    /// A class with this name was already defined.
    DuplicateClass(String),
    /// A field name collides with an inherited or sibling field.
    DuplicateField {
        /// Class being defined.
        class: String,
        /// Offending field name.
        field: String,
    },
    /// A field name was not found in the class layout.
    UnknownField {
        /// Class that was searched.
        class: String,
        /// Field name that was requested.
        field: String,
    },
    /// A slot index was out of bounds for the object's layout.
    SlotOutOfBounds {
        /// Object whose layout was violated.
        object: ObjectId,
        /// Requested slot.
        slot: usize,
        /// Number of slots in the layout.
        len: usize,
    },
    /// A value of the wrong kind was stored into a typed slot.
    TypeMismatch {
        /// Object being written.
        object: ObjectId,
        /// Slot being written.
        slot: usize,
        /// Declared slot type.
        expected: FieldType,
    },
    /// A reference-typed store violated the slot's class constraint.
    ClassConstraint {
        /// Object being written.
        object: ObjectId,
        /// Slot being written.
        slot: usize,
        /// Required class (the referent must be this class or a subclass).
        expected: ClassId,
        /// Actual class of the referent.
        actual: ClassId,
    },
    /// An object handle was stale (freed, or from another heap) or its slot
    /// was reused by a newer allocation.
    DanglingObject(ObjectId),
    /// A stable id was encountered twice during a restore-style bulk load.
    DuplicateStableId(u64),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::UnknownClass(c) => write!(f, "unknown class {c}"),
            HeapError::UnknownClassName(n) => write!(f, "unknown class name `{n}`"),
            HeapError::DuplicateClass(n) => write!(f, "class `{n}` is already defined"),
            HeapError::DuplicateField { class, field } => {
                write!(f, "field `{field}` is already defined in `{class}` or a superclass")
            }
            HeapError::UnknownField { class, field } => {
                write!(f, "class `{class}` has no field `{field}`")
            }
            HeapError::SlotOutOfBounds { object, slot, len } => {
                write!(f, "slot {slot} out of bounds for {object} with {len} fields")
            }
            HeapError::TypeMismatch { object, slot, expected } => {
                write!(f, "value stored in {object} slot {slot} is not of type {expected}")
            }
            HeapError::ClassConstraint { object, slot, expected, actual } => write!(
                f,
                "reference stored in {object} slot {slot} must be a {expected}, got {actual}"
            ),
            HeapError::DanglingObject(o) => write!(f, "dangling object handle {o}"),
            HeapError::DuplicateStableId(id) => write!(f, "stable id {id} used twice"),
        }
    }
}

impl Error for HeapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let obj = ObjectId { index: 0, generation: 0 };
        let errors: Vec<HeapError> = vec![
            HeapError::UnknownClass(ClassId(1)),
            HeapError::UnknownClassName("X".into()),
            HeapError::DuplicateClass("X".into()),
            HeapError::DuplicateField { class: "X".into(), field: "f".into() },
            HeapError::UnknownField { class: "X".into(), field: "f".into() },
            HeapError::SlotOutOfBounds { object: obj, slot: 9, len: 2 },
            HeapError::TypeMismatch { object: obj, slot: 0, expected: FieldType::Int },
            HeapError::ClassConstraint {
                object: obj,
                slot: 0,
                expected: ClassId(0),
                actual: ClassId(1),
            },
            HeapError::DanglingObject(obj),
            HeapError::DuplicateStableId(4),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HeapError>();
    }
}
