//! Mutation catalog: the declared checkpoint effect of every public heap
//! mutator.
//!
//! The incremental checkpointing protocol rests on three write-barrier
//! obligations that every mutation of the object graph must honour:
//!
//! 1. **journal**: any operation that can change an object's encoded bytes
//!    must leave that object modified *and* journaled, or the journal fast
//!    path ships a stale stream;
//! 2. **version**: any operation that can change reachability or traversal
//!    order must bump [`Heap::structure_version`], or a cached
//!    `JournalCache` replays a stale pre-order;
//! 3. **epoch**: dirty flags and the journal epoch may only be cleared by
//!    the checkpoint protocol itself (record → reset → finish epoch).
//!
//! This module makes those obligations *data*: each public mutator on
//! [`Heap`] is registered here with a [`DeclaredEffect`] and a canonical
//! probe that exercises its maximal footprint on a scratch heap. The
//! `ickp-audit` crate's barrier-coverage pass (`audit_barriers`)
//! abstract-interprets the catalog against the protocol and cross-checks
//! every declaration against the probe's observed footprint, so a mutator
//! added without barrier coverage is caught statically (AUD301–AUD306)
//! rather than as a corrupt checkpoint in production.

use crate::error::HeapError;
use crate::heap::Heap;
use crate::ids::ObjectId;
use crate::value::{FieldType, Value};

/// Which objects an operation can mark modified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirtyScope {
    /// The operation never marks anything modified.
    #[default]
    None,
    /// The operation marks (at most) the objects it is applied to.
    Target,
    /// The operation can mark every live object.
    AllLive,
}

/// The declared checkpoint-relevant footprint of one heap mutator.
///
/// A declaration is a *promise* checked from both sides by the auditor:
/// the static side proves the declared bits consistent with the barrier
/// protocol, and the probe side verifies the declaration against the
/// operation's observed behaviour on a live heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeclaredEffect {
    /// Which objects the operation may mark modified.
    pub dirties: DirtyScope,
    /// The operation can change some live object's encoded bytes (field
    /// values), or introduce a new live object that the next checkpoint
    /// must record.
    pub bytes_may_change: bool,
    /// The operation can change the shape of the object graph: allocate,
    /// free, or rewire a reference slot.
    pub structure_may_change: bool,
    /// Every object the operation dirties is also journaled (obligation 1).
    pub journals_dirty: bool,
    /// The operation journals writes even when the stored bytes are
    /// identical to the current value (the paper's unconditional
    /// `setModified()` barrier); quantified by the AUD303 over-journaling
    /// lint.
    pub journals_unchanged: bool,
    /// Every shape change the operation makes bumps
    /// [`Heap::structure_version`] (obligation 2).
    pub bumps_structure_version: bool,
    /// The operation can clear the modified flag of a live object.
    pub clears_dirty: bool,
    /// The operation closes the journal epoch
    /// ([`Heap::finish_journal_epoch`]).
    pub clears_epoch: bool,
    /// The operation is part of the checkpoint protocol itself and is
    /// therefore allowed to clear dirty flags / close epochs
    /// (obligation 3).
    pub checkpoint_protocol: bool,
    /// The operation belongs to the restore path, which materializes
    /// already-recorded state and is exempt from the journaling obligation
    /// (the restored bytes *are* the checkpoint).
    pub restore_exempt: bool,
}

/// The operand environment handed to a mutator probe.
///
/// The audit harness prepares a scratch heap at a clean epoch boundary and
/// fills this in; probes pick operands deterministically from it (first
/// suitable object wins), so rotating `targets` is how callers randomize.
#[derive(Debug, Clone, Copy)]
pub struct MutationProbe<'a> {
    /// The traversal roots of the scratch heap.
    pub roots: &'a [ObjectId],
    /// Live candidate operands (reachable objects, in preference order).
    pub targets: &'a [ObjectId],
    /// Live objects *not* reachable from `roots`, safe to free without
    /// dangling the reachable graph.
    pub garbage: &'a [ObjectId],
    /// An object known to be modified, for probes that clear dirty state.
    pub seed: Option<ObjectId>,
    /// Entropy for generated values and names; reusing a salt on the same
    /// heap can collide (e.g. duplicate probe class names).
    pub salt: u64,
}

/// A probe function: applies one representative invocation of the mutator
/// to `heap`, exercising its maximal declared footprint.
pub type ApplyFn = fn(&mut Heap, &MutationProbe<'_>) -> Result<(), HeapError>;

/// One catalog entry: a public mutator, its declared effect, and its probe.
#[derive(Debug, Clone, Copy)]
pub struct MutatorDecl {
    /// The mutator's method name on [`Heap`].
    pub name: &'static str,
    /// Its declared checkpoint footprint.
    pub effect: DeclaredEffect,
    /// Canonical probe exercising the footprint.
    pub apply: ApplyFn,
}

/// Every public `&mut self` method on [`Heap`] (including the collector in
/// the `gc` module). The AUD306 exhaustiveness check compares a catalog
/// against this list, so adding a mutator without extending the catalog —
/// and this list — fails the barrier audit, and this list is itself pinned
/// by a unit test against the catalog.
pub const PUBLIC_MUTATORS: &[&str] = &[
    "alloc",
    "alloc_with",
    "alloc_restored",
    "free",
    "set_field",
    "set_field_named",
    "set_field_unbarriered",
    "set_modified",
    "reset_modified",
    "mark_all_modified",
    "reset_all_modified",
    "collect",
    "finish_journal_epoch",
    "define_class",
];

/// The registry of declared mutator effects exported by the heap.
#[derive(Debug, Clone)]
pub struct MutationCatalog {
    entries: Vec<MutatorDecl>,
}

impl MutationCatalog {
    /// The complete catalog of [`Heap`]'s public mutators.
    pub fn of_heap() -> MutationCatalog {
        let w = DeclaredEffect {
            dirties: DirtyScope::Target,
            bytes_may_change: true,
            structure_may_change: true,
            journals_dirty: true,
            journals_unchanged: true,
            bumps_structure_version: true,
            ..DeclaredEffect::default()
        };
        let alloc = DeclaredEffect {
            dirties: DirtyScope::Target,
            bytes_may_change: true,
            structure_may_change: true,
            journals_dirty: true,
            bumps_structure_version: true,
            ..DeclaredEffect::default()
        };
        let entries = vec![
            MutatorDecl { name: "alloc", effect: alloc, apply: probe_alloc },
            MutatorDecl { name: "alloc_with", effect: alloc, apply: probe_alloc_with },
            MutatorDecl {
                name: "alloc_restored",
                effect: DeclaredEffect { restore_exempt: true, ..alloc },
                apply: probe_alloc_restored,
            },
            MutatorDecl {
                name: "free",
                effect: DeclaredEffect {
                    structure_may_change: true,
                    bumps_structure_version: true,
                    ..DeclaredEffect::default()
                },
                apply: probe_free,
            },
            MutatorDecl { name: "set_field", effect: w, apply: probe_set_field },
            MutatorDecl { name: "set_field_named", effect: w, apply: probe_set_field_named },
            MutatorDecl {
                name: "set_field_unbarriered",
                effect: DeclaredEffect {
                    dirties: DirtyScope::None,
                    journals_dirty: false,
                    journals_unchanged: false,
                    restore_exempt: true,
                    ..w
                },
                apply: probe_set_field_unbarriered,
            },
            MutatorDecl {
                name: "set_modified",
                effect: DeclaredEffect {
                    dirties: DirtyScope::Target,
                    journals_dirty: true,
                    ..DeclaredEffect::default()
                },
                apply: probe_set_modified,
            },
            MutatorDecl {
                name: "reset_modified",
                effect: DeclaredEffect {
                    clears_dirty: true,
                    checkpoint_protocol: true,
                    ..DeclaredEffect::default()
                },
                apply: probe_reset_modified,
            },
            MutatorDecl {
                name: "mark_all_modified",
                effect: DeclaredEffect {
                    dirties: DirtyScope::AllLive,
                    journals_dirty: true,
                    ..DeclaredEffect::default()
                },
                apply: probe_mark_all_modified,
            },
            MutatorDecl {
                name: "reset_all_modified",
                effect: DeclaredEffect {
                    clears_dirty: true,
                    checkpoint_protocol: true,
                    ..DeclaredEffect::default()
                },
                apply: probe_reset_all_modified,
            },
            MutatorDecl {
                name: "collect",
                effect: DeclaredEffect {
                    structure_may_change: true,
                    bumps_structure_version: true,
                    ..DeclaredEffect::default()
                },
                apply: probe_collect,
            },
            MutatorDecl {
                name: "finish_journal_epoch",
                effect: DeclaredEffect {
                    clears_epoch: true,
                    checkpoint_protocol: true,
                    ..DeclaredEffect::default()
                },
                apply: probe_finish_journal_epoch,
            },
            MutatorDecl {
                name: "define_class",
                effect: DeclaredEffect::default(),
                apply: probe_define_class,
            },
        ];
        MutationCatalog { entries }
    }

    /// The catalog entries, in declaration order.
    pub fn entries(&self) -> &[MutatorDecl] {
        &self.entries
    }

    /// Looks up an entry by mutator name.
    pub fn get(&self, name: &str) -> Option<&MutatorDecl> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// A copy of the catalog with one entry removed — the canonical way for
    /// injection tests to manufacture an AUD306 incompleteness.
    pub fn without(&self, name: &str) -> MutationCatalog {
        MutationCatalog {
            entries: self.entries.iter().filter(|e| e.name != name).copied().collect(),
        }
    }
}

/// A changed value of the same kind as `current` (byte-level change
/// guaranteed: scalar bits are XOR-perturbed by `salt | 1`).
fn perturbed(current: Value, salt: u64) -> Value {
    let s = salt | 1;
    match current {
        Value::Int(v) => Value::Int(v ^ (s as i32 | 1)),
        Value::Long(v) => Value::Long(v ^ (s as i64 | 1)),
        Value::Double(v) => Value::Double(f64::from_bits(v.to_bits() ^ s)),
        Value::Bool(v) => Value::Bool(!v),
        Value::Ref(r) => Value::Ref(r),
    }
}

/// First target with a scalar slot: `(object, slot, changed value)`.
fn pick_scalar_store(
    heap: &Heap,
    p: &MutationProbe<'_>,
) -> Result<Option<(ObjectId, usize, Value)>, HeapError> {
    for &id in p.targets {
        let class = heap.class(heap.class_of(id)?)?;
        for (slot, f) in class.layout().iter().enumerate() {
            if !f.ty().is_ref() {
                return Ok(Some((id, slot, perturbed(heap.field(id, slot)?, p.salt))));
            }
        }
    }
    Ok(None)
}

/// First target with a non-null reference slot: rewiring it to null is a
/// guaranteed, type-correct reachability change.
fn pick_ref_store(
    heap: &Heap,
    p: &MutationProbe<'_>,
) -> Result<Option<(ObjectId, usize)>, HeapError> {
    for &id in p.targets {
        let class = heap.class(heap.class_of(id)?)?;
        for (slot, f) in class.layout().iter().enumerate() {
            if f.ty().is_ref() && matches!(heap.field(id, slot)?, Value::Ref(Some(_))) {
                return Ok(Some((id, slot)));
            }
        }
    }
    Ok(None)
}

fn probe_alloc(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    if let Some(&t) = p.targets.first() {
        heap.alloc(heap.class_of(t)?)?;
    }
    Ok(())
}

fn probe_alloc_with(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    if let Some(&t) = p.targets.first() {
        let class = heap.class_of(t)?;
        let values: Vec<Value> =
            heap.class(class)?.layout().iter().map(|f| f.ty().default_value()).collect();
        heap.alloc_with(class, &values)?;
    }
    Ok(())
}

fn probe_alloc_restored(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    if let Some(&t) = p.targets.first() {
        let class = heap.class_of(t)?;
        let stable = heap.next_stable_id();
        heap.alloc_restored(class, stable, true)?;
    }
    Ok(())
}

fn probe_free(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    if let Some(&g) = p.garbage.first() {
        heap.free(g)?;
    }
    Ok(())
}

fn probe_set_field(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    if let Some((id, slot, value)) = pick_scalar_store(heap, p)? {
        heap.set_field(id, slot, value)?;
    }
    if let Some((id, slot)) = pick_ref_store(heap, p)? {
        heap.set_field(id, slot, Value::Ref(None))?;
    }
    Ok(())
}

fn probe_set_field_named(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    if let Some((id, slot, value)) = pick_scalar_store(heap, p)? {
        let field = heap.class(heap.class_of(id)?)?.layout()[slot].name().to_string();
        heap.set_field_named(id, &field, value)?;
    }
    if let Some((id, slot)) = pick_ref_store(heap, p)? {
        let field = heap.class(heap.class_of(id)?)?.layout()[slot].name().to_string();
        heap.set_field_named(id, &field, Value::Ref(None))?;
    }
    Ok(())
}

fn probe_set_field_unbarriered(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    if let Some((id, slot, value)) = pick_scalar_store(heap, p)? {
        heap.set_field_unbarriered(id, slot, value)?;
    }
    if let Some((id, slot)) = pick_ref_store(heap, p)? {
        heap.set_field_unbarriered(id, slot, Value::Ref(None))?;
    }
    Ok(())
}

fn probe_set_modified(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    if let Some(&t) = p.targets.first() {
        heap.set_modified(t)?;
    }
    Ok(())
}

fn probe_reset_modified(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    if let Some(t) = p.seed.or_else(|| p.targets.first().copied()) {
        heap.reset_modified(t)?;
    }
    Ok(())
}

fn probe_mark_all_modified(heap: &mut Heap, _p: &MutationProbe<'_>) -> Result<(), HeapError> {
    heap.mark_all_modified();
    Ok(())
}

fn probe_reset_all_modified(heap: &mut Heap, _p: &MutationProbe<'_>) -> Result<(), HeapError> {
    heap.reset_all_modified();
    Ok(())
}

fn probe_collect(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    heap.collect(p.roots)?;
    Ok(())
}

fn probe_finish_journal_epoch(heap: &mut Heap, _p: &MutationProbe<'_>) -> Result<(), HeapError> {
    heap.finish_journal_epoch();
    Ok(())
}

fn probe_define_class(heap: &mut Heap, p: &MutationProbe<'_>) -> Result<(), HeapError> {
    let name = format!("probe.Cls{:x}", p.salt);
    heap.define_class(&name, None, &[("p", FieldType::Int)])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassRegistry;

    fn world() -> (Heap, Vec<ObjectId>, Vec<ObjectId>) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let tail = heap.alloc(node).unwrap();
        let head = heap.alloc(node).unwrap();
        heap.set_field(head, 0, Value::Int(7)).unwrap();
        heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
        let garbage = vec![heap.alloc(node).unwrap()];
        (heap, vec![head], garbage)
    }

    #[test]
    fn catalog_matches_the_public_mutator_list_exactly() {
        let catalog = MutationCatalog::of_heap();
        let names: Vec<&str> = catalog.entries().iter().map(|e| e.name).collect();
        assert_eq!(names, PUBLIC_MUTATORS, "catalog and PUBLIC_MUTATORS must list the same ops");
    }

    #[test]
    fn every_probe_applies_cleanly() {
        let catalog = MutationCatalog::of_heap();
        for entry in catalog.entries() {
            let (mut heap, roots, garbage) = world();
            let targets: Vec<ObjectId> = crate::graph::reachable_from(&heap, &roots).unwrap();
            let seed = Some(targets[0]);
            let probe = MutationProbe {
                roots: &roots,
                targets: &targets,
                garbage: &garbage,
                seed,
                salt: 0xC0FFEE,
            };
            (entry.apply)(&mut heap, &probe)
                .unwrap_or_else(|e| panic!("probe for {} failed: {e}", entry.name));
        }
    }

    #[test]
    fn without_removes_exactly_one_entry() {
        let catalog = MutationCatalog::of_heap();
        let pruned = catalog.without("set_field");
        assert_eq!(pruned.entries().len(), catalog.entries().len() - 1);
        assert!(pruned.get("set_field").is_none());
        assert!(pruned.get("alloc").is_some());
    }
}
