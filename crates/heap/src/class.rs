//! Class definitions and the class registry.
//!
//! Classes have single inheritance. An object's field layout is the
//! concatenation of its superclass chain's fields (root first) followed by
//! its own, so a slot index valid for a class is valid, with the same
//! meaning, for every subclass — exactly the property JVM object layouts
//! have, and the property the specializer relies on when it compiles
//! slot-indexed load/record instructions.

use crate::error::HeapError;
use crate::ids::ClassId;
use crate::value::FieldType;
use std::collections::HashMap;

/// A named, typed field of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    name: String,
    ty: FieldType,
}

impl FieldDef {
    /// Creates a field definition.
    pub fn new(name: impl Into<String>, ty: FieldType) -> FieldDef {
        FieldDef { name: name.into(), ty }
    }

    /// The field's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field's declared type.
    pub fn ty(&self) -> FieldType {
        self.ty
    }
}

/// An immutable class definition: name, superclass, and flattened layout.
#[derive(Debug, Clone)]
pub struct ClassDef {
    id: ClassId,
    name: String,
    superclass: Option<ClassId>,
    /// Flattened layout: inherited fields first, own fields last.
    layout: Vec<FieldDef>,
    /// Number of inherited slots (start of own fields in `layout`).
    inherited: usize,
    /// Depth in the inheritance tree (root = 0), used for fast subtype tests.
    depth: u32,
}

impl ClassDef {
    /// The class id.
    pub fn id(&self) -> ClassId {
        self.id
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The direct superclass, if any.
    pub fn superclass(&self) -> Option<ClassId> {
        self.superclass
    }

    /// The full flattened field layout (inherited first).
    pub fn layout(&self) -> &[FieldDef] {
        &self.layout
    }

    /// The number of field slots an instance of this class has.
    pub fn num_slots(&self) -> usize {
        self.layout.len()
    }

    /// The fields declared by this class itself (excluding inherited ones).
    pub fn own_fields(&self) -> &[FieldDef] {
        &self.layout[self.inherited..]
    }

    /// Resolves a field name to its slot index.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownField`] if no field of that name exists
    /// anywhere in the layout.
    pub fn slot_of(&self, field: &str) -> Result<usize, HeapError> {
        self.layout.iter().position(|f| f.name() == field).ok_or_else(|| HeapError::UnknownField {
            class: self.name.clone(),
            field: field.to_string(),
        })
    }

    /// The declared type of a slot.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownField`] if the slot is out of bounds
    /// (the object id is unknown at this level, so the field is reported by
    /// index).
    pub fn slot_type(&self, slot: usize) -> Result<FieldType, HeapError> {
        self.layout.get(slot).map(FieldDef::ty).ok_or_else(|| HeapError::UnknownField {
            class: self.name.clone(),
            field: format!("<slot {slot}>"),
        })
    }

    /// Total encoded size in bytes of one full record of this class's local
    /// state (all slots), as written by the checkpoint stream.
    pub fn encoded_state_size(&self) -> usize {
        self.layout.iter().map(|f| f.ty().encoded_size()).sum()
    }
}

/// The set of classes known to a heap.
///
/// # Example
///
/// ```
/// use ickp_heap::{ClassRegistry, FieldType};
///
/// # fn main() -> Result<(), ickp_heap::HeapError> {
/// let mut reg = ClassRegistry::new();
/// let entry = reg.define("Entry", None, &[])?;
/// let bt_entry = reg.define("BTEntry", Some(entry), &[("bt", FieldType::Ref(None))])?;
/// assert!(reg.is_subclass(bt_entry, entry));
/// assert_eq!(reg.class(bt_entry)?.slot_of("bt")?, 0);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClassRegistry {
    classes: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> ClassRegistry {
        ClassRegistry::default()
    }

    /// Defines a new class.
    ///
    /// `fields` lists the fields declared by the class itself; inherited
    /// fields are prepended automatically.
    ///
    /// # Errors
    ///
    /// * [`HeapError::DuplicateClass`] if the name is taken.
    /// * [`HeapError::UnknownClass`] if the superclass id is invalid.
    /// * [`HeapError::DuplicateField`] if a field name collides with an
    ///   inherited or sibling field.
    pub fn define(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
        fields: &[(&str, FieldType)],
    ) -> Result<ClassId, HeapError> {
        if self.by_name.contains_key(name) {
            return Err(HeapError::DuplicateClass(name.to_string()));
        }
        let (mut layout, depth) = match superclass {
            Some(sup) => {
                let sup = self.class(sup)?;
                (sup.layout.clone(), sup.depth + 1)
            }
            None => (Vec::new(), 0),
        };
        let inherited = layout.len();
        for (fname, ty) in fields {
            if layout.iter().any(|f| f.name() == *fname) {
                return Err(HeapError::DuplicateField {
                    class: name.to_string(),
                    field: fname.to_string(),
                });
            }
            layout.push(FieldDef::new(*fname, *ty));
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassDef {
            id,
            name: name.to_string(),
            superclass,
            layout,
            inherited,
            depth,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks a class up by id.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownClass`] for ids not issued by this
    /// registry.
    pub fn class(&self, id: ClassId) -> Result<&ClassDef, HeapError> {
        self.classes.get(id.index()).ok_or(HeapError::UnknownClass(id))
    }

    /// Looks a class up by name.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownClassName`] if undefined.
    pub fn class_by_name(&self, name: &str) -> Result<&ClassDef, HeapError> {
        let id = self
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| HeapError::UnknownClassName(name.to_string()))?;
        self.class(id)
    }

    /// Returns the id for a class name.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownClassName`] if undefined.
    pub fn id_of(&self, name: &str) -> Result<ClassId, HeapError> {
        self.by_name.get(name).copied().ok_or_else(|| HeapError::UnknownClassName(name.to_string()))
    }

    /// Tests whether `sub` is `sup` or a (transitive) subclass of it.
    ///
    /// Unknown ids are never subclasses of anything.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes.get(c.index()).and_then(|d| d.superclass);
        }
        false
    }

    /// The number of defined classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` if no classes are defined.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over all class definitions in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> (ClassRegistry, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let base = reg.define("Entry", None, &[("tag", FieldType::Int)]).unwrap();
        let sub = reg
            .define(
                "BTEntry",
                Some(base),
                &[("bt", FieldType::Ref(None)), ("count", FieldType::Long)],
            )
            .unwrap();
        (reg, base, sub)
    }

    #[test]
    fn layout_flattens_inheritance_root_first() {
        let (reg, _, sub) = registry();
        let def = reg.class(sub).unwrap();
        let names: Vec<&str> = def.layout().iter().map(FieldDef::name).collect();
        assert_eq!(names, ["tag", "bt", "count"]);
        assert_eq!(def.slot_of("tag").unwrap(), 0);
        assert_eq!(def.slot_of("bt").unwrap(), 1);
        assert_eq!(def.own_fields().len(), 2);
    }

    #[test]
    fn subclass_slots_are_compatible_with_superclass_slots() {
        let (reg, base, sub) = registry();
        let base_slot = reg.class(base).unwrap().slot_of("tag").unwrap();
        let sub_slot = reg.class(sub).unwrap().slot_of("tag").unwrap();
        assert_eq!(base_slot, sub_slot);
    }

    #[test]
    fn duplicate_class_names_are_rejected() {
        let (mut reg, _, _) = registry();
        assert_eq!(reg.define("Entry", None, &[]), Err(HeapError::DuplicateClass("Entry".into())));
    }

    #[test]
    fn shadowing_an_inherited_field_is_rejected() {
        let (mut reg, base, _) = registry();
        let err = reg.define("Bad", Some(base), &[("tag", FieldType::Int)]).unwrap_err();
        assert!(matches!(err, HeapError::DuplicateField { .. }));
    }

    #[test]
    fn duplicate_own_field_is_rejected() {
        let mut reg = ClassRegistry::new();
        let err =
            reg.define("X", None, &[("a", FieldType::Int), ("a", FieldType::Int)]).unwrap_err();
        assert!(matches!(err, HeapError::DuplicateField { .. }));
    }

    #[test]
    fn subtype_test_walks_the_chain() {
        let (mut reg, base, sub) = registry();
        let subsub = reg.define("ETEntry", Some(sub), &[]).unwrap();
        assert!(reg.is_subclass(subsub, base));
        assert!(reg.is_subclass(subsub, sub));
        assert!(reg.is_subclass(base, base));
        assert!(!reg.is_subclass(base, sub));
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        let (reg, _, sub) = registry();
        assert_eq!(reg.class_by_name("BTEntry").unwrap().id(), sub);
        assert_eq!(reg.id_of("BTEntry").unwrap(), sub);
        assert!(reg.class_by_name("Nope").is_err());
        assert!(reg.id_of("Nope").is_err());
    }

    #[test]
    fn unknown_ids_error() {
        let (reg, _, _) = registry();
        assert!(reg.class(ClassId(99)).is_err());
        assert!(!reg.is_subclass(ClassId(99), ClassId(0)));
    }

    #[test]
    fn encoded_state_size_sums_field_sizes() {
        let (reg, _, sub) = registry();
        // int(4) + ref(8) + long(8)
        assert_eq!(reg.class(sub).unwrap().encoded_state_size(), 20);
    }

    #[test]
    fn slot_type_reports_out_of_bounds() {
        let (reg, base, _) = registry();
        let def = reg.class(base).unwrap();
        assert_eq!(def.slot_type(0).unwrap(), FieldType::Int);
        assert!(def.slot_type(5).is_err());
    }

    #[test]
    fn registry_iteration_is_in_id_order() {
        let (reg, base, sub) = registry();
        let ids: Vec<ClassId> = reg.iter().map(ClassDef::id).collect();
        assert_eq!(ids, vec![base, sub]);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }
}
