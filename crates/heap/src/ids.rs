//! Identifier newtypes for classes, heap slots and checkpoint identities.

use std::fmt;

/// Identifies a class in a [`crate::ClassRegistry`].
///
/// Class ids are dense indices assigned in definition order; they are valid
/// only for the registry (and thus the [`crate::Heap`]) that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// Returns the dense index of this class id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a class id from a dense index.
    ///
    /// Intended for serialization round-trips; using an index that was not
    /// obtained from [`ClassId::index`] on the same registry yields lookups
    /// that fail with [`crate::HeapError::UnknownClass`].
    pub fn from_index(index: usize) -> ClassId {
        ClassId(index as u32)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// A handle to a live object in a [`crate::Heap`].
///
/// Object ids are *transient*: they name an arena slot plus a generation
/// counter, so a stale handle to a freed-and-reused slot is detected rather
/// than silently aliased. The identity that survives checkpoint/restore is
/// the [`StableId`] carried in the object's [`crate::CheckpointInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl ObjectId {
    /// Returns the arena slot index of this handle.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Returns the generation under which this handle was issued.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}.{}", self.index, self.generation)
    }
}

/// The unique, stable identity of a checkpointable object.
///
/// This is the Java `CheckpointInfo.id` of the paper: it is assigned once at
/// allocation, recorded in every checkpoint record, used to express
/// parent→child edges in the checkpoint stream, and preserved by restore so
/// that a sequence of incremental checkpoints can be replayed onto the same
/// identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StableId(pub u64);

impl StableId {
    /// Returns the raw 64-bit identity.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for StableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "id:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_id_round_trips_through_index() {
        let id = ClassId(7);
        assert_eq!(ClassId::from_index(id.index()), id);
    }

    #[test]
    fn object_ids_distinguish_generations() {
        let a = ObjectId { index: 3, generation: 0 };
        let b = ObjectId { index: 3, generation: 1 };
        assert_ne!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(ClassId(2).to_string(), "class#2");
        assert_eq!(ObjectId { index: 1, generation: 4 }.to_string(), "obj#1.4");
        assert_eq!(StableId(9).to_string(), "id:9");
    }

    #[test]
    fn stable_id_orders_by_allocation_time() {
        assert!(StableId(1) < StableId(2));
        assert_eq!(StableId(5).raw(), 5);
    }
}
