//! Mark-sweep garbage collection.
//!
//! The paper motivates language-level checkpointing partly by the JVM's
//! memory behaviour: "a single page may contain both live objects and
//! objects awaiting garbage collection", which defeats page-granularity
//! incremental checkpointing. Our heap reproduces that world — objects
//! become unreachable and linger — and this module provides the collector
//! that reclaims them.
//!
//! Collection is checkpoint-transparent: it never touches surviving
//! objects' fields, modified flags, or stable ids, so a checkpoint taken
//! after a collection records exactly what it would have recorded before
//! (garbage was unreachable and therefore never traversed anyway). The
//! one interaction to be aware of is *restore*: old checkpoints may
//! contain records of since-collected objects; restore materializes them
//! again (they are unreachable in the restored heap too, and a
//! [`crate::Heap::collect`] there reclaims them — or use
//! `ickp_core::compact` to drop them from the store itself).

use crate::heap::Heap;
use crate::ids::ObjectId;
use crate::value::Value;
use std::collections::HashSet;

/// Statistics from one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Objects scanned during marking (the live set).
    pub live: usize,
    /// Objects reclaimed.
    pub freed: usize,
}

impl Heap {
    /// Reclaims every object unreachable from `roots` (mark-sweep).
    ///
    /// Surviving objects keep their handles, stable ids, field values and
    /// modified flags; freed objects' handles become dangling, exactly as
    /// with [`Heap::free`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::HeapError::DanglingObject`] if `roots` or a
    /// traversed reference dangles *before* collection starts (a heap
    /// whose live graph already contains dangling edges is reported, not
    /// silently pruned).
    pub fn collect(&mut self, roots: &[ObjectId]) -> Result<GcStats, crate::HeapError> {
        // Mark.
        let mut marked: HashSet<ObjectId> = HashSet::new();
        let mut stack: Vec<ObjectId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if !marked.insert(id) {
                continue;
            }
            let obj = self.object(id)?;
            for value in obj.fields() {
                if let Value::Ref(Some(child)) = value {
                    if !marked.contains(child) {
                        stack.push(*child);
                    }
                }
            }
        }
        // Sweep.
        let victims: Vec<ObjectId> = self.iter_live().filter(|id| !marked.contains(id)).collect();
        let freed = victims.len();
        for id in victims {
            self.free(id).expect("victim was live when enumerated");
        }
        Ok(GcStats { live: marked.len(), freed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassRegistry;
    use crate::ids::ClassId;
    use crate::snapshot::HeapSnapshot;
    use crate::value::FieldType;

    fn heap() -> (Heap, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        (Heap::new(reg), node)
    }

    #[test]
    fn collect_frees_unreachable_and_keeps_reachable() {
        let (mut heap, node) = heap();
        let kept_child = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(kept_child))).unwrap();
        let garbage = heap.alloc(node).unwrap();
        let garbage2 = heap.alloc(node).unwrap();
        heap.set_field(garbage, 1, Value::Ref(Some(garbage2))).unwrap();

        let stats = heap.collect(&[root]).unwrap();
        assert_eq!(stats, GcStats { live: 2, freed: 2 });
        assert!(heap.contains(root) && heap.contains(kept_child));
        assert!(!heap.contains(garbage) && !heap.contains(garbage2));
        assert_eq!(heap.len(), 2);
    }

    #[test]
    fn collection_is_checkpoint_transparent() {
        let (mut heap, node) = heap();
        let child = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();
        heap.reset_modified(root).unwrap(); // mixed flag state
        let _garbage = heap.alloc(node).unwrap();

        let before = HeapSnapshot::capture(&heap, &[root]).unwrap();
        let root_sid = heap.stable_id(root).unwrap();
        let child_modified = heap.is_modified(child).unwrap();

        heap.collect(&[root]).unwrap();

        let after = HeapSnapshot::capture(&heap, &[root]).unwrap();
        assert_eq!(before, after, "logical state untouched");
        assert_eq!(heap.stable_id(root).unwrap(), root_sid);
        assert_eq!(heap.is_modified(child).unwrap(), child_modified);
        assert!(!heap.is_modified(root).unwrap(), "flags untouched");
    }

    #[test]
    fn empty_roots_collect_everything() {
        let (mut heap, node) = heap();
        for _ in 0..5 {
            heap.alloc(node).unwrap();
        }
        let stats = heap.collect(&[]).unwrap();
        assert_eq!(stats.freed, 5);
        assert!(heap.is_empty());
    }

    #[test]
    fn shared_and_cyclic_garbage_is_reclaimed() {
        let (mut heap, node) = heap();
        let root = heap.alloc(node).unwrap();
        // A garbage cycle: a -> b -> a.
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(b))).unwrap();
        heap.set_field(b, 1, Value::Ref(Some(a))).unwrap();
        let stats = heap.collect(&[root]).unwrap();
        assert_eq!(stats.freed, 2, "cycles do not keep garbage alive");
    }

    #[test]
    fn dangling_live_edge_is_reported_not_pruned() {
        let (mut heap, node) = heap();
        let child = heap.alloc(node).unwrap();
        let root = heap.alloc(node).unwrap();
        heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();
        heap.free(child).unwrap();
        assert!(heap.collect(&[root]).is_err());
    }

    #[test]
    fn repeated_collection_is_idempotent() {
        let (mut heap, node) = heap();
        let root = heap.alloc(node).unwrap();
        heap.alloc(node).unwrap(); // garbage
        heap.collect(&[root]).unwrap();
        let stats = heap.collect(&[root]).unwrap();
        assert_eq!(stats.freed, 0);
        assert_eq!(stats.live, 1);
    }
}
