//! Field types and runtime values.

use crate::ids::{ClassId, ObjectId};
use std::fmt;

/// The declared type of an object field.
///
/// Mirrors the Java field kinds exercised by the paper's benchmarks: the
/// primitive types written directly into the checkpoint stream, plus
/// reference fields. A reference field may optionally be constrained to a
/// declared class (`Ref(Some(c))` accepts `c` and its subclasses), which is
/// what makes *structure specialization* possible: a shape-static field with
/// a known class can be traversed without consulting the object header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// 32-bit signed integer (Java `int`).
    Int,
    /// 64-bit signed integer (Java `long`).
    Long,
    /// 64-bit IEEE float (Java `double`).
    Double,
    /// Boolean (Java `boolean`).
    Bool,
    /// Reference to another heap object, possibly `null`.
    ///
    /// `Ref(None)` is an unconstrained reference (Java `Object`);
    /// `Ref(Some(c))` requires the referent to be an instance of class `c`
    /// or one of its subclasses.
    Ref(Option<ClassId>),
}

impl FieldType {
    /// Returns the zero/default value of this type: `0`, `0.0`, `false`, or
    /// a null reference.
    pub fn default_value(self) -> Value {
        match self {
            FieldType::Int => Value::Int(0),
            FieldType::Long => Value::Long(0),
            FieldType::Double => Value::Double(0.0),
            FieldType::Bool => Value::Bool(false),
            FieldType::Ref(_) => Value::Ref(None),
        }
    }

    /// Returns `true` if this is a reference type.
    pub fn is_ref(self) -> bool {
        matches!(self, FieldType::Ref(_))
    }

    /// Returns the number of bytes a value of this type occupies in the
    /// checkpoint stream (references are recorded as the 8-byte stable id of
    /// the referent, or 8 bytes of sentinel for `null`).
    pub fn encoded_size(self) -> usize {
        match self {
            FieldType::Int => 4,
            FieldType::Long | FieldType::Double | FieldType::Ref(_) => 8,
            FieldType::Bool => 1,
        }
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Int => write!(f, "int"),
            FieldType::Long => write!(f, "long"),
            FieldType::Double => write!(f, "double"),
            FieldType::Bool => write!(f, "boolean"),
            FieldType::Ref(None) => write!(f, "Object"),
            FieldType::Ref(Some(c)) => write!(f, "ref<{c}>"),
        }
    }
}

/// A runtime field value stored in a heap object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit signed integer.
    Int(i32),
    /// 64-bit signed integer.
    Long(i64),
    /// 64-bit IEEE float.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Reference (`None` is Java `null`).
    Ref(Option<ObjectId>),
}

impl Value {
    /// Returns `true` if this value inhabits the given declared type,
    /// ignoring the reference class constraint (which requires a registry
    /// and is checked by the heap's write barrier).
    pub fn matches_kind(&self, ty: FieldType) -> bool {
        matches!(
            (self, ty),
            (Value::Int(_), FieldType::Int)
                | (Value::Long(_), FieldType::Long)
                | (Value::Double(_), FieldType::Double)
                | (Value::Bool(_), FieldType::Bool)
                | (Value::Ref(_), FieldType::Ref(_))
        )
    }

    /// Extracts an `i32`, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `i64`, if this is a [`Value::Long`].
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Value::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `f64`, if this is a [`Value::Double`].
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `bool`, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts the referent, if this is a non-null [`Value::Ref`].
    pub fn as_ref_id(&self) -> Option<ObjectId> {
        match self {
            Value::Ref(r) => *r,
            _ => None,
        }
    }

    /// Returns `true` for `Ref(None)`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Ref(None))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}L"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Ref(None) => write!(f, "null"),
            Value::Ref(Some(o)) => write!(f, "{o}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Long(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<Option<ObjectId>> for Value {
    fn from(v: Option<ObjectId>) -> Value {
        Value::Ref(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_their_types() {
        for ty in [
            FieldType::Int,
            FieldType::Long,
            FieldType::Double,
            FieldType::Bool,
            FieldType::Ref(None),
            FieldType::Ref(Some(ClassId(0))),
        ] {
            assert!(ty.default_value().matches_kind(ty), "{ty}");
        }
    }

    #[test]
    fn kind_check_rejects_mismatches() {
        assert!(!Value::Int(1).matches_kind(FieldType::Long));
        assert!(!Value::Bool(true).matches_kind(FieldType::Int));
        assert!(!Value::Ref(None).matches_kind(FieldType::Double));
    }

    #[test]
    fn ref_class_constraint_does_not_affect_kind() {
        assert!(Value::Ref(None).matches_kind(FieldType::Ref(Some(ClassId(3)))));
    }

    #[test]
    fn accessors_extract_only_their_variant() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_long(), None);
        assert_eq!(Value::Long(8).as_long(), Some(8));
        assert_eq!(Value::Double(1.5).as_double(), Some(1.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Ref(None).is_null());
        assert_eq!(Value::Ref(None).as_ref_id(), None);
    }

    #[test]
    fn encoded_sizes_match_stream_format() {
        assert_eq!(FieldType::Int.encoded_size(), 4);
        assert_eq!(FieldType::Long.encoded_size(), 8);
        assert_eq!(FieldType::Double.encoded_size(), 8);
        assert_eq!(FieldType::Bool.encoded_size(), 1);
        assert_eq!(FieldType::Ref(None).encoded_size(), 8);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Long(3));
        assert_eq!(Value::from(0.5f64), Value::Double(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(None), Value::Ref(None));
    }
}
