//! The object arena: allocation, typed field access, and the write barrier.

use crate::class::{ClassDef, ClassRegistry};
use crate::error::HeapError;
use crate::ids::{ClassId, ObjectId, StableId};
use crate::value::{FieldType, Value};

/// Per-object checkpoint metadata: the paper's `CheckpointInfo`.
///
/// Every object carries a unique [`StableId`] (assigned at allocation,
/// preserved by restore) and a `modified` flag. The flag is set by the
/// heap's write barrier on every field store and reset by the incremental
/// checkpointer once the object's state has been recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    stable: StableId,
    modified: bool,
    /// Whether the object currently has an entry in the heap's dirty-set
    /// journal (see [`Heap::journal`]). Kept alongside `modified` so the
    /// clean→dirty transition can deduplicate journal appends in O(1).
    journaled: bool,
}

impl CheckpointInfo {
    /// The object's stable checkpoint identity.
    pub fn stable_id(&self) -> StableId {
        self.stable
    }

    /// Whether the object has been modified since the last reset.
    pub fn modified(&self) -> bool {
        self.modified
    }

    /// Whether the object has an entry in the heap's dirty-set journal for
    /// the current journal epoch.
    pub fn journaled(&self) -> bool {
        self.journaled
    }
}

/// A live heap object: class, checkpoint metadata, and field slots.
#[derive(Debug, Clone)]
pub struct Object {
    class: ClassId,
    info: CheckpointInfo,
    fields: Box<[Value]>,
}

impl Object {
    /// The object's class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The object's checkpoint metadata.
    pub fn info(&self) -> &CheckpointInfo {
        &self.info
    }

    /// The field slots, in layout order.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }
}

/// Cumulative heap activity counters.
///
/// `barrier_marks` counts the stores that actually flipped the modified
/// flag from clean to dirty; `field_writes` counts all stores. The gap
/// between them quantifies the redundant-flag-set cost the paper mentions
/// in §6 ("extra time on every assignment").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of successful frees.
    pub frees: u64,
    /// Number of successful barriered field stores.
    pub field_writes: u64,
    /// Number of barriered stores that transitioned clean → dirty.
    pub barrier_marks: u64,
}

#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    object: Option<Object>,
}

/// The managed object heap.
///
/// Objects are held in an arena indexed by [`ObjectId`] (slot + generation,
/// so stale handles are detected). All mutation goes through
/// [`Heap::set_field`], which implements the write barrier. See the crate
/// docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Heap {
    registry: ClassRegistry,
    slots: Vec<Slot>,
    free: Vec<u32>,
    next_stable: u64,
    live: usize,
    stats: HeapStats,
    /// The dirty-set journal: every object that transitioned clean→dirty
    /// since the last [`Heap::finish_journal_epoch`], each at most once
    /// (deduplicated by [`CheckpointInfo::journaled`]). Incremental
    /// checkpointers consume this instead of traversing the whole graph.
    journal: Vec<ObjectId>,
    /// Monotonic count of completed journal epochs.
    journal_epoch: u64,
    /// Number of live objects whose modified flag is currently set.
    ///
    /// Maintained by the write barrier at every clean↔dirty transition so
    /// [`Heap::journal_has_dirty`] is O(1) instead of an O(journal) scan.
    /// Because every modified live object is also journaled (the barrier's
    /// one-directional invariant), `live_dirty > 0` exactly when some
    /// journal entry still refers to a live, modified object.
    live_dirty: usize,
    /// Bumped by every allocation, free, and reference-slot store — i.e.
    /// whenever the object graph's *shape* may have changed. Checkpoint
    /// fast paths cache traversal orders keyed on this counter.
    structure_version: u64,
}

impl Heap {
    /// Creates a heap over the given class registry.
    pub fn new(registry: ClassRegistry) -> Heap {
        Heap {
            registry,
            slots: Vec::new(),
            free: Vec::new(),
            next_stable: 1,
            live: 0,
            stats: HeapStats::default(),
            journal: Vec::new(),
            journal_epoch: 0,
            live_dirty: 0,
            structure_version: 0,
        }
    }

    /// The heap's class registry.
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    /// Defines a new class on this heap's registry.
    ///
    /// Delegates to [`ClassRegistry::define`]; see there for errors.
    pub fn define_class(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
        fields: &[(&str, FieldType)],
    ) -> Result<ClassId, HeapError> {
        self.registry.define(name, superclass, fields)
    }

    /// Shorthand for `self.registry().class(id)`.
    pub fn class(&self, id: ClassId) -> Result<&ClassDef, HeapError> {
        self.registry.class(id)
    }

    /// Allocates an instance of `class` with zero-initialized fields.
    ///
    /// The new object is marked **modified** (a fresh object must appear in
    /// the next incremental checkpoint) and given a fresh stable id.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownClass`] for a foreign class id.
    pub fn alloc(&mut self, class: ClassId) -> Result<ObjectId, HeapError> {
        let layout = self.registry.class(class)?.layout();
        let fields: Vec<Value> = layout.iter().map(|f| f.ty().default_value()).collect();
        self.insert(class, fields.into_boxed_slice(), None, true)
    }

    /// Allocates an instance of `class` with the given field values
    /// (layout order).
    ///
    /// # Errors
    ///
    /// Fails like [`Heap::alloc`], plus [`HeapError::TypeMismatch`] /
    /// [`HeapError::ClassConstraint`] / [`HeapError::SlotOutOfBounds`] if
    /// `values` does not fit the layout.
    pub fn alloc_with(&mut self, class: ClassId, values: &[Value]) -> Result<ObjectId, HeapError> {
        let num_slots = self.registry.class(class)?.num_slots();
        if values.len() != num_slots {
            return Err(HeapError::SlotOutOfBounds {
                object: ObjectId { index: u32::MAX, generation: 0 },
                slot: values.len(),
                len: num_slots,
            });
        }
        let id = self.alloc(class)?;
        for (slot, v) in values.iter().enumerate() {
            // The object is already marked modified, so going through the
            // barrier is semantically a no-op but keeps checks in one place.
            self.set_field(id, slot, *v)?;
        }
        Ok(id)
    }

    /// Allocates an object with an explicit stable id and modified flag.
    ///
    /// This is the restore path: replaying a checkpoint must materialize
    /// objects under their original identities. The internal stable-id
    /// counter is bumped past `stable` so later fresh allocations cannot
    /// collide.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownClass`] for a foreign class id.
    pub fn alloc_restored(
        &mut self,
        class: ClassId,
        stable: StableId,
        modified: bool,
    ) -> Result<ObjectId, HeapError> {
        let layout = self.registry.class(class)?.layout();
        let fields: Vec<Value> = layout.iter().map(|f| f.ty().default_value()).collect();
        self.insert(class, fields.into_boxed_slice(), Some(stable), modified)
    }

    fn insert(
        &mut self,
        class: ClassId,
        fields: Box<[Value]>,
        stable: Option<StableId>,
        modified: bool,
    ) -> Result<ObjectId, HeapError> {
        let stable = match stable {
            Some(s) => {
                self.next_stable = self.next_stable.max(s.0 + 1);
                s
            }
            None => {
                let s = StableId(self.next_stable);
                self.next_stable += 1;
                s
            }
        };
        let object = Object {
            class,
            info: CheckpointInfo { stable, modified, journaled: modified },
            fields,
        };
        let id = match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                slot.object = Some(object);
                ObjectId { index, generation: slot.generation }
            }
            None => {
                let index = self.slots.len() as u32;
                self.slots.push(Slot { generation: 0, object: Some(object) });
                ObjectId { index, generation: 0 }
            }
        };
        if modified {
            self.journal.push(id);
            self.live_dirty += 1;
        }
        self.live += 1;
        self.stats.allocs += 1;
        self.structure_version = self.structure_version.wrapping_add(1);
        Ok(id)
    }

    /// Frees an object, invalidating its handle. Returns the object.
    ///
    /// Dangling references *to* the freed object are not chased; reading
    /// them later yields [`HeapError::DanglingObject`], mirroring the
    /// paper's remark that a page may mix live objects with garbage.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`] if the handle is stale.
    pub fn free(&mut self, id: ObjectId) -> Result<Object, HeapError> {
        let slot = self
            .slots
            .get_mut(id.index())
            .filter(|s| s.generation == id.generation && s.object.is_some())
            .ok_or(HeapError::DanglingObject(id))?;
        let object = slot.object.take().expect("checked above");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        if object.info.modified {
            self.live_dirty -= 1;
        }
        self.live -= 1;
        self.stats.frees += 1;
        self.structure_version = self.structure_version.wrapping_add(1);
        Ok(object)
    }

    fn object_ref(&self, id: ObjectId) -> Result<&Object, HeapError> {
        self.slots
            .get(id.index())
            .filter(|s| s.generation == id.generation)
            .and_then(|s| s.object.as_ref())
            .ok_or(HeapError::DanglingObject(id))
    }

    fn object_mut(&mut self, id: ObjectId) -> Result<&mut Object, HeapError> {
        self.slots
            .get_mut(id.index())
            .filter(|s| s.generation == id.generation)
            .and_then(|s| s.object.as_mut())
            .ok_or(HeapError::DanglingObject(id))
    }

    /// Borrows an object.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`] if the handle is stale.
    pub fn object(&self, id: ObjectId) -> Result<&Object, HeapError> {
        self.object_ref(id)
    }

    /// `true` if the handle refers to a live object.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.object_ref(id).is_ok()
    }

    /// The class of an object.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`] if the handle is stale.
    pub fn class_of(&self, id: ObjectId) -> Result<ClassId, HeapError> {
        Ok(self.object_ref(id)?.class)
    }

    /// The stable checkpoint identity of an object.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`] if the handle is stale.
    pub fn stable_id(&self, id: ObjectId) -> Result<StableId, HeapError> {
        Ok(self.object_ref(id)?.info.stable)
    }

    /// Reads a field slot.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`] or
    /// [`HeapError::SlotOutOfBounds`].
    pub fn field(&self, id: ObjectId, slot: usize) -> Result<Value, HeapError> {
        let obj = self.object_ref(id)?;
        obj.fields.get(slot).copied().ok_or(HeapError::SlotOutOfBounds {
            object: id,
            slot,
            len: obj.fields.len(),
        })
    }

    /// Reads a field by name (slower; resolves the slot each call).
    ///
    /// # Errors
    ///
    /// Fails like [`Heap::field`], plus [`HeapError::UnknownField`].
    pub fn field_named(&self, id: ObjectId, field: &str) -> Result<Value, HeapError> {
        let class = self.class_of(id)?;
        let slot = self.registry.class(class)?.slot_of(field)?;
        self.field(id, slot)
    }

    /// Stores a field slot through the **write barrier**: the store is
    /// type-checked and the object's modified flag is set.
    ///
    /// This is the analog of the `x = v; info.setModified();` pairs the
    /// paper's preprocessor inserts into every Java setter.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`], [`HeapError::SlotOutOfBounds`],
    /// [`HeapError::TypeMismatch`], or [`HeapError::ClassConstraint`].
    pub fn set_field(&mut self, id: ObjectId, slot: usize, value: Value) -> Result<(), HeapError> {
        self.store(id, slot, value, true)
    }

    /// Stores a field slot *without* touching the modified flag.
    ///
    /// Only the restore path uses this: materializing recorded state must
    /// not make every object look freshly dirty. Normal program mutation
    /// must use [`Heap::set_field`].
    ///
    /// # Errors
    ///
    /// Fails like [`Heap::set_field`].
    pub fn set_field_unbarriered(
        &mut self,
        id: ObjectId,
        slot: usize,
        value: Value,
    ) -> Result<(), HeapError> {
        self.store(id, slot, value, false)
    }

    /// Stores a field by name through the write barrier.
    ///
    /// # Errors
    ///
    /// Fails like [`Heap::set_field`], plus [`HeapError::UnknownField`].
    pub fn set_field_named(
        &mut self,
        id: ObjectId,
        field: &str,
        value: Value,
    ) -> Result<(), HeapError> {
        let class = self.class_of(id)?;
        let slot = self.registry.class(class)?.slot_of(field)?;
        self.set_field(id, slot, value)
    }

    fn store(
        &mut self,
        id: ObjectId,
        slot: usize,
        value: Value,
        barrier: bool,
    ) -> Result<(), HeapError> {
        let class = self.object_ref(id)?.class;
        let def = self.registry.class(class)?;
        let len = def.num_slots();
        let ty = def.slot_type(slot).map_err(|_| HeapError::SlotOutOfBounds {
            object: id,
            slot,
            len,
        })?;
        if !value.matches_kind(ty) {
            return Err(HeapError::TypeMismatch { object: id, slot, expected: ty });
        }
        if let (FieldType::Ref(Some(required)), Value::Ref(Some(target))) = (ty, value) {
            let actual = self.class_of(target)?;
            if !self.registry.is_subclass(actual, required) {
                return Err(HeapError::ClassConstraint {
                    object: id,
                    slot,
                    expected: required,
                    actual,
                });
            }
        }
        let is_ref = matches!(ty, FieldType::Ref(_));
        let obj = self.object_mut(id).expect("existence checked above");
        obj.fields[slot] = value;
        let newly_marked = barrier && !obj.info.modified;
        let newly_journaled = newly_marked && !obj.info.journaled;
        if barrier {
            obj.info.modified = true;
        }
        if newly_journaled {
            obj.info.journaled = true;
            self.journal.push(id);
        }
        if newly_marked {
            self.live_dirty += 1;
        }
        if barrier {
            self.stats.field_writes += 1;
        }
        if newly_marked {
            self.stats.barrier_marks += 1;
        }
        if is_ref {
            // A rewired reference can change what is reachable and in what
            // order, so cached traversal orders must be rebuilt.
            self.structure_version = self.structure_version.wrapping_add(1);
        }
        Ok(())
    }

    /// Whether the object is marked modified.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`] if the handle is stale.
    pub fn is_modified(&self, id: ObjectId) -> Result<bool, HeapError> {
        Ok(self.object_ref(id)?.info.modified)
    }

    /// Explicitly marks an object modified (the paper's `setModified()`).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`] if the handle is stale.
    pub fn set_modified(&mut self, id: ObjectId) -> Result<(), HeapError> {
        let info = &mut self.object_mut(id)?.info;
        let newly_marked = !info.modified;
        let newly_journaled = !info.journaled;
        info.modified = true;
        info.journaled = true;
        if newly_marked {
            self.live_dirty += 1;
        }
        if newly_journaled {
            self.journal.push(id);
        }
        Ok(())
    }

    /// Clears an object's modified flag (done by the checkpointer after
    /// recording — the paper's `resetModified()`).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DanglingObject`] if the handle is stale.
    pub fn reset_modified(&mut self, id: ObjectId) -> Result<(), HeapError> {
        let info = &mut self.object_mut(id)?.info;
        if info.modified {
            info.modified = false;
            self.live_dirty -= 1;
        }
        Ok(())
    }

    /// Marks every live object modified (forces the next incremental
    /// checkpoint to be a full one).
    pub fn mark_all_modified(&mut self) {
        let journal = &mut self.journal;
        let live_dirty = &mut self.live_dirty;
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if let Some(obj) = &mut slot.object {
                if !obj.info.modified {
                    obj.info.modified = true;
                    *live_dirty += 1;
                }
                if !obj.info.journaled {
                    obj.info.journaled = true;
                    journal.push(ObjectId { index: index as u32, generation: slot.generation });
                }
            }
        }
    }

    /// Clears the modified flag of every live object.
    pub fn reset_all_modified(&mut self) {
        for slot in &mut self.slots {
            if let Some(obj) = &mut slot.object {
                if obj.info.modified {
                    obj.info.modified = false;
                    self.live_dirty -= 1;
                }
            }
        }
    }

    /// The number of arena slots (live or freed). Every slot index from
    /// [`ObjectId::index`] is strictly below this bound, which lets graph
    /// traversals use dense slot-indexed tables instead of hashing — the
    /// parallel checkpointer's shard partitioner depends on it.
    pub fn arena_size(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over the handles of all live objects, in slot order.
    pub fn iter_live(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.object.as_ref().map(|_| ObjectId { index: i as u32, generation: s.generation })
        })
    }

    /// The number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no objects are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// The dirty-set journal for the current epoch: every object that
    /// transitioned clean→dirty since the last
    /// [`Heap::finish_journal_epoch`], each listed at most once, in the
    /// order the transitions happened. Entries may be stale (the object was
    /// freed since) or refer to objects that have meanwhile been recorded
    /// and reset; consumers must re-check liveness and the modified flag.
    ///
    /// The invariant the write barrier maintains is one-directional: every
    /// *modified* live object has an entry here (so the journal is a sound
    /// membership filter for "what can an incremental checkpoint record"),
    /// but not every entry is still modified.
    pub fn journal(&self) -> &[ObjectId] {
        &self.journal
    }

    /// Number of completed journal epochs (bumped by
    /// [`Heap::finish_journal_epoch`]).
    pub fn journal_epoch(&self) -> u64 {
        self.journal_epoch
    }

    /// A counter that changes whenever the object graph's *shape* may have
    /// changed: any allocation, any free, and any store to a reference
    /// slot (barriered or not). Two observations of the same value around
    /// unchanged roots guarantee an unchanged depth-first traversal order,
    /// which is what lets checkpointers cache and replay traversal orders.
    pub fn structure_version(&self) -> u64 {
        self.structure_version
    }

    /// `true` if any journal entry still refers to a live, modified object
    /// — i.e. the next incremental checkpoint would record something.
    ///
    /// O(1): answered from the barrier-maintained [`Heap::live_dirty`]
    /// counter rather than scanning the journal. The two agree because the
    /// barrier keeps every modified live object journaled.
    pub fn journal_has_dirty(&self) -> bool {
        self.live_dirty > 0
    }

    /// The number of live objects currently marked modified.
    ///
    /// Maintained by the write barrier at every clean↔dirty transition
    /// (allocation, barriered store, [`Heap::set_modified`] /
    /// [`Heap::reset_modified`] and their bulk variants, and frees of dirty
    /// objects). The barrier-coverage auditor's epoch model cross-checks
    /// this counter against a ground-truth scan.
    pub fn live_dirty(&self) -> usize {
        self.live_dirty
    }

    /// The stable id the next fresh allocation will receive.
    ///
    /// Useful for probes that need a collision-free identity for
    /// [`Heap::alloc_restored`].
    pub fn next_stable_id(&self) -> StableId {
        StableId(self.next_stable)
    }

    /// Closes the current journal epoch: drops entries whose object is dead
    /// or no longer modified (clearing their journaled bit so a later
    /// re-dirtying re-journals them), keeps entries that are still dirty,
    /// and bumps the epoch counter. Checkpointers call this after a
    /// successful checkpoint; the retained entries are exactly the dirty
    /// objects the checkpoint did not cover (e.g. currently unreachable
    /// ones). Returns the number of entries carried into the new epoch.
    pub fn finish_journal_epoch(&mut self) -> usize {
        let slots = &mut self.slots;
        self.journal.retain(|id| {
            let obj = slots
                .get_mut(id.index())
                .filter(|s| s.generation == id.generation)
                .and_then(|s| s.object.as_mut());
            match obj {
                Some(obj) if obj.info.modified => true,
                Some(obj) => {
                    obj.info.journaled = false;
                    false
                }
                None => false,
            }
        });
        self.journal_epoch += 1;
        self.journal.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_heap() -> (Heap, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let other = reg.define("Other", None, &[("f", FieldType::Double)]).unwrap();
        (Heap::new(reg), node, other)
    }

    #[test]
    fn alloc_zero_initializes_and_marks_modified() {
        let (mut heap, node, _) = small_heap();
        let o = heap.alloc(node).unwrap();
        assert_eq!(heap.field(o, 0).unwrap(), Value::Int(0));
        assert_eq!(heap.field(o, 1).unwrap(), Value::Ref(None));
        assert!(heap.is_modified(o).unwrap());
    }

    #[test]
    fn stable_ids_are_unique_and_increasing() {
        let (mut heap, node, _) = small_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        assert!(heap.stable_id(a).unwrap() < heap.stable_id(b).unwrap());
    }

    #[test]
    fn write_barrier_sets_modified() {
        let (mut heap, node, _) = small_heap();
        let o = heap.alloc(node).unwrap();
        heap.reset_modified(o).unwrap();
        heap.set_field(o, 0, Value::Int(7)).unwrap();
        assert!(heap.is_modified(o).unwrap());
        assert_eq!(heap.field(o, 0).unwrap(), Value::Int(7));
    }

    #[test]
    fn unbarriered_store_does_not_set_modified() {
        let (mut heap, node, _) = small_heap();
        let o = heap.alloc(node).unwrap();
        heap.reset_modified(o).unwrap();
        heap.set_field_unbarriered(o, 0, Value::Int(7)).unwrap();
        assert!(!heap.is_modified(o).unwrap());
        assert_eq!(heap.field(o, 0).unwrap(), Value::Int(7));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let (mut heap, node, _) = small_heap();
        let o = heap.alloc(node).unwrap();
        let err = heap.set_field(o, 0, Value::Bool(true)).unwrap_err();
        assert!(matches!(err, HeapError::TypeMismatch { .. }));
    }

    #[test]
    fn slot_bounds_are_enforced() {
        let (mut heap, node, _) = small_heap();
        let o = heap.alloc(node).unwrap();
        assert!(matches!(heap.field(o, 9), Err(HeapError::SlotOutOfBounds { .. })));
        assert!(matches!(
            heap.set_field(o, 9, Value::Int(0)),
            Err(HeapError::SlotOutOfBounds { .. })
        ));
    }

    #[test]
    fn class_constrained_refs_accept_subclasses_only() {
        let mut reg = ClassRegistry::new();
        let entry = reg.define("Entry", None, &[]).unwrap();
        let bt = reg.define("BTEntry", Some(entry), &[]).unwrap();
        let holder = reg.define("Holder", None, &[("e", FieldType::Ref(Some(entry)))]).unwrap();
        let unrelated = reg.define("Unrelated", None, &[]).unwrap();
        let mut heap = Heap::new(reg);
        let h = heap.alloc(holder).unwrap();
        let b = heap.alloc(bt).unwrap();
        let u = heap.alloc(unrelated).unwrap();
        heap.set_field(h, 0, Value::Ref(Some(b))).unwrap();
        let err = heap.set_field(h, 0, Value::Ref(Some(u))).unwrap_err();
        assert!(matches!(err, HeapError::ClassConstraint { .. }));
        // null always allowed
        heap.set_field(h, 0, Value::Ref(None)).unwrap();
    }

    #[test]
    fn freed_handles_dangle_and_slots_are_reused_with_new_generation() {
        let (mut heap, node, _) = small_heap();
        let a = heap.alloc(node).unwrap();
        heap.free(a).unwrap();
        assert!(!heap.contains(a));
        assert!(matches!(heap.field(a, 0), Err(HeapError::DanglingObject(_))));
        let b = heap.alloc(node).unwrap();
        assert_eq!(a.index(), b.index());
        assert_ne!(a.generation(), b.generation());
        assert!(heap.contains(b));
    }

    #[test]
    fn double_free_is_rejected() {
        let (mut heap, node, _) = small_heap();
        let a = heap.alloc(node).unwrap();
        heap.free(a).unwrap();
        assert!(matches!(heap.free(a), Err(HeapError::DanglingObject(_))));
    }

    #[test]
    fn alloc_with_validates_arity_and_values() {
        let (mut heap, node, _) = small_heap();
        let o = heap.alloc_with(node, &[Value::Int(3), Value::Ref(None)]).unwrap();
        assert_eq!(heap.field(o, 0).unwrap(), Value::Int(3));
        assert!(heap.alloc_with(node, &[Value::Int(3)]).is_err());
        assert!(heap.alloc_with(node, &[Value::Bool(true), Value::Ref(None)]).is_err());
    }

    #[test]
    fn alloc_restored_preserves_identity_and_bumps_counter() {
        let (mut heap, node, _) = small_heap();
        let r = heap.alloc_restored(node, StableId(100), false).unwrap();
        assert_eq!(heap.stable_id(r).unwrap(), StableId(100));
        assert!(!heap.is_modified(r).unwrap());
        let fresh = heap.alloc(node).unwrap();
        assert!(heap.stable_id(fresh).unwrap().raw() > 100);
    }

    #[test]
    fn named_field_access_round_trips() {
        let (mut heap, node, _) = small_heap();
        let o = heap.alloc(node).unwrap();
        heap.set_field_named(o, "v", Value::Int(42)).unwrap();
        assert_eq!(heap.field_named(o, "v").unwrap(), Value::Int(42));
        assert!(heap.field_named(o, "nope").is_err());
    }

    #[test]
    fn mark_and_reset_all_modified() {
        let (mut heap, node, _) = small_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        heap.reset_all_modified();
        assert!(!heap.is_modified(a).unwrap());
        assert!(!heap.is_modified(b).unwrap());
        heap.mark_all_modified();
        assert!(heap.is_modified(a).unwrap());
        assert!(heap.is_modified(b).unwrap());
    }

    #[test]
    fn stats_track_allocs_writes_and_barrier_transitions() {
        let (mut heap, node, _) = small_heap();
        let o = heap.alloc(node).unwrap();
        heap.reset_modified(o).unwrap();
        heap.set_field(o, 0, Value::Int(1)).unwrap(); // clean -> dirty
        heap.set_field(o, 0, Value::Int(2)).unwrap(); // already dirty
        let s = heap.stats();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.field_writes, 2);
        assert_eq!(s.barrier_marks, 1);
    }

    #[test]
    fn journal_records_each_clean_to_dirty_transition_once() {
        let (mut heap, node, _) = small_heap();
        let a = heap.alloc(node).unwrap(); // fresh => journaled
        let b = heap.alloc(node).unwrap();
        assert_eq!(heap.journal(), &[a, b]);
        heap.reset_all_modified();
        // Still journaled from the allocs: re-dirtying must not duplicate.
        heap.set_field(a, 0, Value::Int(1)).unwrap();
        heap.set_field(a, 0, Value::Int(2)).unwrap();
        heap.set_modified(b).unwrap();
        assert_eq!(heap.journal(), &[a, b]);
        assert!(heap.journal_has_dirty());
    }

    #[test]
    fn finish_journal_epoch_drops_clean_and_dead_entries() {
        let (mut heap, node, _) = small_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let c = heap.alloc(node).unwrap();
        heap.reset_modified(a).unwrap(); // recorded => clean
        heap.free(b).unwrap(); // dead
        assert_eq!(heap.finish_journal_epoch(), 1, "only the dirty survivor");
        assert_eq!(heap.journal(), &[c]);
        assert_eq!(heap.journal_epoch(), 1);
        // The dropped-but-live entry was un-journaled, so a new transition
        // re-journals it in the new epoch.
        heap.set_field(a, 0, Value::Int(5)).unwrap();
        assert_eq!(heap.journal(), &[c, a]);
    }

    #[test]
    fn journal_tolerates_slot_reuse() {
        let (mut heap, node, _) = small_heap();
        let a = heap.alloc(node).unwrap();
        heap.free(a).unwrap();
        let b = heap.alloc(node).unwrap(); // reuses a's slot, new generation
        assert_eq!(heap.journal(), &[a, b]);
        heap.reset_modified(b).unwrap();
        assert!(!heap.journal_has_dirty(), "stale entry must not read through to b");
        heap.finish_journal_epoch();
        assert!(heap.journal().is_empty());
        assert!(!heap.object(b).unwrap().info().journaled());
    }

    #[test]
    fn mark_all_modified_journals_every_live_object_once() {
        let (mut heap, node, _) = small_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        heap.reset_all_modified();
        heap.finish_journal_epoch();
        assert!(heap.journal().is_empty());
        heap.mark_all_modified();
        heap.mark_all_modified();
        assert_eq!(heap.journal(), &[a, b]);
    }

    #[test]
    fn live_dirty_counter_tracks_every_transition() {
        let (mut heap, node, _) = small_heap();
        assert_eq!(heap.live_dirty(), 0);
        let a = heap.alloc(node).unwrap(); // fresh => dirty
        let b = heap.alloc(node).unwrap();
        assert_eq!(heap.live_dirty(), 2);
        heap.reset_modified(a).unwrap();
        heap.reset_modified(a).unwrap(); // idempotent
        assert_eq!(heap.live_dirty(), 1);
        heap.set_field(a, 0, Value::Int(1)).unwrap(); // clean -> dirty
        heap.set_field(a, 0, Value::Int(2)).unwrap(); // already dirty
        assert_eq!(heap.live_dirty(), 2);
        heap.free(b).unwrap(); // dirty object freed
        assert_eq!(heap.live_dirty(), 1);
        heap.reset_all_modified();
        assert_eq!(heap.live_dirty(), 0);
        assert!(!heap.journal_has_dirty());
        heap.set_modified(a).unwrap();
        heap.set_modified(a).unwrap(); // idempotent
        assert_eq!(heap.live_dirty(), 1);
        assert!(heap.journal_has_dirty());
        heap.mark_all_modified();
        assert_eq!(heap.live_dirty(), 1, "a was already dirty, b is dead");
        heap.finish_journal_epoch(); // flags untouched
        assert_eq!(heap.live_dirty(), 1);
    }

    #[test]
    fn next_stable_id_is_collision_free_for_restores() {
        let (mut heap, node, _) = small_heap();
        heap.alloc(node).unwrap();
        let next = heap.next_stable_id();
        let r = heap.alloc_restored(node, next, true).unwrap();
        assert_eq!(heap.stable_id(r).unwrap(), next);
        let fresh = heap.alloc(node).unwrap();
        assert!(heap.stable_id(fresh).unwrap() > next);
    }

    #[test]
    fn structure_version_tracks_shape_changes_only() {
        let (mut heap, node, _) = small_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let v = heap.structure_version();
        heap.set_field(a, 0, Value::Int(1)).unwrap(); // scalar store
        assert_eq!(heap.structure_version(), v, "scalar stores keep the shape");
        heap.set_field(a, 1, Value::Ref(Some(b))).unwrap(); // ref store
        assert_ne!(heap.structure_version(), v);
        let v = heap.structure_version();
        heap.free(b).unwrap();
        assert_ne!(heap.structure_version(), v);
        let v = heap.structure_version();
        heap.alloc(node).unwrap();
        assert_ne!(heap.structure_version(), v);
    }

    #[test]
    fn iter_live_skips_freed_objects() {
        let (mut heap, node, _) = small_heap();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let c = heap.alloc(node).unwrap();
        heap.free(b).unwrap();
        let live: Vec<ObjectId> = heap.iter_live().collect();
        assert_eq!(live, vec![a, c]);
        assert_eq!(heap.len(), 2);
        assert!(!heap.is_empty());
    }
}
