//! # ickp-heap — managed object heap substrate
//!
//! This crate reimplements, in safe Rust, the part of the Java runtime that
//! the checkpointing scheme of *Lawall & Muller, “Efficient Incremental
//! Checkpointing of Java Programs” (DSN 2000)* depends on:
//!
//! * a **class registry** with single inheritance and named, typed fields
//!   ([`ClassRegistry`], [`ClassDef`], [`FieldDef`]);
//! * an **object arena** ([`Heap`]) holding objects whose fields are typed
//!   [`Value`]s and are addressed by flat slot index (inherited fields
//!   first, as in a JVM object layout);
//! * per-object **checkpoint metadata** ([`CheckpointInfo`]): a unique
//!   stable identifier and a `modified` flag;
//! * a **write barrier**: every field store through [`Heap::set_field`]
//!   sets the object's `modified` flag, exactly like the
//!   `info.setModified()` calls that the paper's preprocessor inserts into
//!   every Java mutator.
//!
//! Checkpointing itself lives in `ickp-core` (generic, virtual-dispatch
//! driven) and `ickp-spec` (specialized plans); both operate on this heap.
//!
//! ## Example
//!
//! ```
//! use ickp_heap::{Heap, ClassRegistry, FieldType, Value};
//!
//! # fn main() -> Result<(), ickp_heap::HeapError> {
//! let mut registry = ClassRegistry::new();
//! let point = registry.define("Point", None, &[("x", FieldType::Int), ("y", FieldType::Int)])?;
//! let mut heap = Heap::new(registry);
//!
//! let p = heap.alloc(point)?;
//! let x = heap.class(point)?.slot_of("x")?;
//! heap.set_field(p, x, Value::Int(3))?;      // write barrier marks `p` modified
//! assert!(heap.is_modified(p)?);
//! heap.reset_modified(p)?;                   // done by the checkpointer
//! assert!(!heap.is_modified(p)?);
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod class;
mod error;
mod gc;
mod graph;
mod heap;
mod ids;
mod snapshot;
mod value;

pub use catalog::{
    ApplyFn, DeclaredEffect, DirtyScope, MutationCatalog, MutationProbe, MutatorDecl,
    PUBLIC_MUTATORS,
};
pub use class::{ClassDef, ClassRegistry, FieldDef};
pub use error::HeapError;
pub use gc::GcStats;
pub use graph::{
    chunk_bounds, chunk_bounds_weighted, chunk_roots, chunk_roots_weighted, first_touch_plan,
    first_touch_plan_parallel, partition_roots, partition_roots_parallel, partition_roots_weighted,
    reachable_from, root_weights, validate_acyclic, ReachError, ShardPlan,
};
pub use heap::{CheckpointInfo, Heap, HeapStats, Object};
pub use ids::{ClassId, ObjectId, StableId};
pub use snapshot::{HeapSnapshot, ObjectState};
pub use value::{FieldType, Value};
