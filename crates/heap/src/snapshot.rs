//! Heap-independent state snapshots, for verifying checkpoint/restore.
//!
//! A [`HeapSnapshot`] captures the *logical* state of (part of) a heap:
//! objects keyed by their [`StableId`], with references expressed as stable
//! ids rather than transient arena handles. Two heaps hold the same
//! program state exactly when their snapshots are equal, regardless of
//! where the arena happened to place objects — which is precisely the
//! property a restore must establish.

use crate::error::HeapError;
use crate::graph::reachable_from;
use crate::heap::Heap;
use crate::ids::{ObjectId, StableId};
use crate::value::Value;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A heap-independent rendering of one field value.
#[derive(Debug, Clone, PartialEq)]
enum AbstractValue {
    Int(i32),
    Long(i64),
    /// Doubles are compared bit-exactly so that snapshots are `Eq`-like
    /// even in the presence of NaN.
    DoubleBits(u64),
    Bool(bool),
    Null,
    Ref(StableId),
}

/// The logical state of a single object: class name plus abstracted fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectState {
    class_name: String,
    fields: Vec<AbstractValue>,
}

impl ObjectState {
    /// The name of the object's class.
    pub fn class_name(&self) -> &str {
        &self.class_name
    }

    /// The number of field slots captured.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }
}

/// A logical snapshot of the objects reachable from a set of roots.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HeapSnapshot {
    objects: BTreeMap<u64, ObjectState>,
    roots: Vec<StableId>,
}

impl HeapSnapshot {
    /// Captures the state reachable from `roots`.
    ///
    /// # Errors
    ///
    /// Returns an error if a traversed reference dangles.
    pub fn capture(heap: &Heap, roots: &[ObjectId]) -> Result<HeapSnapshot, HeapError> {
        let mut snapshot = HeapSnapshot {
            objects: BTreeMap::new(),
            roots: roots.iter().map(|&r| heap.stable_id(r)).collect::<Result<Vec<_>, _>>()?,
        };
        for id in reachable_from(heap, roots)? {
            let obj = heap.object(id)?;
            let class_name = heap.class(obj.class())?.name().to_string();
            let mut fields = Vec::with_capacity(obj.fields().len());
            for v in obj.fields() {
                fields.push(match *v {
                    Value::Int(x) => AbstractValue::Int(x),
                    Value::Long(x) => AbstractValue::Long(x),
                    Value::Double(x) => AbstractValue::DoubleBits(x.to_bits()),
                    Value::Bool(x) => AbstractValue::Bool(x),
                    Value::Ref(None) => AbstractValue::Null,
                    Value::Ref(Some(child)) => AbstractValue::Ref(heap.stable_id(child)?),
                });
            }
            snapshot.objects.insert(heap.stable_id(id)?.raw(), ObjectState { class_name, fields });
        }
        Ok(snapshot)
    }

    /// Captures the state of *every* live object in the heap.
    ///
    /// # Errors
    ///
    /// Returns an error if a reference dangles.
    pub fn capture_all(heap: &Heap) -> Result<HeapSnapshot, HeapError> {
        let roots: Vec<ObjectId> = heap.iter_live().collect();
        HeapSnapshot::capture(heap, &roots)
    }

    /// The number of objects captured.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Looks up the captured state of an object by stable id.
    pub fn object(&self, id: StableId) -> Option<&ObjectState> {
        self.objects.get(&id.raw())
    }

    /// A deterministic 64-bit digest of the logical state, independent of
    /// arena placement. Equal snapshots have equal hashes.
    pub fn state_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for (id, obj) in &self.objects {
            id.hash(&mut h);
            obj.class_name.hash(&mut h);
            for f in &obj.fields {
                match f {
                    AbstractValue::Int(x) => (0u8, *x as i64).hash(&mut h),
                    AbstractValue::Long(x) => (1u8, *x).hash(&mut h),
                    AbstractValue::DoubleBits(x) => (2u8, *x).hash(&mut h),
                    AbstractValue::Bool(x) => (3u8, *x as i64).hash(&mut h),
                    AbstractValue::Null => (4u8, 0i64).hash(&mut h),
                    AbstractValue::Ref(s) => (5u8, s.raw() as i64).hash(&mut h),
                }
            }
        }
        h.finish()
    }

    /// Describes the first difference from `other`, if any — handy for
    /// failing restore tests with a useful message.
    pub fn diff(&self, other: &HeapSnapshot) -> Option<String> {
        for (id, a) in &self.objects {
            match other.objects.get(id) {
                None => return Some(format!("object id:{id} missing from other snapshot")),
                Some(b) if a != b => {
                    return Some(format!("object id:{id} differs: {a:?} vs {b:?}"))
                }
                _ => {}
            }
        }
        for id in other.objects.keys() {
            if !self.objects.contains_key(id) {
                return Some(format!("object id:{id} only in other snapshot"));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassRegistry;
    use crate::ids::ClassId;
    use crate::value::FieldType;

    fn heap_with_pair() -> (Heap, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        (Heap::new(reg), node)
    }

    #[test]
    fn identical_structures_in_different_arenas_compare_equal() {
        let (mut h1, node1) = heap_with_pair();
        let (mut h2, node2) = heap_with_pair();
        // Perturb arena placement in h2 with a throwaway allocation.
        let junk = h2.alloc(node2).unwrap();
        h2.free(junk).unwrap();

        let build = |heap: &mut Heap, node: ClassId| {
            let child = heap.alloc(node).unwrap();
            heap.set_field(child, 0, Value::Int(2)).unwrap();
            let root = heap.alloc(node).unwrap();
            heap.set_field(root, 0, Value::Int(1)).unwrap();
            heap.set_field(root, 1, Value::Ref(Some(child))).unwrap();
            root
        };
        let r1 = build(&mut h1, node1);
        let r2 = build(&mut h2, node2);

        let s1 = HeapSnapshot::capture(&h1, &[r1]).unwrap();
        let s2 = HeapSnapshot::capture(&h2, &[r2]).unwrap();
        // Stable ids differ (junk consumed one), so compare via diff of
        // values after checking sizes; identical builds in fresh heaps
        // compare fully equal:
        assert_eq!(s1.len(), 2);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn equal_heaps_have_equal_snapshots_and_hashes() {
        let (mut h1, node) = heap_with_pair();
        let child = h1.alloc(node).unwrap();
        let root = h1.alloc(node).unwrap();
        h1.set_field(root, 1, Value::Ref(Some(child))).unwrap();
        let s1 = HeapSnapshot::capture(&h1, &[root]).unwrap();
        let s2 = HeapSnapshot::capture(&h1, &[root]).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.state_hash(), s2.state_hash());
        assert!(s1.diff(&s2).is_none());
    }

    #[test]
    fn field_change_shows_in_snapshot_hash_and_diff() {
        let (mut heap, node) = heap_with_pair();
        let root = heap.alloc(node).unwrap();
        let before = HeapSnapshot::capture(&heap, &[root]).unwrap();
        heap.set_field(root, 0, Value::Int(99)).unwrap();
        let after = HeapSnapshot::capture(&heap, &[root]).unwrap();
        assert_ne!(before, after);
        assert_ne!(before.state_hash(), after.state_hash());
        assert!(before.diff(&after).unwrap().contains("differs"));
    }

    #[test]
    fn missing_object_is_reported_in_diff() {
        let (mut heap, node) = heap_with_pair();
        let a = heap.alloc(node).unwrap();
        let b = heap.alloc(node).unwrap();
        let both = HeapSnapshot::capture(&heap, &[a, b]).unwrap();
        let one = HeapSnapshot::capture(&heap, &[a]).unwrap();
        assert!(both.diff(&one).unwrap().contains("missing"));
        assert!(one.diff(&both).unwrap().contains("only in other"));
    }

    #[test]
    fn capture_all_covers_every_live_object() {
        let (mut heap, node) = heap_with_pair();
        for _ in 0..5 {
            heap.alloc(node).unwrap();
        }
        let snap = HeapSnapshot::capture_all(&heap).unwrap();
        assert_eq!(snap.len(), 5);
        assert!(!snap.is_empty());
    }

    #[test]
    fn nan_doubles_compare_bit_exactly() {
        let mut reg = ClassRegistry::new();
        let c = reg.define("D", None, &[("x", FieldType::Double)]).unwrap();
        let mut heap = Heap::new(reg);
        let o = heap.alloc(c).unwrap();
        heap.set_field(o, 0, Value::Double(f64::NAN)).unwrap();
        let s1 = HeapSnapshot::capture(&heap, &[o]).unwrap();
        let s2 = HeapSnapshot::capture(&heap, &[o]).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn object_lookup_by_stable_id() {
        let (mut heap, node) = heap_with_pair();
        let o = heap.alloc(node).unwrap();
        let sid = heap.stable_id(o).unwrap();
        let snap = HeapSnapshot::capture(&heap, &[o]).unwrap();
        let state = snap.object(sid).unwrap();
        assert_eq!(state.class_name(), "Node");
        assert_eq!(state.num_fields(), 2);
        assert!(snap.object(StableId(999_999)).is_none());
    }
}
