//! Randomized shard-plan properties on DAG heaps with shared substructure.
//!
//! These pin the exact invariant `ickp-audit`'s shard-interference pass
//! builds on: [`partition_roots`] ownership is the *first-touch*
//! prediction derived purely from root order, every reachable object is
//! owned by exactly one shard, and the per-shard pre-orders concatenate
//! to the sequential pre-order (so the parallel stream merge is
//! byte-identical to sequential by construction).
//!
//! Heaps are built bottom-up — object `i` only references objects
//! allocated before it — which guarantees acyclicity while still
//! producing heavy sharing (many parents per object).

use ickp_heap::{
    chunk_roots, partition_roots, reachable_from, ClassRegistry, FieldType, Heap, ObjectId, Value,
};
use ickp_prng::Prng;
use std::collections::{HashMap, HashSet};

const REF_SLOTS: usize = 3;

/// Builds a random DAG heap and returns its live objects in allocation
/// order.
fn random_dag(rng: &mut Prng) -> (Heap, Vec<ObjectId>) {
    let mut reg = ClassRegistry::new();
    let class = reg
        .define(
            "D",
            None,
            &[
                ("v", FieldType::Int),
                ("a", FieldType::Ref(None)),
                ("b", FieldType::Ref(None)),
                ("c", FieldType::Ref(None)),
            ],
        )
        .unwrap();
    let mut heap = Heap::new(reg);
    let n = 2 + rng.index(60);
    let mut objects = Vec::with_capacity(n);
    for i in 0..n {
        let id = heap.alloc(class).unwrap();
        heap.set_field(id, 0, Value::Int(i as i32)).unwrap();
        // Each ref slot independently points at a random earlier object,
        // so late allocations fan in on early ones (shared substructure).
        for slot in 0..REF_SLOTS {
            if i > 0 && rng.below(3) != 0 {
                let target = objects[rng.index(i)];
                heap.set_field(id, 1 + slot, Value::Ref(Some(target))).unwrap();
            }
        }
        objects.push(id);
    }
    (heap, objects)
}

/// Picks a random subset of `objects` in random order (distinct roots).
fn random_roots(rng: &mut Prng, objects: &[ObjectId]) -> Vec<ObjectId> {
    let mut pool = objects.to_vec();
    let count = 1 + rng.index(pool.len().min(12));
    let mut roots = Vec::with_capacity(count);
    for _ in 0..count {
        roots.push(pool.swap_remove(rng.index(pool.len())));
    }
    roots
}

/// An independent reimplementation of first-touch ownership: walk each
/// root chunk in order with a depth-first pre-order traversal, claiming
/// every object not yet claimed by an earlier chunk.
fn predict_first_touch(heap: &Heap, chunks: &[Vec<ObjectId>]) -> HashMap<ObjectId, usize> {
    let mut owner = HashMap::new();
    for (shard, chunk) in chunks.iter().enumerate() {
        let mut stack: Vec<ObjectId> = chunk.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            if owner.contains_key(&id) {
                continue;
            }
            owner.insert(id, shard);
            let object = heap.object(id).unwrap();
            for value in object.fields().iter().rev() {
                if let Value::Ref(Some(child)) = value {
                    stack.push(*child);
                }
            }
        }
    }
    owner
}

/// Ownership is exactly the first-touch prediction from root order, and
/// unreachable objects stay unowned — for every shard count the audit
/// pass exercises.
#[test]
fn ownership_is_the_first_touch_prediction_from_root_order() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0x5a4d_0000 + case);
        let (heap, objects) = random_dag(&mut rng);
        let roots = random_roots(&mut rng, &objects);
        let reachable: HashSet<ObjectId> =
            reachable_from(&heap, &roots).unwrap().into_iter().collect();
        for shards in 1..=8usize {
            let plan = partition_roots(&heap, &roots, shards).unwrap();
            let predicted = predict_first_touch(&heap, &chunk_roots(&roots, shards));
            assert_eq!(plan.num_objects(), reachable.len(), "case {case}, {shards} shards");
            for &id in &objects {
                match (plan.owner_of(id), predicted.get(&id)) {
                    (Some(got), Some(&want)) => {
                        assert_eq!(
                            got as usize, want,
                            "case {case}, {shards} shards, object {id:?}"
                        )
                    }
                    (None, None) => assert!(
                        !reachable.contains(&id),
                        "case {case}: unowned object {id:?} is reachable"
                    ),
                    (got, want) => panic!(
                        "case {case}, {shards} shards, object {id:?}: plan says {got:?}, \
                         prediction says {want:?}"
                    ),
                }
            }
        }
    }
}

/// The per-shard pre-order slices are a partition of the reachable set
/// whose concatenation is exactly the sequential pre-order.
#[test]
fn shard_slices_partition_the_reachable_set_in_sequential_order() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0x9a27_0000 + case);
        let (heap, objects) = random_dag(&mut rng);
        let roots = random_roots(&mut rng, &objects);
        let sequential = reachable_from(&heap, &roots).unwrap();
        for shards in 1..=8usize {
            let plan = partition_roots(&heap, &roots, shards).unwrap();
            let mut merged = Vec::new();
            let mut seen: HashSet<ObjectId> = HashSet::new();
            for shard in 0..plan.num_shards() {
                let slice = plan.shard_preorder(&heap, shard).unwrap();
                assert_eq!(
                    slice.len(),
                    plan.objects_per_shard()[shard],
                    "case {case}, shard {shard}/{shards}"
                );
                for &id in &slice {
                    assert!(
                        seen.insert(id),
                        "case {case}, {shards} shards: object {id:?} emitted by two shards"
                    );
                    assert_eq!(plan.owner_of(id), Some(shard as u32), "case {case}");
                }
                merged.extend(slice);
            }
            assert_eq!(merged, sequential, "case {case}, {shards} shards");
        }
    }
}
