//! Randomized shard-plan properties on DAG heaps with shared substructure.
//!
//! These pin the exact invariant `ickp-audit`'s shard-interference pass
//! builds on: [`partition_roots`] ownership is the *first-touch*
//! prediction derived purely from root order, every reachable object is
//! owned by exactly one shard, and the per-shard pre-orders concatenate
//! to the sequential pre-order (so the parallel stream merge is
//! byte-identical to sequential by construction).
//!
//! Heaps are built bottom-up — object `i` only references objects
//! allocated before it — which guarantees acyclicity while still
//! producing heavy sharing (many parents per object).

use ickp_heap::{
    chunk_roots, chunk_roots_weighted, first_touch_plan, first_touch_plan_parallel,
    partition_roots, partition_roots_parallel, partition_roots_weighted, reachable_from,
    root_weights, ClassRegistry, FieldType, Heap, ObjectId, Value,
};
use ickp_prng::Prng;
use std::collections::{HashMap, HashSet};

const REF_SLOTS: usize = 3;

/// Builds a random DAG heap and returns its live objects in allocation
/// order.
fn random_dag(rng: &mut Prng) -> (Heap, Vec<ObjectId>) {
    let mut reg = ClassRegistry::new();
    let class = reg
        .define(
            "D",
            None,
            &[
                ("v", FieldType::Int),
                ("a", FieldType::Ref(None)),
                ("b", FieldType::Ref(None)),
                ("c", FieldType::Ref(None)),
            ],
        )
        .unwrap();
    let mut heap = Heap::new(reg);
    let n = 2 + rng.index(60);
    let mut objects = Vec::with_capacity(n);
    for i in 0..n {
        let id = heap.alloc(class).unwrap();
        heap.set_field(id, 0, Value::Int(i as i32)).unwrap();
        // Each ref slot independently points at a random earlier object,
        // so late allocations fan in on early ones (shared substructure).
        for slot in 0..REF_SLOTS {
            if i > 0 && rng.below(3) != 0 {
                let target = objects[rng.index(i)];
                heap.set_field(id, 1 + slot, Value::Ref(Some(target))).unwrap();
            }
        }
        objects.push(id);
    }
    (heap, objects)
}

/// Picks a random subset of `objects` in random order (distinct roots).
fn random_roots(rng: &mut Prng, objects: &[ObjectId]) -> Vec<ObjectId> {
    let mut pool = objects.to_vec();
    let count = 1 + rng.index(pool.len().min(12));
    let mut roots = Vec::with_capacity(count);
    for _ in 0..count {
        roots.push(pool.swap_remove(rng.index(pool.len())));
    }
    roots
}

/// An independent reimplementation of first-touch ownership: walk each
/// root chunk in order with a depth-first pre-order traversal, claiming
/// every object not yet claimed by an earlier chunk.
fn predict_first_touch(heap: &Heap, chunks: &[Vec<ObjectId>]) -> HashMap<ObjectId, usize> {
    let mut owner = HashMap::new();
    for (shard, chunk) in chunks.iter().enumerate() {
        let mut stack: Vec<ObjectId> = chunk.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            if owner.contains_key(&id) {
                continue;
            }
            owner.insert(id, shard);
            let object = heap.object(id).unwrap();
            for value in object.fields().iter().rev() {
                if let Value::Ref(Some(child)) = value {
                    stack.push(*child);
                }
            }
        }
    }
    owner
}

/// Ownership is exactly the first-touch prediction from root order, and
/// unreachable objects stay unowned — for every shard count the audit
/// pass exercises.
#[test]
fn ownership_is_the_first_touch_prediction_from_root_order() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0x5a4d_0000 + case);
        let (heap, objects) = random_dag(&mut rng);
        let roots = random_roots(&mut rng, &objects);
        let reachable: HashSet<ObjectId> =
            reachable_from(&heap, &roots).unwrap().into_iter().collect();
        for shards in 1..=8usize {
            let plan = partition_roots(&heap, &roots, shards).unwrap();
            let predicted = predict_first_touch(&heap, &chunk_roots(&roots, shards));
            assert_eq!(plan.num_objects(), reachable.len(), "case {case}, {shards} shards");
            for &id in &objects {
                match (plan.owner_of(id), predicted.get(&id)) {
                    (Some(got), Some(&want)) => {
                        assert_eq!(
                            got as usize, want,
                            "case {case}, {shards} shards, object {id:?}"
                        )
                    }
                    (None, None) => assert!(
                        !reachable.contains(&id),
                        "case {case}: unowned object {id:?} is reachable"
                    ),
                    (got, want) => panic!(
                        "case {case}, {shards} shards, object {id:?}: plan says {got:?}, \
                         prediction says {want:?}"
                    ),
                }
            }
        }
    }
}

/// The per-shard pre-order slices are a partition of the reachable set
/// whose concatenation is exactly the sequential pre-order.
#[test]
fn shard_slices_partition_the_reachable_set_in_sequential_order() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0x9a27_0000 + case);
        let (heap, objects) = random_dag(&mut rng);
        let roots = random_roots(&mut rng, &objects);
        let sequential = reachable_from(&heap, &roots).unwrap();
        for shards in 1..=8usize {
            let plan = partition_roots(&heap, &roots, shards).unwrap();
            let mut merged = Vec::new();
            let mut seen: HashSet<ObjectId> = HashSet::new();
            for shard in 0..plan.num_shards() {
                let slice = plan.shard_preorder(&heap, shard).unwrap();
                assert_eq!(
                    slice.len(),
                    plan.objects_per_shard()[shard],
                    "case {case}, shard {shard}/{shards}"
                );
                for &id in &slice {
                    assert!(
                        seen.insert(id),
                        "case {case}, {shards} shards: object {id:?} emitted by two shards"
                    );
                    assert_eq!(plan.owner_of(id), Some(shard as u32), "case {case}");
                }
                merged.extend(slice);
            }
            assert_eq!(merged, sequential, "case {case}, {shards} shards");
        }
    }
}

/// **The parallel pre-pass is an exact drop-in**: on randomized DAGs with
/// heavy shared substructure, the racy min-CAS plan equals the sequential
/// oracle — same owner table, same bounds, same roots — for every shard
/// count, under both count-balanced and byte-weighted chunking.
#[test]
fn parallel_plan_equals_sequential_on_random_dags() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0x7a11_0000 + case);
        let (heap, objects) = random_dag(&mut rng);
        let roots = random_roots(&mut rng, &objects);
        for shards in 1..=8usize {
            let sequential = partition_roots(&heap, &roots, shards).unwrap();
            let parallel = partition_roots_parallel(&heap, &roots, shards).unwrap();
            assert_eq!(parallel, sequential, "case {case}, {shards} shards");
            assert_eq!(parallel.owner_table(), sequential.owner_table(), "case {case}");

            let weights = root_weights(&heap, &roots, 15).unwrap();
            let chunks = chunk_roots_weighted(&roots, &weights, shards);
            let weighted_seq = first_touch_plan(&heap, chunks.clone()).unwrap();
            let weighted_par = first_touch_plan_parallel(&heap, chunks).unwrap();
            assert_eq!(weighted_par, weighted_seq, "case {case}, {shards} shards (weighted)");
            let direct = partition_roots_weighted(&heap, &roots, &weights, shards).unwrap();
            assert_eq!(direct, weighted_seq, "case {case}, {shards} shards (direct weighted)");
        }
    }
}

/// **Shared subgraphs race to one winner**: many roots funneling into one
/// diamond-shaped core still produce the sequential plan — the lowest
/// chunk wins every contended object no matter how threads interleave.
#[test]
fn contended_shared_subgraph_resolves_to_the_lowest_chunk() {
    let mut reg = ClassRegistry::new();
    let class =
        reg.define("S", None, &[("a", FieldType::Ref(None)), ("b", FieldType::Ref(None))]).unwrap();
    let mut heap = Heap::new(reg);
    // A 40-deep diamond ladder every root can reach.
    let mut lower = heap.alloc(class).unwrap();
    for _ in 0..40 {
        let left = heap.alloc(class).unwrap();
        let right = heap.alloc(class).unwrap();
        let top = heap.alloc(class).unwrap();
        heap.set_field(left, 0, Value::Ref(Some(lower))).unwrap();
        heap.set_field(right, 0, Value::Ref(Some(lower))).unwrap();
        heap.set_field(top, 0, Value::Ref(Some(left))).unwrap();
        heap.set_field(top, 1, Value::Ref(Some(right))).unwrap();
        lower = top;
    }
    // 16 roots, each pointing straight at the contended ladder.
    let mut roots = Vec::new();
    for _ in 0..16 {
        let root = heap.alloc(class).unwrap();
        heap.set_field(root, 0, Value::Ref(Some(lower))).unwrap();
        roots.push(root);
    }
    for shards in [2, 3, 4, 8, 16] {
        let sequential = partition_roots(&heap, &roots, shards).unwrap();
        let parallel = partition_roots_parallel(&heap, &roots, shards).unwrap();
        assert_eq!(parallel, sequential, "{shards} shards");
        // The whole ladder belongs to shard 0 — first touch from root 0.
        assert_eq!(parallel.owner_of(lower), Some(0));
    }
}

/// **Stale plans must be rebuilt, and rebuilds agree**: after structural
/// mutations bump `structure_version`, a freshly computed parallel plan
/// equals the fresh sequential oracle and diverges from the stale plan —
/// the exact invalidation signal the engine's plan cache keys on.
#[test]
fn recomputed_plans_agree_after_structure_changes() {
    for case in 0..24u64 {
        let mut rng = Prng::seed_from_u64(0x57a1_0000 + case);
        let (mut heap, mut objects) = random_dag(&mut rng);
        let roots = random_roots(&mut rng, &objects);
        let class = heap.class_of(objects[0]).unwrap();
        let before = partition_roots_parallel(&heap, &roots, 4).unwrap();
        let version = heap.structure_version();

        // Grow a fresh spine under root 0 so first-touch order shifts.
        let mut next = None;
        for _ in 0..3 + rng.index(5) {
            let id = heap.alloc(class).unwrap();
            heap.set_field(id, 1, Value::Ref(next)).unwrap();
            next = Some(id);
            objects.push(id);
        }
        heap.set_field(roots[0], 1, Value::Ref(next)).unwrap();
        assert_ne!(heap.structure_version(), version, "case {case}: mutation must be visible");

        let sequential = partition_roots(&heap, &roots, 4).unwrap();
        let parallel = partition_roots_parallel(&heap, &roots, 4).unwrap();
        assert_eq!(parallel, sequential, "case {case}");
        assert_ne!(parallel, before, "case {case}: stale plan should differ after growth");
        assert_eq!(parallel.num_objects(), reachable_from(&heap, &roots).unwrap().len());
    }
}
