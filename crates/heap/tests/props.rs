//! Model-based property tests: the heap against a naive reference model.

use ickp_heap::{ClassRegistry, FieldType, Heap, HeapError, ObjectId, Value};
use proptest::prelude::*;
use std::collections::HashMap;

/// Operations the fuzzer drives.
#[derive(Debug, Clone)]
enum Op {
    Alloc,
    Free(usize),
    SetInt(usize, i32),
    SetRef(usize, usize),
    SetRefNull(usize),
    ResetModified(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Alloc),
        1 => (0usize..64).prop_map(Op::Free),
        3 => ((0usize..64), any::<i32>()).prop_map(|(i, v)| Op::SetInt(i, v)),
        2 => ((0usize..64), (0usize..64)).prop_map(|(a, b)| Op::SetRef(a, b)),
        1 => (0usize..64).prop_map(Op::SetRefNull),
        1 => (0usize..64).prop_map(Op::ResetModified),
    ]
}

/// Reference model of one object.
#[derive(Debug, Clone, PartialEq)]
struct ModelObject {
    value: i32,
    reference: Option<ObjectId>,
    modified: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every operation behaves exactly like a trivial in-memory model;
    /// stale handles always error; flags track barriered writes.
    #[test]
    fn heap_agrees_with_reference_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut reg = ClassRegistry::new();
        let class = reg
            .define("N", None, &[("v", FieldType::Int), ("r", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let mut model: HashMap<ObjectId, ModelObject> = HashMap::new();
        let mut handles: Vec<ObjectId> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc => {
                    let id = heap.alloc(class).unwrap();
                    prop_assert!(!model.contains_key(&id), "handles are never reissued");
                    model.insert(id, ModelObject { value: 0, reference: None, modified: true });
                    handles.push(id);
                }
                Op::Free(i) if !handles.is_empty() => {
                    let id = handles[i % handles.len()];
                    match (heap.free(id), model.remove(&id)) {
                        (Ok(_), Some(_)) => {
                            // References to the freed object stay in other
                            // objects (dangling), as in the real system.
                        }
                        (Err(HeapError::DanglingObject(_)), None) => {}
                        (h, m) => prop_assert!(false, "free mismatch: {h:?} vs {m:?}"),
                    }
                }
                Op::SetInt(i, v) if !handles.is_empty() => {
                    let id = handles[i % handles.len()];
                    match (heap.set_field(id, 0, Value::Int(v)), model.get_mut(&id)) {
                        (Ok(()), Some(m)) => {
                            m.value = v;
                            m.modified = true;
                        }
                        (Err(HeapError::DanglingObject(_)), None) => {}
                        (h, m) => prop_assert!(false, "set mismatch: {h:?} vs {m:?}"),
                    }
                }
                Op::SetRef(a, b) if !handles.is_empty() => {
                    let src = handles[a % handles.len()];
                    let dst = handles[b % handles.len()];
                    // An unconstrained ref slot accepts any handle — even a
                    // stale one (the dangle is detected at *use*, like a
                    // page holding both live objects and garbage).
                    match (heap.set_field(src, 1, Value::Ref(Some(dst))), model.get_mut(&src)) {
                        (Ok(()), Some(m)) => {
                            m.reference = Some(dst);
                            m.modified = true;
                        }
                        (Err(HeapError::DanglingObject(_)), None) => {}
                        (h, m) => prop_assert!(false, "setref mismatch: {h:?} vs {m:?}"),
                    }
                }
                Op::SetRefNull(i) if !handles.is_empty() => {
                    let id = handles[i % handles.len()];
                    match (heap.set_field(id, 1, Value::Ref(None)), model.get_mut(&id)) {
                        (Ok(()), Some(m)) => {
                            m.reference = None;
                            m.modified = true;
                        }
                        (Err(HeapError::DanglingObject(_)), None) => {}
                        (h, m) => prop_assert!(false, "setnull mismatch: {h:?} vs {m:?}"),
                    }
                }
                Op::ResetModified(i) if !handles.is_empty() => {
                    let id = handles[i % handles.len()];
                    match (heap.reset_modified(id), model.get_mut(&id)) {
                        (Ok(()), Some(m)) => m.modified = false,
                        (Err(HeapError::DanglingObject(_)), None) => {}
                        (h, m) => prop_assert!(false, "reset mismatch: {h:?} vs {m:?}"),
                    }
                }
                _ => {}
            }

            // Full-state check after every operation.
            prop_assert_eq!(heap.len(), model.len());
            for (&id, m) in &model {
                prop_assert_eq!(heap.field(id, 0).unwrap(), Value::Int(m.value));
                prop_assert_eq!(heap.field(id, 1).unwrap(), Value::Ref(m.reference));
                prop_assert_eq!(heap.is_modified(id).unwrap(), m.modified);
            }
        }

        // Live iteration agrees with the model's key set.
        let live: Vec<ObjectId> = heap.iter_live().collect();
        prop_assert_eq!(live.len(), model.len());
        for id in live {
            prop_assert!(model.contains_key(&id));
        }
    }

    /// Stable ids are unique across the lifetime of a heap, even with
    /// slot reuse after frees.
    #[test]
    fn stable_ids_never_repeat(frees in proptest::collection::vec(any::<bool>(), 1..80)) {
        let mut reg = ClassRegistry::new();
        let class = reg.define("N", None, &[("v", FieldType::Int)]).unwrap();
        let mut heap = Heap::new(reg);
        let mut seen = std::collections::HashSet::new();
        let mut live: Vec<ObjectId> = Vec::new();
        for f in frees {
            let id = heap.alloc(class).unwrap();
            prop_assert!(seen.insert(heap.stable_id(id).unwrap()), "stable id reused");
            live.push(id);
            if f && live.len() > 1 {
                let victim = live.remove(0);
                heap.free(victim).unwrap();
            }
        }
    }
}
