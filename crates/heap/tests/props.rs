//! Model-based randomized tests: the heap against a naive reference model.
//!
//! Previously written with `proptest`; rewritten over the in-repo seeded
//! PRNG so the suite runs with no network access (no external
//! dev-dependencies). Each case is fully determined by its seed, so a
//! failure message names the seed to replay.

use ickp_heap::{ClassRegistry, FieldType, Heap, HeapError, ObjectId, Value};
use ickp_prng::Prng;
use std::collections::HashMap;

/// Operations the fuzzer drives.
#[derive(Debug, Clone)]
enum Op {
    Alloc,
    Free(usize),
    SetInt(usize, i32),
    SetRef(usize, usize),
    SetRefNull(usize),
    ResetModified(usize),
}

fn random_op(rng: &mut Prng) -> Op {
    // Weights mirror the original proptest strategy: 2/1/3/2/1/1.
    match rng.below(10) {
        0 | 1 => Op::Alloc,
        2 => Op::Free(rng.index(64)),
        3..=5 => Op::SetInt(rng.index(64), rng.next_i32()),
        6 | 7 => Op::SetRef(rng.index(64), rng.index(64)),
        8 => Op::SetRefNull(rng.index(64)),
        _ => Op::ResetModified(rng.index(64)),
    }
}

/// Reference model of one object.
#[derive(Debug, Clone, PartialEq)]
struct ModelObject {
    value: i32,
    reference: Option<ObjectId>,
    modified: bool,
}

/// Every operation behaves exactly like a trivial in-memory model; stale
/// handles always error; flags track barriered writes.
#[test]
fn heap_agrees_with_reference_model() {
    for case in 0..128u64 {
        let mut rng = Prng::seed_from_u64(0x6ea9_0000 + case);
        let ops = 1 + rng.index(120);
        let mut reg = ClassRegistry::new();
        let class =
            reg.define("N", None, &[("v", FieldType::Int), ("r", FieldType::Ref(None))]).unwrap();
        let mut heap = Heap::new(reg);
        let mut model: HashMap<ObjectId, ModelObject> = HashMap::new();
        let mut handles: Vec<ObjectId> = Vec::new();

        for _ in 0..ops {
            match random_op(&mut rng) {
                Op::Alloc => {
                    let id = heap.alloc(class).unwrap();
                    assert!(!model.contains_key(&id), "case {case}: handles are never reissued");
                    model.insert(id, ModelObject { value: 0, reference: None, modified: true });
                    handles.push(id);
                }
                Op::Free(i) if !handles.is_empty() => {
                    let id = handles[i % handles.len()];
                    match (heap.free(id), model.remove(&id)) {
                        (Ok(_), Some(_)) => {
                            // References to the freed object stay in other
                            // objects (dangling), as in the real system.
                        }
                        (Err(HeapError::DanglingObject(_)), None) => {}
                        (h, m) => panic!("case {case}: free mismatch: {h:?} vs {m:?}"),
                    }
                }
                Op::SetInt(i, v) if !handles.is_empty() => {
                    let id = handles[i % handles.len()];
                    match (heap.set_field(id, 0, Value::Int(v)), model.get_mut(&id)) {
                        (Ok(()), Some(m)) => {
                            m.value = v;
                            m.modified = true;
                        }
                        (Err(HeapError::DanglingObject(_)), None) => {}
                        (h, m) => panic!("case {case}: set mismatch: {h:?} vs {m:?}"),
                    }
                }
                Op::SetRef(a, b) if !handles.is_empty() => {
                    let src = handles[a % handles.len()];
                    let dst = handles[b % handles.len()];
                    // An unconstrained ref slot accepts any handle — even a
                    // stale one (the dangle is detected at *use*, like a
                    // page holding both live objects and garbage).
                    match (heap.set_field(src, 1, Value::Ref(Some(dst))), model.get_mut(&src)) {
                        (Ok(()), Some(m)) => {
                            m.reference = Some(dst);
                            m.modified = true;
                        }
                        (Err(HeapError::DanglingObject(_)), None) => {}
                        (h, m) => panic!("case {case}: setref mismatch: {h:?} vs {m:?}"),
                    }
                }
                Op::SetRefNull(i) if !handles.is_empty() => {
                    let id = handles[i % handles.len()];
                    match (heap.set_field(id, 1, Value::Ref(None)), model.get_mut(&id)) {
                        (Ok(()), Some(m)) => {
                            m.reference = None;
                            m.modified = true;
                        }
                        (Err(HeapError::DanglingObject(_)), None) => {}
                        (h, m) => panic!("case {case}: setnull mismatch: {h:?} vs {m:?}"),
                    }
                }
                Op::ResetModified(i) if !handles.is_empty() => {
                    let id = handles[i % handles.len()];
                    match (heap.reset_modified(id), model.get_mut(&id)) {
                        (Ok(()), Some(m)) => m.modified = false,
                        (Err(HeapError::DanglingObject(_)), None) => {}
                        (h, m) => panic!("case {case}: reset mismatch: {h:?} vs {m:?}"),
                    }
                }
                _ => {}
            }

            // Full-state check after every operation.
            assert_eq!(heap.len(), model.len(), "case {case}");
            for (&id, m) in &model {
                assert_eq!(heap.field(id, 0).unwrap(), Value::Int(m.value), "case {case}");
                assert_eq!(heap.field(id, 1).unwrap(), Value::Ref(m.reference), "case {case}");
                assert_eq!(heap.is_modified(id).unwrap(), m.modified, "case {case}");
            }
        }

        // Live iteration agrees with the model's key set.
        let live: Vec<ObjectId> = heap.iter_live().collect();
        assert_eq!(live.len(), model.len(), "case {case}");
        for id in live {
            assert!(model.contains_key(&id), "case {case}");
        }
    }
}

/// Stable ids are unique across the lifetime of a heap, even with slot
/// reuse after frees.
#[test]
fn stable_ids_never_repeat() {
    for case in 0..64u64 {
        let mut rng = Prng::seed_from_u64(0x51ab_0000 + case);
        let rounds = 1 + rng.index(80);
        let mut reg = ClassRegistry::new();
        let class = reg.define("N", None, &[("v", FieldType::Int)]).unwrap();
        let mut heap = Heap::new(reg);
        let mut seen = std::collections::HashSet::new();
        let mut live: Vec<ObjectId> = Vec::new();
        for _ in 0..rounds {
            let id = heap.alloc(class).unwrap();
            assert!(seen.insert(heap.stable_id(id).unwrap()), "case {case}: stable id reused");
            live.push(id);
            if rng.next_bool() && live.len() > 1 {
                let victim = live.remove(0);
                heap.free(victim).unwrap();
            }
        }
    }
}
