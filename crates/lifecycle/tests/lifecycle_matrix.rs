//! Crash-point enumeration over the full lifecycle vocabulary (the
//! ISSUE's acceptance bar for the manager): drive a fixed script of
//! appends, tags, a policy-driven `maintain`, and a `reset_to` against
//! the fault-injecting filesystem, crash at **every** mutating I/O
//! operation the script performs, and require that recovery always
//! finds the store at the image of the last acknowledged lifecycle
//! operation or the one in flight — never a torn hybrid, never missing
//! a retained checkpoint, never holding a tag whose checkpoint is gone.

use ickp_core::{CheckpointConfig, CheckpointRecord, Checkpointer, MethodTable};
use ickp_durable::{
    crash_classes, DurableConfig, DurableError, FailFs, FaultPlan, TraceLog, TraceNode, Vfs,
};
use ickp_heap::{ClassRegistry, FieldType, Heap, Value};
use ickp_lifecycle::{CheckpointManager, LifecycleConfig, RetentionPolicy};

/// Small segments so the matrix crosses segment rolls; small budget so
/// `maintain` actually folds; dedup on so rewrites exercise the chunk
/// index.
fn config() -> LifecycleConfig {
    LifecycleConfig {
        durable: DurableConfig { segment_target_bytes: 256 },
        policy: RetentionPolicy { budget: 4 },
        dedup: true,
    }
}

/// The logical content of a store: what must survive a crash exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Image {
    records: Vec<(u64, Vec<u8>)>,
    tags: Vec<(String, u64)>,
}

fn image_of<F: Vfs>(mgr: &CheckpointManager<F>) -> Image {
    Image {
        records: mgr.chain().records().iter().map(|r| (r.seq(), r.bytes().to_vec())).collect(),
        tags: mgr.tags().to_vec(),
    }
}

/// Nine checkpoints over a five-node list, plus the seq-3 record the
/// script appends after rolling back to the "alpha" tag.
fn workload() -> (ClassRegistry, Vec<CheckpointRecord>, CheckpointRecord) {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define(
            "Node",
            None,
            &[
                ("v", FieldType::Int),
                ("next", FieldType::Ref(None)),
                ("p0", FieldType::Long),
                ("p1", FieldType::Long),
            ],
        )
        .unwrap();
    let mut heap = Heap::new(reg);
    let nodes: Vec<_> = (0..5).map(|_| heap.alloc(node).unwrap()).collect();
    for w in nodes.windows(2) {
        heap.set_field(w[0], 1, Value::Ref(Some(w[1]))).unwrap();
    }
    let registry = heap.registry().clone();
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut records = Vec::new();
    for i in 0..9usize {
        heap.set_field(nodes[i % 5], 0, Value::Int(100 + i as i32)).unwrap();
        if i % 3 == 2 {
            heap.set_field(nodes[(i + 2) % 5], 0, Value::Int(i as i32)).unwrap();
        }
        records.push(ckp.checkpoint(&mut heap, &table, &[nodes[0]]).unwrap());
    }
    // What a program does after `reset_to("alpha")` (tagged at seq 2):
    // roll the checkpointer back and extend the chain from seq 3.
    ckp.rollback(3);
    heap.set_field(nodes[0], 0, Value::Int(999)).unwrap();
    let post_reset = ckp.checkpoint(&mut heap, &table, &[nodes[0]]).unwrap();
    assert_eq!(post_reset.seq(), 3);
    (registry, records, post_reset)
}

/// The script: step 0 is `create`, then fifteen lifecycle operations,
/// each with exactly one durable commit point.
const STEPS: usize = 16;

fn apply_step<F: Vfs>(
    mgr: &mut CheckpointManager<F>,
    step: usize,
    records: &[CheckpointRecord],
    post_reset: &CheckpointRecord,
) -> Result<(), DurableError> {
    match step {
        1..=3 => mgr.append(&records[step - 1]).map(drop), // seqs 0,1,2
        4 => mgr.tag("alpha").map(drop),                   // alpha -> 2
        5..=7 => mgr.append(&records[step - 2]).map(drop), // seqs 3,4,5
        8 => mgr.tag("beta").map(drop),                    // beta -> 5
        9 | 10 => mgr.append(&records[step - 3]).map(drop), // seqs 6,7
        11 => mgr.maintain().map(drop),                    // folds to budget, pins 2 and 5
        12 => mgr.append(&records[8]).map(drop),           // seq 8
        13 => mgr.reset_to("alpha").map(drop),             // back to seq 2, beta dropped
        14 => mgr.append(post_reset).map(drop),            // chain extends from seq 3
        15 => mgr.tag("final").map(drop),                  // final -> 3
        _ => unreachable!("no step {step}"),
    }
}

/// Runs the script until completion or the injected crash, reopening
/// the store between steps (so every step also proves reopen
/// continuity). Returns the image after each acknowledged step and the
/// cumulative mutating-op count at each step boundary.
fn drive(
    fs: &mut FailFs,
    registry: &ClassRegistry,
    records: &[CheckpointRecord],
    post_reset: &CheckpointRecord,
) -> (Vec<Image>, Vec<u64>) {
    let mut images = Vec::new();
    let mut bounds = Vec::new();
    {
        let mgr = match CheckpointManager::create(&mut *fs, config(), registry) {
            Ok(mgr) => mgr,
            Err(_) => return (images, bounds),
        };
        images.push(image_of(&mgr));
    }
    bounds.push(fs.ops());
    for step in 1..STEPS {
        let outcome = (|| {
            let mut mgr = CheckpointManager::open(&mut *fs, config(), registry)?;
            apply_step(&mut mgr, step, records, post_reset)?;
            Ok::<Image, DurableError>(image_of(&mgr))
        })();
        match outcome {
            Ok(image) => {
                images.push(image);
                bounds.push(fs.ops());
            }
            Err(_) => return (images, bounds),
        }
    }
    (images, bounds)
}

#[test]
fn lifecycle_script_survives_every_crash_point() {
    let (registry, records, post_reset) = workload();

    // Fault-free baseline: every step acknowledges, and the script's
    // shape is what the comments above claim.
    let mut fs = FailFs::new(FaultPlan::none());
    let (images, bounds) = drive(&mut fs, &registry, &records, &post_reset);
    assert!(!fs.crashed());
    assert_eq!(images.len(), STEPS, "baseline must acknowledge every step");
    let total_ops = fs.ops();
    assert!(total_ops >= 60, "script too small to be interesting: {total_ops} ops");
    let after_maintain = &images[11];
    assert!(after_maintain.records.len() < images[10].records.len(), "maintain must fold records");
    assert_eq!(
        images[13].records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        vec![2],
        "reset_to must cut the chain back to the tagged seq"
    );
    assert_eq!(images[13].tags, vec![("alpha".to_string(), 2)], "beta points past the reset");
    assert_eq!(images[15].tags, vec![("alpha".to_string(), 2), ("final".to_string(), 3)]);

    // The matrix: crash at every mutating I/O op, recover, compare.
    for k in 0..total_ops {
        let mut fs = FailFs::new(FaultPlan::crash_at(k));
        let _ = drive(&mut fs, &registry, &records, &post_reset);
        assert!(fs.crashed(), "op {k} must crash");
        let mut disk = fs.into_recovered();
        // Which lifecycle step was in flight when the machine died.
        let step = bounds.iter().position(|&b| b > k).expect("k < total_ops");
        match CheckpointManager::open(&mut disk, config(), &registry) {
            Ok(mgr) => {
                let image = image_of(&mgr);
                let pre = step > 0 && image == images[step - 1];
                let post = image == images[step];
                assert!(
                    pre || post,
                    "crash at op {k} (step {step}): recovered a torn store\n\
                     recovered {} records, tags {:?}",
                    image.records.len(),
                    image.tags
                );
                // Tags never dangle: every recovered tag names a
                // recovered checkpoint.
                for (label, seq) in &image.tags {
                    assert!(
                        image.records.iter().any(|(s, _)| s == seq),
                        "crash at op {k}: tag {label:?} -> {seq} has no record"
                    );
                }
                // And the recovered chain still restores.
                if !image.records.is_empty() {
                    mgr.restore_latest()
                        .unwrap_or_else(|e| panic!("crash at op {k}: restore failed: {e}"));
                }
            }
            Err(e) => {
                // Only a crash before the very first commit (inside
                // `create`) may leave no store at all.
                assert_eq!(step, 0, "crash at op {k} (step {step}): open failed: {e}");
                assert!(
                    !disk.exists("MANIFEST"),
                    "crash at op {k}: manifest exists yet open failed"
                );
            }
        }
    }
}

/// The pruned crash matrix is provably equivalent to the full one on
/// this 16-step workload: the trace's crash-equivalence classes
/// partition the op space, genuinely collapse it, and replaying *every*
/// member of every class recovers the identical store image — so
/// sweeping one representative per class (`MatrixOptions::
/// prune_equivalent`) loses nothing.
#[test]
fn pruned_matrix_is_equivalent_to_the_full_matrix_on_the_lifecycle_script() {
    let (registry, records, post_reset) = workload();

    // Traced fault-free baseline: the class structure of the script.
    let log = TraceLog::new();
    let mut baseline = FailFs::new(FaultPlan::none());
    baseline.set_trace(log.clone(), TraceNode::Local);
    let _ = drive(&mut baseline, &registry, &records, &post_reset);
    assert!(!baseline.crashed());
    let total_ops = baseline.ops();
    let trace = log.snapshot(&baseline.counter());
    let classes = crash_classes(&trace);

    let covered: u64 = classes.iter().map(|c| c.indices.len() as u64).sum();
    assert_eq!(covered, total_ops, "classes must partition the crash-point space");
    assert!(
        (classes.len() as u64) < total_ops,
        "pruning must collapse something: {} classes over {total_ops} ops",
        classes.len()
    );

    // The proof obligation behind the pruned sweep: within a class,
    // every crash point recovers to the same image (or uniformly to no
    // store at all, for the pre-first-commit class).
    for class in &classes {
        let mut representative: Option<Option<Image>> = None;
        for &k in &class.indices {
            let mut fs = FailFs::new(FaultPlan::crash_at(k));
            let _ = drive(&mut fs, &registry, &records, &post_reset);
            assert!(fs.crashed(), "op {k} must crash");
            let mut disk = fs.into_recovered();
            let image = CheckpointManager::open(&mut disk, config(), &registry)
                .ok()
                .map(|mgr| image_of(&mgr));
            match &representative {
                None => representative = Some(image),
                Some(rep) => assert_eq!(
                    rep, &image,
                    "class at op {} diverges at member {k}: the pruned matrix would \
                     have missed a distinct crash state",
                    class.representative
                ),
            }
        }
    }
}
