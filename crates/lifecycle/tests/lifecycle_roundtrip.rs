//! End-to-end lifecycle: a program checkpoints through the manager for
//! forty rounds, tags two moments it cares about, lets retention fold
//! the history, rolls back to a tag, and keeps going — with every
//! restored heap verified against the live heap it mirrors, and the
//! dedup / retention accounting checked along the way.

use ickp_core::{verify_restore, CheckpointConfig, Checkpointer, MethodTable};
use ickp_durable::{DurableConfig, MemFs};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_lifecycle::{CheckpointManager, LifecycleConfig, RetentionPolicy};

const BUDGET: usize = 5;

fn config() -> LifecycleConfig {
    LifecycleConfig {
        durable: DurableConfig { segment_target_bytes: 512 },
        policy: RetentionPolicy { budget: BUDGET },
        dedup: true,
    }
}

/// An eight-node list with enough payload per node that a recurring
/// object encoding is a clear dedup win.
fn build_world() -> (Heap, Vec<ObjectId>) {
    let mut reg = ClassRegistry::new();
    let node = reg
        .define(
            "Node",
            None,
            &[
                ("v", FieldType::Int),
                ("next", FieldType::Ref(None)),
                ("p0", FieldType::Long),
                ("p1", FieldType::Long),
                ("p2", FieldType::Long),
                ("p3", FieldType::Long),
            ],
        )
        .unwrap();
    let mut heap = Heap::new(reg);
    let nodes: Vec<_> = (0..8).map(|_| heap.alloc(node).unwrap()).collect();
    for w in nodes.windows(2) {
        heap.set_field(w[0], 1, Value::Ref(Some(w[1]))).unwrap();
    }
    (heap, nodes)
}

#[test]
fn manager_roundtrip_tags_retention_dedup_and_reset() {
    let (mut heap, nodes) = build_world();
    let roots = vec![nodes[0]];
    let registry = heap.registry().clone();
    let table = MethodTable::derive(heap.registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());

    let mut mgr = CheckpointManager::create(MemFs::new(), config(), &registry).unwrap();

    // Forty rounds; node 0 flips between two values so its encoding
    // recurs byte-identically every other round (the dedup driver),
    // while a rotating node takes a fresh value (real progress).
    let mut tagged: Vec<(String, Heap)> = Vec::new();
    for i in 0..40i32 {
        heap.set_field(nodes[0], 0, Value::Int(i % 2)).unwrap();
        heap.set_field(nodes[(i as usize % 7) + 1], 0, Value::Int(1000 + i)).unwrap();
        mgr.append(&ckp.checkpoint(&mut heap, &table, &roots).unwrap()).unwrap();
        if i == 9 {
            mgr.tag("ten").unwrap();
            tagged.push(("ten".into(), heap.clone()));
        }
        if i == 24 {
            mgr.tag("twenty-five").unwrap();
            tagged.push(("twenty-five".into(), heap.clone()));
        }
    }
    assert_eq!(mgr.stats().appends, 40);
    assert_eq!(mgr.next_seq(), 40);
    assert!(
        mgr.stats().dedup.bytes_saved() > 0,
        "recurring object encodings must dedup: {:?}",
        mgr.stats()
    );
    assert!(mgr.stats().dedup.chunks_deduped > 0);

    // Retention folds forty records down to the budget; the two pinned
    // tags survive, and the store physically shrinks.
    let report = mgr.maintain().unwrap();
    assert!(!report.noop);
    assert!(!report.over_budget, "2 pins + tip fit in budget {BUDGET}");
    assert_eq!(report.records_before, 40);
    assert!(report.records_after as usize <= BUDGET, "{report:?}");
    assert!(report.bytes_after < report.bytes_before, "{report:?}");
    let kept: Vec<u64> = mgr.chain().records().iter().map(|r| r.seq()).collect();
    assert!(kept.contains(&9) && kept.contains(&24), "pinned tags folded away: {kept:?}");
    assert_eq!(*kept.last().unwrap(), 39, "tip folded away: {kept:?}");
    assert!(mgr.stats().records_merged > 0);

    // A second maintain is a no-op: the plan is stable.
    assert!(mgr.maintain().unwrap().noop);

    // The folded chain still restores the exact live heap.
    let latest = mgr.restore_latest().unwrap();
    assert_eq!(verify_restore(&heap, &roots, &latest).unwrap(), None);

    // Read-only restore at both tags matches the heap as it was.
    for (label, snapshot) in &tagged {
        let at_tag = mgr.restore_at(label).unwrap();
        assert_eq!(
            verify_restore(snapshot, &roots, &at_tag).unwrap(),
            None,
            "restore_at({label:?}) diverged"
        );
    }

    // Roll back to "ten": the chain is cut, "twenty-five" (which points
    // past it) goes away, and the restored heap is byte-for-byte the
    // tagged moment.
    let restored = mgr.reset_to("ten").unwrap();
    assert_eq!(verify_restore(&tagged[0].1, &roots, &restored).unwrap(), None);
    assert_eq!(mgr.next_seq(), 10);
    assert_eq!(mgr.tags(), &[("ten".to_string(), 9)]);
    assert_eq!(mgr.stats().resets, 1);

    // Life goes on from the restore point: resume the checkpointer at
    // the manager's next seq and extend the chain from the restored heap.
    let restored_roots = restored.roots().to_vec();
    let mut heap2 = restored.into_heap();
    let table2 = MethodTable::derive(heap2.registry());
    ckp.rollback(mgr.next_seq());
    heap2.set_field(restored_roots[0], 0, Value::Int(4321)).unwrap();
    mgr.append(&ckp.checkpoint(&mut heap2, &table2, &restored_roots).unwrap()).unwrap();
    assert_eq!(mgr.next_seq(), 11);
    let extended = mgr.restore_latest().unwrap();
    assert_eq!(verify_restore(&heap2, &restored_roots, &extended).unwrap(), None);

    // A reopen from the raw filesystem sees the same chain, tags, and
    // restorable state.
    let before = (
        mgr.chain().records().iter().map(|r| (r.seq(), r.bytes().to_vec())).collect::<Vec<_>>(),
        mgr.tags().to_vec(),
    );
    let fs = mgr.into_fs();
    let mgr2 = CheckpointManager::open(fs, config(), &registry).unwrap();
    let after = (
        mgr2.chain().records().iter().map(|r| (r.seq(), r.bytes().to_vec())).collect::<Vec<_>>(),
        mgr2.tags().to_vec(),
    );
    assert_eq!(before, after, "reopen must reproduce the chain exactly");
    let reopened = mgr2.restore_latest().unwrap();
    assert_eq!(verify_restore(&heap2, &restored_roots, &reopened).unwrap(), None);
}
