//! Folding runs of checkpoint records into one, last-writer-wins.
//!
//! A retention merge must be invisible to everything downstream:
//! restoring the merged chain has to materialise the same heap — same
//! values *and* same allocation order, so later checkpoints stay
//! byte-identical — as restoring the original chain. Restore replays
//! records in order, updating objects it knows and allocating the ones
//! it first meets; folding a run therefore means taking, per stable id,
//! the **last** recorded state, and emitting objects in **first-touch**
//! order. The merged record carries the run's last sequence number (its
//! identity as a restore point) and the first record's kind (a run that
//! began with a full checkpoint is still complete).
//!
//! Objects are re-encoded with the ordinary [`StreamWriter`], so an
//! object whose state came through unchanged re-encodes to exactly the
//! bytes the original record held — which is what lets the durable
//! layer's content-hash dedup recognise it.

use ickp_core::{
    decode, CheckpointRecord, CoreError, RecordedObject, StreamWriter, TraversalStats,
};
use ickp_heap::ClassRegistry;

/// Folds `records` (an ascending run from one chain) into a single
/// equivalent record.
///
/// # Errors
///
/// [`CoreError`] decode failures if a record does not match `registry`.
///
/// # Panics
///
/// If `records` is empty.
pub fn merge_records(
    records: &[CheckpointRecord],
    registry: &ClassRegistry,
) -> Result<CheckpointRecord, CoreError> {
    assert!(!records.is_empty(), "cannot merge zero records");
    let first_kind = records[0].kind();
    let last = records.last().expect("non-empty");

    // First-touch order with last-writer-wins state.
    let mut order: Vec<u64> = Vec::new();
    let mut latest: std::collections::HashMap<u64, RecordedObject> =
        std::collections::HashMap::new();
    for record in records {
        let decoded = decode(record.bytes(), registry)?;
        for obj in decoded.objects {
            let raw = obj.stable.raw();
            if latest.insert(raw, obj).is_none() {
                order.push(raw);
            }
        }
    }

    let mut w = StreamWriter::new(last.seq(), first_kind, last.roots());
    for raw in order {
        let obj = &latest[&raw];
        w.begin_object(obj.stable, obj.class, obj.fields.len());
        for field in &obj.fields {
            use ickp_core::RecordedValue::*;
            match field {
                Int(v) => w.write_int(*v),
                Long(v) => w.write_long(*v),
                Double(v) => w.write_double(*v),
                Bool(v) => w.write_bool(*v),
                Ref(v) => w.write_ref(*v),
            }
        }
    }
    Ok(CheckpointRecord::from_parts(
        last.seq(),
        first_kind,
        last.roots().to_vec(),
        w.finish(),
        TraversalStats::default(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_core::{
        restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer, MethodTable,
        RestorePolicy,
    };
    use ickp_heap::{ClassRegistry, FieldType, Heap, HeapSnapshot, ObjectId, Value};

    fn chain(n: usize) -> (Heap, Vec<ObjectId>, Vec<CheckpointRecord>) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let b = heap.alloc(node).unwrap();
        let a = heap.alloc(node).unwrap();
        heap.set_field(a, 1, Value::Ref(Some(b))).unwrap();
        let table = MethodTable::derive(heap.registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut records = Vec::new();
        for i in 0..n {
            heap.set_field(if i % 2 == 0 { a } else { b }, 0, Value::Int(i as i32)).unwrap();
            records.push(ckp.checkpoint(&mut heap, &table, &[a]).unwrap());
        }
        (heap, vec![a], records)
    }

    #[test]
    fn merged_record_restores_the_same_heap() {
        let (heap, roots_live, records) = chain(6);
        let registry = heap.registry().clone();
        let merged = merge_records(&records, &registry).unwrap();
        assert_eq!(merged.seq(), records.last().unwrap().seq());
        assert_eq!(merged.kind(), records[0].kind());

        let mut store = CheckpointStore::new();
        store.push_merged(merged).unwrap();
        let rebuilt = restore(&store, &registry, RestorePolicy::Lenient).unwrap();
        assert_eq!(verify_restore(&heap, &roots_live, &rebuilt).unwrap(), None);
    }

    #[test]
    fn merging_a_prefix_matches_replaying_it() {
        let (heap, _, records) = chain(6);
        let registry = heap.registry().clone();

        // Restore the first 4 records directly...
        let mut plain = CheckpointStore::new();
        for r in &records[..4] {
            plain.push(r.clone()).unwrap();
        }
        let direct = restore(&plain, &registry, RestorePolicy::Lenient).unwrap();

        // ...and via a merge of [0..3] followed by record 3.
        let mut folded = CheckpointStore::new();
        folded.push_merged(merge_records(&records[..3], &registry).unwrap()).unwrap();
        folded.push_merged(records[3].clone()).unwrap();
        let via_merge = restore(&folded, &registry, RestorePolicy::Lenient).unwrap();

        assert_eq!(direct.len(), via_merge.len());
        // Object handles are heap-local; compare logical snapshots.
        let a = HeapSnapshot::capture(direct.heap(), direct.roots()).unwrap();
        let b = HeapSnapshot::capture(via_merge.heap(), via_merge.roots()).unwrap();
        assert_eq!(a.diff(&b), None);
    }

    #[test]
    fn unchanged_objects_reencode_byte_identically() {
        let (heap, _, records) = chain(4);
        let registry = heap.registry().clone();
        // Merge a single record: the fold is an identity and must
        // reproduce the original bytes exactly (the dedup premise).
        for r in &records {
            let merged = merge_records(std::slice::from_ref(r), &registry).unwrap();
            assert_eq!(merged.bytes(), r.bytes());
        }
    }
}
