//! The [`CheckpointManager`]: policy-driven lifecycle over a
//! [`DurableStore`].

use std::ops::Range;

use crate::merge::merge_records;
use crate::retention::RetentionPolicy;
use ickp_core::{
    object_slices, restore, CheckpointRecord, CheckpointStore, RestorePolicy, RestoredHeap,
};
use ickp_durable::{DedupStats, DurableConfig, DurableError, DurableStore, Vfs};
use ickp_heap::ClassRegistry;

/// Everything the manager needs to know: how the store writes, how much
/// it may keep, and whether to dedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifecycleConfig {
    /// Tuning for the underlying [`DurableStore`].
    pub durable: DurableConfig,
    /// The retention policy [`CheckpointManager::maintain`] applies.
    pub policy: RetentionPolicy,
    /// When `true`, appends and rewrites pass each record's object
    /// slices to the store's content-hash dedup.
    pub dedup: bool,
}

impl LifecycleConfig {
    /// Dedup on, default budget — the configuration the operations
    /// guide describes.
    pub fn recommended() -> LifecycleConfig {
        LifecycleConfig {
            durable: DurableConfig::default(),
            policy: RetentionPolicy::default_budget(),
            dedup: true,
        }
    }
}

/// Cumulative counters over one manager's lifetime (not persisted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Records appended through this manager.
    pub appends: u64,
    /// Aggregate dedup accounting across all appends (maintenance
    /// rewrites report their own [`RetentionReport::dedup`]). The
    /// aggregate nets out part-framing overhead, so
    /// [`DedupStats::bytes_saved`] on it is the honest total.
    pub dedup: DedupStats,
    /// [`CheckpointManager::maintain`] calls that actually rewrote.
    pub maintenances: u64,
    /// [`CheckpointManager::reset_to`] calls that rolled back.
    pub resets: u64,
    /// Records folded away by retention merges.
    pub records_merged: u64,
}

/// What one [`CheckpointManager::maintain`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionReport {
    /// Records in the chain before maintenance.
    pub records_before: u64,
    /// Records in the chain after maintenance.
    pub records_after: u64,
    /// Committed store bytes before maintenance.
    pub bytes_before: u64,
    /// Committed store bytes after maintenance.
    pub bytes_after: u64,
    /// `true` when pinned tags alone exceed the budget (everything else
    /// was folded, but the tag count keeps the chain over budget).
    pub over_budget: bool,
    /// Dedup accounting for the rewrite (zeroes for a no-op).
    pub dedup: DedupStats,
    /// `true` when the chain already satisfied the policy: no I/O done.
    pub noop: bool,
}

/// Policy-driven checkpoint lifecycle over a crash-safe
/// [`DurableStore`]: named restore points, binomial retention, and
/// content-hash dedup, each committed by a single atomic manifest swap.
///
/// The manager mirrors the durable content as an in-memory
/// [`CheckpointStore`] (the *chain*), so restores never re-read disk.
/// Every mutating operation — [`append`](CheckpointManager::append),
/// [`tag`](CheckpointManager::tag),
/// [`maintain`](CheckpointManager::maintain),
/// [`reset_to`](CheckpointManager::reset_to) — has exactly one commit
/// point; a crash anywhere leaves the store at the previous or the next
/// acknowledged state, never between.
#[derive(Debug)]
pub struct CheckpointManager<F: Vfs> {
    store: DurableStore<F>,
    chain: CheckpointStore,
    registry: ClassRegistry,
    config: LifecycleConfig,
    stats: LifecycleStats,
}

impl<F: Vfs> CheckpointManager<F> {
    /// Initializes a manager over a fresh store.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::create`].
    pub fn create(
        fs: F,
        config: LifecycleConfig,
        registry: &ClassRegistry,
    ) -> Result<CheckpointManager<F>, DurableError> {
        let store = DurableStore::create(fs, config.durable)?;
        Ok(CheckpointManager {
            store,
            chain: CheckpointStore::new(),
            registry: registry.clone(),
            config,
            stats: LifecycleStats::default(),
        })
    }

    /// Opens a manager over an existing store, recovering the chain and
    /// the tag set.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::open`].
    pub fn open(
        fs: F,
        config: LifecycleConfig,
        registry: &ClassRegistry,
    ) -> Result<CheckpointManager<F>, DurableError> {
        let (store, chain) = DurableStore::open(fs, config.durable, registry)?;
        Ok(CheckpointManager {
            store,
            chain,
            registry: registry.clone(),
            config,
            stats: LifecycleStats::default(),
        })
    }

    fn layout_of(&self, record: &CheckpointRecord) -> Result<Vec<Range<usize>>, DurableError> {
        if !self.config.dedup {
            return Ok(Vec::new());
        }
        Ok(object_slices(record.bytes(), &self.registry)?.objects)
    }

    /// Durably appends one checkpoint, deduplicating when configured.
    ///
    /// The chain's mirrored copy carries the dedup savings in its
    /// [`TraversalStats::bytes_deduped`](ickp_core::TraversalStats)
    /// counter.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::append_deduped`]; on error nothing (durable or
    /// in-memory) changes.
    pub fn append(&mut self, record: &CheckpointRecord) -> Result<DedupStats, DurableError> {
        let layout = self.layout_of(record)?;
        let dedup = self.store.append_deduped(record, &layout)?;
        let mut stats = record.stats();
        stats.bytes_deduped = dedup.bytes_saved();
        self.chain
            .push_merged(CheckpointRecord::from_parts(
                record.seq(),
                record.kind(),
                record.roots().to_vec(),
                record.bytes().to_vec(),
                stats,
            ))
            .map_err(DurableError::Core)?;
        self.stats.appends += 1;
        self.stats.dedup.absorb(dedup);
        Ok(dedup)
    }

    /// Durably tags the chain tip as a named restore point and returns
    /// the tagged sequence number. Tags pin their checkpoint through
    /// retention and can be rolled back to with
    /// [`CheckpointManager::reset_to`].
    ///
    /// # Errors
    ///
    /// [`DurableError::UnknownSeq`] on an empty chain, otherwise as
    /// [`DurableStore::tag`].
    pub fn tag(&mut self, label: &str) -> Result<u64, DurableError> {
        let seq = self.chain.latest().map(CheckpointRecord::seq).ok_or({
            // An empty chain has no tip; seq 0 names what the first
            // append will create.
            DurableError::UnknownSeq(0)
        })?;
        self.store.tag(label, seq)?;
        Ok(seq)
    }

    /// Durably removes a named restore point.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::remove_tag`].
    pub fn remove_tag(&mut self, label: &str) -> Result<(), DurableError> {
        self.store.remove_tag(label)
    }

    /// The named restore points, `(label, seq)` sorted by label.
    pub fn tags(&self) -> &[(String, u64)] {
        self.store.tags()
    }

    fn tag_seq(&self, label: &str) -> Result<u64, DurableError> {
        self.store
            .tags()
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, seq)| *seq)
            .ok_or_else(|| DurableError::UnknownTag(label.to_string()))
    }

    /// Rolls the store back to the named restore point: every record
    /// after the tagged checkpoint is discarded — durably, in one
    /// manifest swap — along with any tags that pointed past it, and the
    /// heap as of the tag is restored and returned.
    ///
    /// The caller owns the volatile side of the rollback: pair this with
    /// [`Checkpointer::rollback`](ickp_core::Checkpointer::rollback)
    /// using [`CheckpointManager::next_seq`] so sequence numbers resume
    /// from the restore point and no stale journal or shard plan
    /// survives.
    ///
    /// # Errors
    ///
    /// [`DurableError::UnknownTag`] for an unknown label, otherwise as
    /// [`DurableStore::rewrite`] / the restore itself.
    pub fn reset_to(&mut self, label: &str) -> Result<RestoredHeap, DurableError> {
        let seq = self.tag_seq(label)?;
        let keep: Vec<CheckpointRecord> =
            self.chain.records().iter().filter(|r| r.seq() <= seq).cloned().collect();
        if keep.len() < self.chain.len() {
            let layouts =
                keep.iter().map(|r| self.layout_of(r)).collect::<Result<Vec<_>, DurableError>>()?;
            let tags: Vec<(String, u64)> =
                self.store.tags().iter().filter(|(_, s)| *s <= seq).cloned().collect();
            self.store.rewrite(&keep, &layouts, &tags)?;
            let mut chain = CheckpointStore::new();
            for r in &keep {
                chain.push_merged(r.clone()).map_err(DurableError::Core)?;
            }
            self.chain = chain;
            self.stats.resets += 1;
        }
        restore(&self.chain, &self.registry, RestorePolicy::Lenient).map_err(DurableError::Core)
    }

    /// Applies the retention policy: folds runs of records between the
    /// policy's kept points (tags pinned, tip always kept) and rewrites
    /// the store in one atomic swap. When the chain already satisfies
    /// the policy this is a no-op with zero I/O.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::rewrite`]; on error before the swap the store
    /// and chain are unchanged.
    pub fn maintain(&mut self) -> Result<RetentionReport, DurableError> {
        let seqs: Vec<u64> = self.chain.records().iter().map(CheckpointRecord::seq).collect();
        let pinned: Vec<u64> = self.store.tags().iter().map(|(_, s)| *s).collect();
        let plan = self.config.policy.plan(&seqs, &pinned);
        let mut report = RetentionReport {
            records_before: self.chain.len() as u64,
            records_after: self.chain.len() as u64,
            bytes_before: self.store.committed_bytes(),
            bytes_after: self.store.committed_bytes(),
            over_budget: plan.over_budget,
            dedup: DedupStats::default(),
            noop: true,
        };
        if plan.is_noop() {
            return Ok(report);
        }

        let mut merged = Vec::with_capacity(plan.groups.len());
        for group in &plan.groups {
            let run = &self.chain.records()[group.clone()];
            if run.len() == 1 {
                merged.push(run[0].clone());
            } else {
                merged.push(merge_records(run, &self.registry).map_err(DurableError::Core)?);
            }
        }
        let layouts =
            merged.iter().map(|r| self.layout_of(r)).collect::<Result<Vec<_>, DurableError>>()?;
        let tags = self.store.tags().to_vec();
        report.dedup = self.store.rewrite(&merged, &layouts, &tags)?;
        let mut chain = CheckpointStore::new();
        for r in &merged {
            chain.push_merged(r.clone()).map_err(DurableError::Core)?;
        }
        self.stats.records_merged += report.records_before - merged.len() as u64;
        self.stats.maintenances += 1;
        self.chain = chain;
        report.records_after = self.chain.len() as u64;
        report.bytes_after = self.store.committed_bytes();
        report.noop = false;
        Ok(report)
    }

    /// Restores the heap as of the chain tip.
    ///
    /// # Errors
    ///
    /// [`DurableError::Core`] if the chain is empty or decoding fails.
    pub fn restore_latest(&self) -> Result<RestoredHeap, DurableError> {
        restore(&self.chain, &self.registry, RestorePolicy::Lenient).map_err(DurableError::Core)
    }

    /// Restores the heap as of a named restore point *without* touching
    /// the store — the read-only sibling of
    /// [`CheckpointManager::reset_to`].
    ///
    /// # Errors
    ///
    /// [`DurableError::UnknownTag`] for an unknown label, or
    /// [`DurableError::Core`] on decode failure.
    pub fn restore_at(&self, label: &str) -> Result<RestoredHeap, DurableError> {
        let seq = self.tag_seq(label)?;
        let mut prefix = CheckpointStore::new();
        for r in self.chain.records().iter().filter(|r| r.seq() <= seq) {
            prefix.push_merged(r.clone()).map_err(DurableError::Core)?;
        }
        restore(&prefix, &self.registry, RestorePolicy::Lenient).map_err(DurableError::Core)
    }

    /// The sequence number the next appended checkpoint must carry —
    /// feed this to [`Checkpointer::set_next_seq`](ickp_core::Checkpointer::set_next_seq)
    /// (or `rollback`) after opening or resetting.
    pub fn next_seq(&self) -> u64 {
        self.chain.latest().map_or(0, |r| r.seq() + 1)
    }

    /// The in-memory mirror of the durable chain.
    pub fn chain(&self) -> &CheckpointStore {
        &self.chain
    }

    /// The underlying durable store (committed bytes, tags, generation,
    /// chunk index size).
    pub fn store(&self) -> &DurableStore<F> {
        &self.store
    }

    /// Cumulative lifecycle counters.
    pub fn stats(&self) -> &LifecycleStats {
        &self.stats
    }

    /// Consumes the manager, returning the filesystem handle.
    pub fn into_fs(self) -> F {
        self.store.into_fs()
    }
}
