//! # ickp-lifecycle — policy-driven checkpoint lifecycle management
//!
//! The paper's incremental chains only pay off if something manages
//! them: decides which checkpoints to keep, which to fold together, and
//! which states an operator can roll back to. This crate is that layer,
//! a [`CheckpointManager`] over the crash-safe
//! [`DurableStore`](ickp_durable::DurableStore) composing three
//! features:
//!
//! * **Named restore points** — [`CheckpointManager::tag`] labels the
//!   current checkpoint; [`CheckpointManager::reset_to`] rolls the
//!   store back to it in one atomic manifest swap, with the same
//!   crash-matrix guarantee as an ordinary append.
//! * **Binomial retention** — [`RetentionPolicy`] keeps `O(log t)`
//!   restore points (tip, then checkpoints at distance `2^i`) under a
//!   configurable budget; [`CheckpointManager::maintain`] folds
//!   everything between them, last-writer-wins, without losing state.
//! * **Content-hash dedup** — object records that recur byte-identically
//!   across checkpoints are stored once (see [`ickp_durable::dedup`]);
//!   savings surface per checkpoint in
//!   [`TraversalStats::bytes_deduped`](ickp_core::TraversalStats).
//!
//! ## Example
//!
//! ```
//! use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
//! use ickp_durable::MemFs;
//! use ickp_heap::{ClassRegistry, FieldType, Heap, Value};
//! use ickp_lifecycle::{CheckpointManager, LifecycleConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = ClassRegistry::new();
//! let c = reg.define("C", None, &[("v", FieldType::Int)])?;
//! let mut heap = Heap::new(reg);
//! let o = heap.alloc(c)?;
//! let table = MethodTable::derive(heap.registry());
//! let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
//!
//! let mut fs = MemFs::new();
//! let mut mgr =
//!     CheckpointManager::create(&mut fs, LifecycleConfig::recommended(), heap.registry())?;
//! mgr.append(&ckp.checkpoint(&mut heap, &table, &[o])?)?;
//! mgr.tag("before-change")?;
//! heap.set_field(o, 0, Value::Int(42))?;
//! mgr.append(&ckp.checkpoint(&mut heap, &table, &[o])?)?;
//!
//! // Roll everything — store, tags, sequence numbers — back.
//! let restored = mgr.reset_to("before-change")?;
//! ckp.rollback(mgr.next_seq());
//! assert_eq!(restored.len(), 1);
//! # Ok(()) }
//! ```
//!
//! The operator-facing guide lives in `docs/LIFECYCLE.md`; the on-disk
//! format (manifest v2) in `docs/FORMAT.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod manager;
mod merge;
mod retention;

pub use manager::{CheckpointManager, LifecycleConfig, LifecycleStats, RetentionReport};
pub use merge::merge_records;
pub use retention::{RetentionPlan, RetentionPolicy};
