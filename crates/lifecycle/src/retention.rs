//! Binomial retention: O(log t) restore points under a space budget.
//!
//! Binomial checkpointing (arXiv 1611.03410) observes that a rollback
//! workload rarely needs *every* historical checkpoint: recent history
//! matters at fine grain, old history at coarse grain. Keeping the
//! checkpoint at distance `2^i` records from the tip for every `i`
//! preserves a restore point within a factor of two of any age while
//! holding only `⌊log₂ t⌋ + 2` of `t` checkpoints.
//!
//! [`RetentionPolicy::plan`] turns that schedule into a *merge plan*
//! over a chain of records. Nothing is ever dropped outright: records
//! between two kept points are folded (last-writer-wins) into the next
//! kept record, so the state at every kept point — and the ability to
//! extend the chain — is exactly preserved. Pinned sequence numbers
//! (the manager pins every tag) and the tip are always kept, even if
//! pins alone exceed the budget (the plan then reports
//! [`RetentionPlan::over_budget`]).

use std::collections::BTreeSet;
use std::ops::Range;

/// How many checkpoints the store may retain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Maximum number of records after maintenance. Pins (tags) are kept
    /// even beyond the budget; everything else folds to fit.
    pub budget: usize,
}

impl RetentionPolicy {
    /// A budget that comfortably holds the binomial schedule for chains
    /// up to ~65k records (`tip + distances 1..2^15 + base`).
    pub fn default_budget() -> RetentionPolicy {
        RetentionPolicy { budget: 18 }
    }

    /// Computes the merge plan for a chain whose records carry the given
    /// ascending sequence numbers. `pinned` sequence numbers (in any
    /// order) are always kept; unknown pins are ignored — the caller
    /// validates tags against the chain.
    pub fn plan(&self, seqs: &[u64], pinned: &[u64]) -> RetentionPlan {
        let n = seqs.len();
        if n == 0 {
            return RetentionPlan::default();
        }
        let budget = self.budget.max(1);
        let pin_set: BTreeSet<u64> = pinned.iter().copied().collect();
        let mut keep: BTreeSet<usize> = BTreeSet::new();
        keep.insert(n - 1); // the tip is always a restore point
        for (i, seq) in seqs.iter().enumerate() {
            if pin_set.contains(seq) {
                keep.insert(i);
            }
        }
        let required = keep.len();

        // The binomial schedule: newest record at distance 2^i from the
        // tip, plus the base. Added nearest-first, so that when the
        // budget runs out it is the coarsest (oldest) points that give
        // way and recent history stays fine-grained.
        let mut schedule: Vec<usize> = Vec::new();
        let mut d = 1usize;
        while d < n - 1 {
            schedule.push(n - 1 - d);
            d *= 2;
        }
        schedule.push(0); // the base, at distance n-1
        for pos in schedule {
            if keep.len() >= budget.max(required) {
                break;
            }
            keep.insert(pos);
        }

        let keep_seqs: Vec<u64> = keep.iter().map(|&i| seqs[i]).collect();
        let mut groups = Vec::with_capacity(keep.len());
        let mut start = 0usize;
        for &end in &keep {
            groups.push(start..end + 1);
            start = end + 1;
        }
        RetentionPlan { groups, keep_seqs, over_budget: required > budget }
    }
}

impl Default for RetentionPolicy {
    fn default() -> RetentionPolicy {
        RetentionPolicy::default_budget()
    }
}

/// The outcome of [`RetentionPolicy::plan`]: which runs of records to
/// fold together.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionPlan {
    /// Contiguous index ranges partitioning the input chain; each group
    /// merges into one record carrying the group's *last* sequence
    /// number. A group of length 1 is left untouched.
    pub groups: Vec<Range<usize>>,
    /// Sequence numbers that survive as restore points, ascending.
    pub keep_seqs: Vec<u64>,
    /// `true` when pins + tip alone exceed the budget; the plan keeps
    /// them all anyway (tags are never sacrificed to the budget).
    pub over_budget: bool,
}

impl RetentionPlan {
    /// `true` if the plan folds nothing (every group has one record).
    pub fn is_noop(&self) -> bool {
        self.groups.iter().all(|g| g.len() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn empty_and_single_chains_are_noops() {
        let policy = RetentionPolicy { budget: 4 };
        assert_eq!(policy.plan(&[], &[]), RetentionPlan::default());
        let plan = policy.plan(&[7], &[]);
        assert_eq!(plan.groups, vec![0..1]);
        assert!(plan.is_noop());
    }

    #[test]
    fn groups_partition_the_chain_and_end_on_kept_points() {
        for n in 1..200 {
            let plan = RetentionPolicy { budget: 6 }.plan(&seqs(n), &[]);
            let mut next = 0usize;
            for g in &plan.groups {
                assert_eq!(g.start, next, "groups must tile, n={n}");
                assert!(g.end > g.start);
                next = g.end;
            }
            assert_eq!(next, n, "groups must cover the chain, n={n}");
            let ends: Vec<u64> = plan.groups.iter().map(|g| (g.end - 1) as u64).collect();
            assert_eq!(ends, plan.keep_seqs, "kept seqs are the group ends, n={n}");
        }
    }

    #[test]
    fn kept_count_is_logarithmic_without_pins() {
        for n in 2..2048 {
            let plan = RetentionPolicy { budget: usize::MAX }.plan(&seqs(n), &[]);
            let bound = (n - 1).next_power_of_two().trailing_zeros() as usize + 2;
            assert!(
                plan.keep_seqs.len() <= bound,
                "n={n}: kept {} > ⌈log₂(n-1)⌉+2 = {bound}",
                plan.keep_seqs.len()
            );
            assert!(!plan.over_budget);
        }
    }

    #[test]
    fn budget_caps_the_kept_count() {
        for budget in 1..10 {
            for n in 1..300 {
                let plan = RetentionPolicy { budget }.plan(&seqs(n), &[]);
                assert!(
                    plan.keep_seqs.len() <= budget,
                    "budget={budget} n={n}: kept {}",
                    plan.keep_seqs.len()
                );
            }
        }
    }

    #[test]
    fn tip_survives_and_trimming_sheds_oldest_points_first() {
        let plan = RetentionPolicy { budget: 3 }.plan(&seqs(100), &[]);
        assert_eq!(plan.keep_seqs.last(), Some(&99));
        // Budget 3 keeps the tip and the two *closest* schedule points.
        assert_eq!(plan.keep_seqs, vec![97, 98, 99]);
    }

    #[test]
    fn pins_are_kept_even_over_budget() {
        let pins: Vec<u64> = vec![3, 10, 50];
        let plan = RetentionPolicy { budget: 2 }.plan(&seqs(100), &pins);
        for p in &pins {
            assert!(plan.keep_seqs.contains(p), "pin {p} dropped");
        }
        assert!(plan.over_budget);
        // Within budget, pins ride alongside the schedule.
        let plan = RetentionPolicy { budget: 8 }.plan(&seqs(100), &pins);
        assert!(!plan.over_budget);
        for p in &pins {
            assert!(plan.keep_seqs.contains(p));
        }
        assert!(plan.keep_seqs.len() <= 8);
    }

    #[test]
    fn plans_are_stable_under_reapplication() {
        // Applying a plan and re-planning the surviving seqs keeps the
        // pinned points: maintenance converges instead of churning.
        let policy = RetentionPolicy { budget: 5 };
        let first = policy.plan(&seqs(64), &[20]);
        let survivors = first.keep_seqs.clone();
        let second = policy.plan(&survivors, &[20]);
        assert!(second.keep_seqs.contains(&20));
        assert_eq!(second.keep_seqs.last(), Some(&63));
    }
}
