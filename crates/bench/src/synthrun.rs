//! The synthetic-benchmark runner shared by Figures 7–11 and Table 2.
//!
//! A [`SynthRunner`] owns one built [`SynthWorld`] and measures the wall
//! time of a *checkpoint* (never of the modification writes) under any
//! [`Variant`]. Each measurement round performs one modification round and
//! one checkpoint, mirroring the paper's per-round protocol; the median
//! over rounds is reported.

use crate::timing::median;
use ickp_backend::{Engine, GenericBackend, ParallelBackend, SpecializedBackend};
use ickp_core::{CheckpointConfig, Checkpointer, MethodTable, ParallelPhases, TraversalStats};
use ickp_spec::{GuardMode, Plan, SpecializedCheckpointer, Specializer};
use ickp_synth::{ModificationSpec, SynthConfig, SynthWorld};
use std::time::{Duration, Instant};

/// Which checkpointing implementation a measurement exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Generic full checkpointing (records everything).
    FullGeneric,
    /// Generic incremental checkpointing (the Figure 7 baseline). The
    /// dirty-set journal is on, as in production: steady-state rounds are
    /// served in O(modified) from the journal.
    Incremental,
    /// Generic incremental checkpointing with the journal pinned off —
    /// every round pays the full flag-testing traversal. The baseline the
    /// `dirty_fraction` bench compares the journal against.
    IncrementalNoJournal,
    /// Specialized w.r.t. structure only (Figure 8).
    SpecStructure,
    /// Specialized w.r.t. structure + the set of possibly-modified lists
    /// (Figure 9). The list count comes from the modification spec.
    SpecModifiedLists,
    /// Specialized w.r.t. structure + lists + last-element position
    /// (Figures 10/11). The list count comes from the modification spec.
    SpecLastOnly,
    /// Generic incremental under an execution engine (Fig. 11 / Table 2).
    EngineGeneric(Engine),
    /// Last-only specialized plan under an execution engine.
    EngineSpecLastOnly(Engine),
    /// Parallel sharded incremental checkpointing with this many worker
    /// threads (the `parallel_scaling` bench; fourth point in Fig. 11 /
    /// Table 2).
    Parallel(usize),
    /// [`Variant::Parallel`] with the dirty-set journal pinned off, so
    /// every round runs the shard workers instead of riding the
    /// sequential journal fast path — the variant the measured-scaling
    /// harness uses to exercise the parallel engine itself.
    ParallelNoJournal(usize),
}

/// One measurement: median checkpoint time plus the final round's stats.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median checkpoint construction time.
    pub time: Duration,
    /// Checkpoint size in bytes (final round).
    pub bytes: usize,
    /// Traversal counters (final round).
    pub stats: TraversalStats,
    /// Objects dirtied by the final modification round.
    pub modified: usize,
    /// Plan/traverse/merge wall-clock breakdown of the final round — only
    /// for the parallel variants; `None` for sequential drivers.
    pub phases: Option<ParallelPhases>,
}

/// Owns a synthetic world and measures checkpoint variants on it.
#[derive(Debug)]
pub struct SynthRunner {
    world: SynthWorld,
    table: MethodTable,
}

impl SynthRunner {
    /// Builds the world for the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics on impossible configurations (zero-length lists).
    pub fn new(structures: usize, list_len: usize, ints_per_element: usize) -> SynthRunner {
        let config = SynthConfig {
            structures,
            lists_per_structure: 5,
            list_len,
            ints_per_element,
            seed: 0xABCD
                ^ (structures as u64) << 20
                ^ (list_len as u64) << 8
                ^ ints_per_element as u64,
        };
        let world = SynthWorld::build(config).expect("synthetic world builds");
        let table = MethodTable::derive(world.heap().registry());
        SynthRunner { world, table }
    }

    /// The underlying world.
    pub fn world(&self) -> &SynthWorld {
        &self.world
    }

    fn plan_for(&self, variant: Variant, mods: &ModificationSpec) -> Option<Plan> {
        let spec = Specializer::new(self.world.heap().registry());
        let k = mods.modified_lists.min(5);
        let shape = match variant {
            Variant::SpecStructure => self.world.shape_structure_only(),
            Variant::SpecModifiedLists => self.world.shape_modified_lists(k),
            Variant::SpecLastOnly | Variant::EngineSpecLastOnly(_) => self.world.shape_last_only(k),
            _ => return None,
        };
        Some(spec.compile(&shape).expect("synthetic shapes compile"))
    }

    /// Measures `variant` under `mods` over `rounds` modification+checkpoint
    /// rounds (plus warmup), returning the median checkpoint time.
    pub fn measure(
        &mut self,
        variant: Variant,
        mods: &ModificationSpec,
        rounds: usize,
    ) -> Measurement {
        let (samples, bytes, stats, modified, phases) = self.samples(variant, mods, 2, rounds);
        Measurement { time: median(samples), bytes, stats, modified, phases }
    }

    /// Total checkpoint time of `rounds` modification+checkpoint rounds,
    /// with no warmup — the raw quantity Criterion's `iter_custom` wants.
    pub fn time_rounds(
        &mut self,
        variant: Variant,
        mods: &ModificationSpec,
        rounds: usize,
    ) -> Duration {
        let (samples, _, _, _, _) = self.samples(variant, mods, 0, rounds);
        samples.into_iter().sum()
    }

    fn samples(
        &mut self,
        variant: Variant,
        mods: &ModificationSpec,
        warmup: usize,
        rounds: usize,
    ) -> (Vec<Duration>, usize, TraversalStats, usize, Option<ParallelPhases>) {
        let plan = self.plan_for(variant, mods);
        // Start every measurement from a clean heap (as if a base
        // checkpoint had just completed).
        self.world.reset_modified();

        enum Driver {
            Full(Checkpointer),
            Incr(Checkpointer),
            Spec(SpecializedCheckpointer),
            EngineGen(GenericBackend),
            EngineSpec(SpecializedBackend),
            Par(Box<ParallelBackend>),
        }
        let mut driver = match variant {
            Variant::FullGeneric => Driver::Full(Checkpointer::new(CheckpointConfig::full())),
            Variant::Incremental => {
                Driver::Incr(Checkpointer::new(CheckpointConfig::incremental()))
            }
            Variant::IncrementalNoJournal => {
                Driver::Incr(Checkpointer::new(CheckpointConfig::incremental().without_journal()))
            }
            Variant::SpecStructure | Variant::SpecModifiedLists | Variant::SpecLastOnly => {
                Driver::Spec(SpecializedCheckpointer::new(GuardMode::Trusting))
            }
            Variant::EngineGeneric(engine) => {
                Driver::EngineGen(GenericBackend::new(engine, self.world.heap().registry()))
            }
            Variant::EngineSpecLastOnly(engine) => Driver::EngineSpec(SpecializedBackend::new(
                engine,
                plan.clone().expect("engine-spec variant has a plan"),
            )),
            Variant::Parallel(workers) => {
                Driver::Par(Box::new(ParallelBackend::new(workers, self.world.heap().registry())))
            }
            Variant::ParallelNoJournal(workers) => {
                Driver::Par(Box::new(ParallelBackend::with_config(
                    workers,
                    self.world.heap().registry(),
                    CheckpointConfig::incremental().without_journal(),
                )))
            }
        };

        let roots = self.world.roots().to_vec();
        let mut samples = Vec::with_capacity(rounds);
        let mut last_bytes = 0usize;
        let mut last_stats = TraversalStats::default();
        let mut last_modified = 0usize;
        for round in 0..warmup + rounds {
            let modified = self.world.apply_modifications(mods);
            let heap = self.world.heap_mut();
            let start = Instant::now();
            let rec = match &mut driver {
                Driver::Full(c) | Driver::Incr(c) => {
                    c.checkpoint(heap, &self.table, &roots).expect("checkpoint")
                }
                Driver::Spec(c) => c
                    .checkpoint(heap, plan.as_ref().expect("spec variant has a plan"), &roots, None)
                    .expect("checkpoint"),
                Driver::EngineGen(b) => b.checkpoint(heap, &roots).expect("checkpoint"),
                Driver::EngineSpec(b) => b.checkpoint(heap, &roots, None).expect("checkpoint"),
                Driver::Par(b) => b.checkpoint(heap, &roots).expect("checkpoint"),
            };
            let elapsed = start.elapsed();
            if round >= warmup {
                samples.push(elapsed);
                last_bytes = rec.len_bytes();
                last_stats = rec.stats();
                last_modified = modified;
            }
            // Full checkpointing does not consult flags but must not let
            // them accumulate unboundedly either; incremental/spec reset
            // recorded flags themselves. Clear leftovers outside plans'
            // view (e.g. flags outside the declared pattern).
            self.world.reset_modified();
        }
        let phases = match &driver {
            Driver::Par(b) => b.phases().copied(),
            _ => None,
        };
        (samples, last_bytes, last_stats, last_modified, phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mods(pct: u8, lists: usize, last_only: bool) -> ModificationSpec {
        ModificationSpec { pct_modified: pct, modified_lists: lists, last_only }
    }

    #[test]
    fn full_records_everything_incremental_records_the_modified() {
        let mut runner = SynthRunner::new(40, 5, 1);
        let full = runner.measure(Variant::FullGeneric, &mods(50, 5, false), 2);
        let incr = runner.measure(Variant::Incremental, &mods(50, 5, false), 2);
        assert_eq!(full.stats.objects_recorded, 40 * 26);
        assert!(incr.stats.objects_recorded < full.stats.objects_recorded);
        assert!(incr.bytes < full.bytes);
        // Steady-state rounds are served from the dirty-set journal: the
        // driver visits exactly the modified objects and prunes the rest
        // of the reachable heap without traversing it.
        assert_eq!(incr.stats.objects_recorded as usize, incr.modified);
        assert_eq!(incr.stats.journal_hits, incr.stats.objects_recorded);
        assert_eq!(incr.stats.objects_visited, incr.stats.objects_recorded);
        assert_eq!(incr.stats.subtrees_pruned, 40 * 26 - incr.stats.objects_recorded);
    }

    #[test]
    fn specialized_variants_record_exactly_what_incremental_does() {
        let m = mods(50, 3, false);
        let mut runner = SynthRunner::new(30, 5, 1);
        let incr = runner.measure(Variant::Incremental, &m, 1);
        let s1 = runner.measure(Variant::SpecStructure, &m, 1);
        let s2 = runner.measure(Variant::SpecModifiedLists, &m, 1);
        // Same seed sequence? No — rounds advance the RNG, so compare
        // against the invariant instead: recorded == modified.
        assert_eq!(incr.stats.objects_recorded as usize, incr.modified);
        assert_eq!(s1.stats.objects_recorded as usize, s1.modified);
        assert_eq!(s2.stats.objects_recorded as usize, s2.modified);
    }

    #[test]
    fn narrowed_plans_do_less_work() {
        let m = mods(100, 1, true);
        let mut runner = SynthRunner::new(30, 5, 1);
        let incr = runner.measure(Variant::Incremental, &m, 1);
        let spec = runner.measure(Variant::SpecLastOnly, &m, 1);
        assert_eq!(spec.stats.flag_tests, 30, "one test per structure");
        // The journal narrows the generic driver even harder than the
        // specialized plan: its scan touches only journaled entries and
        // follows no references at all.
        assert_eq!(incr.stats.flag_tests, incr.stats.journal_hits, "scan touches only the dirty");
        assert_eq!(incr.stats.refs_followed, 0, "no pointer chasing on the fast path");
        assert_eq!(spec.stats.objects_recorded as usize, spec.modified);
    }

    #[test]
    fn parallel_variant_records_what_incremental_records() {
        let m = mods(50, 5, false);
        let mut runner = SynthRunner::new(20, 5, 1);
        let incr = runner.measure(Variant::Incremental, &m, 1);
        assert_eq!(incr.stats.objects_recorded as usize, incr.modified);
        for workers in [1usize, 4] {
            // The RNG advances between measurements, so the two variants
            // see different modification sets; compare each against the
            // shared steady-state invariant instead: every round is served
            // from the journal and records exactly what was modified.
            let par = runner.measure(Variant::Parallel(workers), &m, 1);
            assert_eq!(par.stats.objects_recorded as usize, par.modified, "{workers} workers");
            assert_eq!(par.stats.objects_visited, par.stats.journal_hits, "{workers} workers");
            assert_eq!(
                par.stats.subtrees_pruned,
                20 * 26 - par.stats.objects_visited,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn no_journal_parallel_variant_runs_the_shard_workers() {
        let m = mods(50, 5, false);
        let mut runner = SynthRunner::new(20, 5, 1);
        let par = runner.measure(Variant::ParallelNoJournal(4), &m, 1);
        let phases = par.phases.expect("parallel variants report a phase breakdown");
        assert!(!phases.fast_path, "journal off, yet the round took the fast path");
        assert!(phases.traverse > Duration::ZERO, "shard workers never ran");
        // Steady-state shape: the plan is served from cache.
        assert!(phases.plan_cached);
        // Sequential variants have no phase breakdown to report.
        let incr = runner.measure(Variant::Incremental, &m, 1);
        assert!(incr.phases.is_none());
    }

    #[test]
    fn engine_variants_produce_valid_measurements() {
        let m = mods(100, 5, true);
        let mut runner = SynthRunner::new(10, 5, 1);
        for engine in Engine::ALL {
            let g = runner.measure(Variant::EngineGeneric(engine), &m, 1);
            let s = runner.measure(Variant::EngineSpecLastOnly(engine), &m, 1);
            assert_eq!(g.stats.objects_recorded, s.stats.objects_recorded, "{engine}");
            assert!(s.stats.virtual_calls < g.stats.virtual_calls, "{engine}");
        }
    }
}
