//! A minimal bench harness replacing Criterion, which this offline-built
//! workspace cannot depend on (see README "Install & test").
//!
//! It keeps the two Criterion idioms the benches actually used —
//! `iter_custom` (the closure is handed an iteration count and returns
//! the total measured time) and plain `iter` — plus per-group sample
//! count, warm-up and measurement budgets. Results are printed as
//! `group/name  median  (min … max)  xN iters/sample`.
//!
//! Bench binaries are invoked by `cargo bench` with harness flags
//! (`--bench`); those are ignored, and the first non-flag argument is
//! treated as a substring filter on benchmark names.

use crate::timing::{fmt_duration, median};
use std::time::{Duration, Instant};

/// A named group of benchmarks sharing sampling parameters.
///
/// # Example
///
/// ```
/// use ickp_bench::BenchGroup;
/// use std::time::{Duration, Instant};
///
/// let mut group = BenchGroup::new("example");
/// group.sample_size(3).measurement_time(Duration::from_millis(10));
/// group.bench_custom("noop", |iters| {
///     let start = Instant::now();
///     for _ in 0..iters {
///         std::hint::black_box(1 + 1);
///     }
///     start.elapsed()
/// });
/// group.finish();
/// ```
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    measurement: Duration,
    warmup: Duration,
    filter: Option<String>,
}

/// One benchmark's aggregated timing result.
#[derive(Debug, Clone, Copy)]
pub struct BenchResult {
    /// Median per-iteration time across samples.
    pub median: Duration,
    /// Fastest per-iteration sample.
    pub min: Duration,
    /// Slowest per-iteration sample.
    pub max: Duration,
    /// Iterations folded into each sample.
    pub iters_per_sample: u64,
}

impl BenchGroup {
    /// Creates a group with Criterion-like defaults (100 samples, 5 s
    /// measurement, 3 s warm-up), taking the name filter from the
    /// command line (first argument not starting with `-`).
    pub fn new(name: &str) -> BenchGroup {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        BenchGroup {
            name: name.to_string(),
            sample_size: 100,
            measurement: Duration::from_secs(5),
            warmup: Duration::from_secs(3),
            filter,
        }
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut BenchGroup {
        self.measurement = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut BenchGroup {
        self.warmup = d;
        self
    }

    /// Runs one benchmark in Criterion's `iter_custom` style: `f` receives
    /// an iteration count and returns the time those iterations took
    /// (excluding any per-round setup `f` chooses not to measure).
    /// Returns `None` when the name does not match the CLI filter.
    pub fn bench_custom<F>(&mut self, name: &str, mut f: F) -> Option<BenchResult>
    where
        F: FnMut(u64) -> Duration,
    {
        let full = format!("{}/{name}", self.name);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return None;
            }
        }

        // Warm-up, doubling as a per-iteration cost estimate.
        let mut spent = Duration::ZERO;
        let mut warm_iters = 0u64;
        while spent < self.warmup || warm_iters == 0 {
            spent += f(1).max(Duration::from_nanos(1));
            warm_iters += 1;
        }
        let est = spent / warm_iters as u32;

        // Size each sample so the whole run fits the measurement budget.
        let per_sample = self.measurement / self.sample_size as u32;
        let iters =
            (per_sample.as_nanos() / est.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            samples.push(f(iters) / iters as u32);
        }
        let result = BenchResult {
            median: median(samples.clone()),
            min: samples.iter().copied().min().unwrap_or_default(),
            max: samples.iter().copied().max().unwrap_or_default(),
            iters_per_sample: iters,
        };
        println!(
            "{full:<44} {:>12}  ({} … {})  x{iters}",
            fmt_duration(result.median),
            fmt_duration(result.min),
            fmt_duration(result.max),
        );
        Some(result)
    }

    /// Runs one benchmark in Criterion's plain `iter` style: `f` is one
    /// iteration, timed in bulk.
    pub fn bench<F, R>(&mut self, name: &str, mut f: F) -> Option<BenchResult>
    where
        F: FnMut() -> R,
    {
        self.bench_custom(name, |iters| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed()
        })
    }

    /// Ends the group (a visual separator; kept for call-site symmetry
    /// with Criterion).
    pub fn finish(&mut self) {
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(name: &str) -> BenchGroup {
        let mut g = BenchGroup {
            name: name.into(),
            sample_size: 1,
            measurement: Duration::from_micros(200),
            warmup: Duration::from_micros(50),
            filter: None,
        };
        g.sample_size(2);
        g
    }

    #[test]
    fn custom_bench_reports_per_iteration_medians() {
        let mut g = quick("t");
        let r = g
            .bench_custom("sleepless", |iters| Duration::from_micros(10) * iters as u32)
            .expect("no filter set");
        assert_eq!(r.median, Duration::from_micros(10));
        assert_eq!(r.min, r.max);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn iter_style_runs_the_closure() {
        let mut count = 0u64;
        let mut g = quick("t");
        g.bench("counting", || count += 1);
        assert!(count > 0, "closure must have been invoked");
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut g = quick("group");
        g.filter = Some("other".into());
        let mut ran = false;
        let r = g.bench_custom("name", |_| {
            ran = true;
            Duration::from_micros(1)
        });
        assert!(r.is_none());
        assert!(!ran);
    }

    #[test]
    fn sample_size_is_clamped_to_one() {
        let mut g = quick("t");
        g.sample_size(0);
        assert_eq!(g.sample_size, 1);
    }
}
