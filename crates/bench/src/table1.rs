//! Table 1 harness: checkpointing the program-analysis engine.
//!
//! Reproduces the paper's §4.3 protocol: analyze the generated
//! image-manipulation program; during the binding-time and
//! evaluation-time phases take one checkpoint per fixpoint iteration,
//! under three strategies — full, incremental, and specialized
//! incremental (the phase-specific Figure 6 plan) — and additionally
//! isolate the pure *traversal* time of the incremental and specialized
//! traversals.

use ickp_analysis::{AnalysisEngine, Division, Phase};
use ickp_core::{CheckpointConfig, Checkpointer, MethodTable, TraversalStats};
use ickp_minic::parse;
use ickp_minic::programs::{image_program_source, DEFAULT_FILTERS};
use ickp_spec::{GuardMode, SpecializedCheckpointer};
use std::time::{Duration, Instant};

/// Checkpointing strategy measured in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Full checkpointing every iteration.
    Full,
    /// Generic incremental checkpointing.
    Incremental,
    /// Phase-specialized incremental checkpointing.
    SpecializedIncremental,
}

impl Strategy {
    /// All strategies in the table's column order.
    pub const ALL: [Strategy; 3] =
        [Strategy::Full, Strategy::Incremental, Strategy::SpecializedIncremental];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Full => "full ckp.",
            Strategy::Incremental => "incremental",
            Strategy::SpecializedIncremental => "specialized incremental",
        }
    }
}

/// One strategy × phase measurement.
#[derive(Debug, Clone)]
pub struct PhaseRun {
    /// The measured strategy.
    pub strategy: Strategy,
    /// The measured phase.
    pub phase: Phase,
    /// Fixpoint iterations (= checkpoints).
    pub iterations: usize,
    /// Checkpoint sizes per iteration, bytes.
    pub sizes: Vec<usize>,
    /// Checkpoint construction times per iteration.
    pub times: Vec<Duration>,
    /// Pure traversal time over all attribute roots (post-phase, nothing
    /// modified): the cost that survives incrementality.
    pub traversal: Duration,
    /// Counters summed over all iterations.
    pub stats: TraversalStats,
}

impl PhaseRun {
    /// Smallest per-iteration checkpoint.
    pub fn min_size(&self) -> usize {
        self.sizes.iter().copied().min().unwrap_or(0)
    }

    /// Largest per-iteration checkpoint.
    pub fn max_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Total checkpoint time across iterations.
    pub fn total_time(&self) -> Duration {
        self.times.iter().sum()
    }
}

/// The complete Table 1 data.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Number of `Attributes` structures (= statements analyzed).
    pub attributes: usize,
    /// All strategy × phase runs.
    pub runs: Vec<PhaseRun>,
}

impl Table1 {
    /// Looks up one cell.
    pub fn run(&self, strategy: Strategy, phase: Phase) -> Option<&PhaseRun> {
        self.runs.iter().find(|r| r.strategy == strategy && r.phase == phase)
    }
}

fn division() -> Division {
    Division { dynamic_globals: vec!["image".into(), "work".into()] }
}

/// Runs the full Table 1 protocol on an image program with `filters`
/// convolution stages (the paper's ≈750-line program ⇒
/// [`DEFAULT_FILTERS`]).
///
/// # Panics
///
/// Panics if the generated program fails to analyze — that would be a
/// workload-generator bug, not a measurement outcome.
pub fn run_table1(filters: usize) -> Table1 {
    let source = image_program_source(filters);
    let mut runs = Vec::new();
    let mut attributes = 0;
    for strategy in Strategy::ALL {
        for phase in [Phase::BindingTime, Phase::EvalTime] {
            let program = parse(&source).expect("generated program parses");
            let mut engine = AnalysisEngine::new(program, division()).expect("engine builds");
            attributes = engine.roots().len();
            runs.push(measure_phase(&mut engine, strategy, phase));
        }
    }
    Table1 { attributes, runs }
}

/// The default-scale Table 1 (the paper's ≈750-line program).
pub fn run_table1_default() -> Table1 {
    run_table1(DEFAULT_FILTERS)
}

fn measure_phase(engine: &mut AnalysisEngine, strategy: Strategy, phase: Phase) -> PhaseRun {
    let table = MethodTable::derive(engine.heap().registry());
    let plans = engine.compile_phase_plans().expect("phase plans compile");

    // Phase prerequisites, checkpoint-free: side-effect analysis always,
    // binding-time analysis when measuring the ETA phase.
    engine.run_phase(Phase::SideEffect, |_, _, _| Ok(())).expect("SE phase");
    if phase == Phase::EvalTime {
        engine.run_phase(Phase::BindingTime, |_, _, _| Ok(())).expect("BTA phase");
    }
    // Base checkpoint (untimed): establishes the recovery line and clears
    // the allocation/prerequisite dirt so the measured increments reflect
    // only the measured phase's writes.
    //
    // Table 1 reproduces the paper's *traversal* cost model, so the
    // incremental drivers here pin the dirty-set journal off: the measured
    // counters must reflect full flag-testing traversals, not the journal
    // fast path (benchmarked separately in `benches/dirty_fraction.rs`).
    let mut base = Checkpointer::new(CheckpointConfig::incremental().without_journal());
    let roots = engine.roots().to_vec();
    base.checkpoint(engine.heap_mut(), &table, &roots).expect("base checkpoint");

    let mut sizes = Vec::new();
    let mut times = Vec::new();
    let mut stats = TraversalStats::default();

    let mut full = Checkpointer::new(CheckpointConfig::full());
    let mut incr = Checkpointer::new(CheckpointConfig::incremental().without_journal());
    let mut spec = SpecializedCheckpointer::new(GuardMode::Trusting);
    let plan = plans.plan(phase.key()).expect("phase plan registered");

    let report = engine
        .run_phase(phase, |heap, roots, _iter| {
            let roots = roots.to_vec();
            let start = Instant::now();
            let rec = match strategy {
                Strategy::Full => full.checkpoint(heap, &table, &roots)?,
                Strategy::Incremental => incr.checkpoint(heap, &table, &roots)?,
                Strategy::SpecializedIncremental => spec.checkpoint(heap, plan, &roots, None)?,
            };
            times.push(start.elapsed());
            sizes.push(rec.len_bytes());
            stats += rec.stats();
            Ok(())
        })
        .expect("measured phase");

    // Pure traversal cost, measured after convergence (nothing dirty).
    let reps = 5;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        match strategy {
            Strategy::Full | Strategy::Incremental => {
                let mut t = Checkpointer::new(CheckpointConfig::incremental().without_journal());
                t.traverse_only(engine.heap(), &table, &roots).expect("traversal");
            }
            Strategy::SpecializedIncremental => {
                let mut sc = SpecializedCheckpointer::new(GuardMode::Trusting);
                sc.checkpoint(engine.heap_mut(), plan, &roots, None).expect("traversal");
            }
        }
        samples.push(start.elapsed());
    }
    let traversal = crate::timing::median(samples);

    PhaseRun { strategy, phase, iterations: report.iterations, sizes, times, traversal, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_every_cell_and_sane_shapes() {
        // Small program (2 filters) to keep the test fast.
        let t = run_table1(2);
        assert!(t.attributes > 30);
        assert_eq!(t.runs.len(), 6);
        for strategy in Strategy::ALL {
            for phase in [Phase::BindingTime, Phase::EvalTime] {
                let run = t.run(strategy, phase).unwrap();
                assert!(run.iterations >= 1, "{strategy:?}/{phase:?}");
                assert_eq!(run.sizes.len(), run.iterations);
                assert_eq!(run.times.len(), run.iterations);
            }
        }
    }

    #[test]
    fn incremental_checkpoints_are_smaller_than_full() {
        let t = run_table1(2);
        for phase in [Phase::BindingTime, Phase::EvalTime] {
            let full = t.run(Strategy::Full, phase).unwrap();
            let incr = t.run(Strategy::Incremental, phase).unwrap();
            assert!(incr.max_size() < full.min_size(), "{phase:?}");
        }
    }

    #[test]
    fn specialized_and_incremental_record_identical_bytes_per_iteration() {
        let t = run_table1(2);
        for phase in [Phase::BindingTime, Phase::EvalTime] {
            let incr = t.run(Strategy::Incremental, phase).unwrap();
            let spec = t.run(Strategy::SpecializedIncremental, phase).unwrap();
            assert_eq!(incr.sizes, spec.sizes, "{phase:?}");
        }
    }

    #[test]
    fn specialization_slashes_the_work_counters() {
        let t = run_table1(2);
        let incr = t.run(Strategy::Incremental, Phase::BindingTime).unwrap();
        let spec = t.run(Strategy::SpecializedIncremental, Phase::BindingTime).unwrap();
        assert_eq!(spec.stats.virtual_calls, 0);
        assert!(spec.stats.flag_tests < incr.stats.flag_tests / 2);
        assert!(spec.stats.objects_visited < incr.stats.objects_visited);
    }
}
