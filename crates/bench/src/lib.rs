//! # ickp-bench — the evaluation harness
//!
//! Shared measurement machinery for regenerating every table and figure of
//! the paper's evaluation:
//!
//! * [`table1`] — the program-analysis-engine experiment (paper Table 1);
//! * [`synthrun`] — the synthetic benchmark runner behind Figures 7–11
//!   and Table 2;
//! * [`timing`] — medians, speedups, and formatting.
//!
//! * [`harness`] — a dependency-free bench runner (Criterion stand-in).
//!
//! The `repro` binary (`cargo run -p ickp-bench --release --bin repro --
//! all`) prints the paper-shaped tables; the benches under `benches/`
//! track representative cells of each experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod synthrun;
pub mod table1;
pub mod timing;

pub use harness::{BenchGroup, BenchResult};
pub use synthrun::{Measurement, SynthRunner, Variant};
pub use table1::{run_table1, run_table1_default, PhaseRun, Strategy, Table1};
