//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p ickp-bench --release --bin repro -- all
//! cargo run -p ickp-bench --release --bin repro -- fig10 --structures 5000 --rounds 3
//! ```
//!
//! Experiments: `table1`, `fig7`, `fig8`, `fig9`, `fig10`, `fig11`,
//! `table2`, or `all`. Absolute numbers are machine-dependent; the
//! *shape* (who wins, by what factor, where the crossovers are) is the
//! reproduction target. See EXPERIMENTS.md. The `audit`, `crashes`,
//! `shards`, `barriers`, `lifecycle`, `scaling`, `replicate`, and
//! `durability` subcommands are deterministic correctness gates whose
//! exit codes feed CI; they run alone, not under `all`. `shards --max-imbalance R` additionally gates on the
//! heaviest/lightest per-shard byte ratio; `scaling` measures the
//! parallel engine's phase breakdown and proves byte-identity at every
//! worker count.

use ickp_analysis::Phase;
use ickp_backend::Engine;
use ickp_bench::timing::{fmt_bytes, fmt_duration, speedup};
use ickp_bench::{run_table1, Strategy, SynthRunner, Variant};
use ickp_minic::programs::DEFAULT_FILTERS;
use ickp_synth::ModificationSpec;
use std::time::Duration;

struct Options {
    structures: usize,
    rounds: usize,
    filters: usize,
    max_imbalance: Option<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut opts =
        Options { structures: 20_000, rounds: 3, filters: DEFAULT_FILTERS, max_imbalance: None };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--structures" => {
                opts.structures = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--structures needs a number"))
            }
            "--rounds" => {
                opts.rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--rounds needs a number"))
            }
            "--filters" => {
                opts.filters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--filters needs a number"))
            }
            "--max-imbalance" => {
                opts.max_imbalance = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|r: &f64| *r >= 1.0)
                        .unwrap_or_else(|| usage("--max-imbalance needs a ratio >= 1.0")),
                )
            }
            "table1" | "fig7" | "fig8" | "fig9" | "fig10" | "fig11" | "table2" | "recovery"
            | "journal" | "audit" | "crashes" | "shards" | "barriers" | "lifecycle" | "scaling"
            | "replicate" | "durability" | "all" => experiment = arg.clone(),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    // The auditor is a static gate, not a benchmark: it runs alone (not
    // under `all`) and its exit code feeds CI.
    if experiment == "audit" {
        std::process::exit(audit());
    }

    // Likewise the crash matrix: a deterministic correctness gate (every
    // I/O operation of two workloads crashed and recovered), not a
    // benchmark. Runs alone; its exit code feeds CI.
    if experiment == "crashes" {
        std::process::exit(crashes());
    }

    // And the shard-interference audit: proves every in-repo shard plan
    // disjoint, complete, and deterministic, then cross-validates the
    // static footprints against the traced engine. Exit code feeds CI.
    if experiment == "shards" {
        std::process::exit(shards(opts.max_imbalance));
    }

    // The barrier-coverage gate: statically proves the dirty-set journal
    // sound over the heap's mutator catalog, pins every injected breakage
    // to its AUD30x code, and cross-validates with randomized mutation
    // sequences (plus shadow-digest checkpoints under the
    // `barrier-sanitize` feature). Exit code feeds CI.
    if experiment == "barriers" {
        std::process::exit(barriers(&opts));
    }

    // The measured-scaling harness: byte-identity of the parallel engine
    // at every worker count plus its wall-clock phase breakdown, at paper
    // scale. Exit code feeds CI; the printed table is the CI artifact.
    if experiment == "scaling" {
        std::process::exit(scaling(&opts));
    }

    // The lifecycle gate: tags, binomial retention, and content-hash
    // dedup over the checkpoint manager, with every restored heap
    // verified. Deterministic apart from latencies; exit code feeds CI.
    if experiment == "lifecycle" {
        std::process::exit(lifecycle(&opts));
    }

    // The replication gate: the two-node failover crash matrix (kill
    // either node at every interleaved I/O or wire operation, mask every
    // transport fault, survive every partition) plus the group-commit
    // fsync amortization check. Deterministic; exit code feeds CI.
    if experiment == "replicate" {
        std::process::exit(replicate());
    }

    // The durability-ordering gate: the static crash-consistency prover
    // (`audit_durability`) over traced store, lifecycle, and replicated
    // workloads, six injected violations pinned to their exact AUD4xx
    // codes, and the crash-class verdicts cross-validated against the
    // MemFs crash oracle. Deterministic; exit code feeds CI.
    if experiment == "durability" {
        std::process::exit(durability());
    }

    println!("# ickp reproduction — {experiment}");
    println!("# structures={} rounds={} filters={}\n", opts.structures, opts.rounds, opts.filters);
    let run = |name: &str| experiment == name || experiment == "all";
    if run("table1") {
        table1(&opts);
    }
    if run("fig7") {
        fig7(&opts);
    }
    if run("fig8") {
        fig8(&opts);
    }
    if run("fig9") {
        fig9(&opts);
    }
    if run("fig10") {
        fig10(&opts);
    }
    if run("fig11") {
        fig11(&opts);
    }
    if run("table2") {
        table2(&opts);
    }
    if run("recovery") {
        recovery(&opts);
    }
    if run("journal") {
        journal(&opts);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro [table1|fig7|fig8|fig9|fig10|fig11|table2|recovery|journal|audit|crashes|shards|barriers|lifecycle|scaling|replicate|durability|all] \
         [--structures N] [--rounds R] [--filters F] [--max-imbalance RATIO]"
    );
    std::process::exit(2);
}

// ------------------------------------------------------------------ audit

/// Statically audits every specialization declaration the repo ships:
/// the analysis engine's phase plans (for a small program and the paper's
/// image workload) and the synthetic benchmark's shape family, each
/// compiled plain and register-compacted. Prints one report per subject
/// and returns the process exit code (1 if any error-severity finding).
fn audit() -> i32 {
    use ickp_analysis::{AnalysisEngine, Division};
    use ickp_audit::{audit_phase_patterns, engine_footprints, verify_plan, AuditReport};
    use ickp_spec::Specializer;
    use ickp_synth::{SynthConfig, SynthWorld};

    println!("# ickp audit — static soundness of in-repo declarations\n");
    let mut errors = 0usize;
    let mut report_on = |subject: &str, report: &AuditReport| {
        let verdict =
            if report.is_clean() { "clean".to_string() } else { format!("\n{}", report.render()) };
        println!("{subject}: {verdict}");
        if report.has_errors() {
            errors += 1;
        }
    };

    // 1. The analysis engine's own phase declarations, over both a small
    //    three-phase program and the paper's image workload.
    let division = |dynamic: &[&str]| Division {
        dynamic_globals: dynamic.iter().map(|s| s.to_string()).collect(),
    };
    let workloads = [
        (
            "sample",
            ickp_minic::parse("int d; int s; void main() { s = d + 1; }").expect("parses"),
            division(&["d"]),
        ),
        ("image", ickp_minic::programs::image_program(), division(&["image", "work"])),
    ];
    for (name, program, div) in workloads {
        let engine = AnalysisEngine::new(program, div.clone()).expect("engine builds");
        let plans = engine.compile_phase_plans().expect("plans compile");
        let mut phases: Vec<&str> = plans.phases().collect();
        phases.sort_unstable();
        for phase in phases {
            let plan = plans.plan(phase).expect("listed");
            let shape = plans.shape(phase).expect("engine registers shapes");
            report_on(
                &format!("engine[{name}] plan `{phase}`"),
                &verify_plan(plan, shape, engine.heap().registry()),
            );
        }
        let footprints = engine_footprints(engine.program(), &div).expect("inference runs");
        report_on(
            &format!("engine[{name}] phase patterns"),
            &audit_phase_patterns(&plans, &footprints, engine.heap().registry()),
        );
    }

    // 2. The synthetic benchmark's declared shape family.
    let world = SynthWorld::build(SynthConfig::small()).expect("world builds");
    let spec = Specializer::new(world.heap().registry());
    let shapes = [
        ("structure-only", world.shape_structure_only()),
        ("modified-lists k=3", world.shape_modified_lists(3)),
        ("last-only k=3", world.shape_last_only(3)),
    ];
    for (name, shape) in shapes {
        let plan = spec.compile(&shape).expect("compiles");
        report_on(&format!("synth `{name}`"), &verify_plan(&plan, &shape, world.heap().registry()));
        let optimized = spec.compile_optimized(&shape).expect("compiles");
        report_on(
            &format!("synth `{name}` (compacted)"),
            &verify_plan(&optimized, &shape, world.heap().registry()),
        );
    }

    if errors == 0 {
        println!("\naudit passed: no error-severity findings");
        0
    } else {
        println!("\naudit FAILED: {errors} subject(s) with error-severity findings");
        1
    }
}

// --------------------------------------------------------------- crashes

/// Enumerates every crash point of two real workloads against the
/// durable store (see `ickp_durable::enumerate_crash_points`): for each
/// mutating I/O operation, crash there, recover, and require exactly the
/// acknowledged checkpoints back — byte-identical and restorable to the
/// matching program state. Deterministic (no timing dependence); returns
/// the process exit code.
fn crashes() -> i32 {
    use ickp_analysis::{AnalysisEngine, Division};
    use ickp_backend::{GenericBackend, ParallelBackend};
    use ickp_core::{verify_restore, CheckpointRecord};
    use ickp_durable::{enumerate_crash_points, CrashMatrixReport, DurableConfig};
    use ickp_heap::{ClassRegistry, Heap, ObjectId};
    use ickp_synth::{SynthConfig, SynthWorld};

    type Workload = (ClassRegistry, Vec<(Heap, Vec<ObjectId>)>, Vec<CheckpointRecord>);

    println!("# ickp crashes — crash-point enumeration over the durable store\n");

    let synthetic: Workload = {
        let mut world = SynthWorld::build(SynthConfig {
            structures: 10,
            lists_per_structure: 3,
            list_len: 4,
            ints_per_element: 1,
            seed: 23,
        })
        .expect("world builds");
        let registry = world.heap().registry().clone();
        let roots = world.roots().to_vec();
        let mut backend = ParallelBackend::new(2, &registry);
        let mut states = Vec::new();
        let mut records = Vec::new();
        world.heap_mut().mark_all_modified();
        for round in 0..5 {
            if round > 0 {
                world.apply_modifications(&mods(40, 3, false));
            }
            records.push(backend.checkpoint(world.heap_mut(), &roots).expect("checkpoint"));
            states.push((world.heap().clone(), roots.clone()));
        }
        (registry, states, records)
    };

    let analysis: Workload = {
        let program =
            ickp_minic::parse("int d; int s; void main() { s = d + 1; }").expect("parses");
        let division = Division { dynamic_globals: vec!["d".to_string()] };
        let mut engine = AnalysisEngine::new(program, division).expect("engine builds");
        let registry = engine.heap().registry().clone();
        let mut backend = GenericBackend::new(Engine::Jdk12, &registry);
        let mut states = Vec::new();
        let mut records = Vec::new();
        for phase in [Phase::SideEffect, Phase::BindingTime, Phase::EvalTime] {
            engine
                .run_phase(phase, |heap, attrs, _| {
                    records.push(backend.checkpoint(heap, attrs)?);
                    states.push((heap.clone(), attrs.to_vec()));
                    Ok(())
                })
                .expect("phase runs");
        }
        (registry, states, records)
    };

    let mut failures = 0usize;
    for (name, (registry, states, records)) in
        [("synthetic", synthetic), ("analysis-engine", analysis)]
    {
        // Small segment target so the matrix also crosses segment rolls.
        let config = DurableConfig { segment_target_bytes: 512 };
        let outcome = enumerate_crash_points(&registry, &records, config, |acked, restored| {
            let (heap, roots) = &states[acked - 1];
            verify_restore(heap, roots, restored).expect("verify_restore runs")
        });
        match outcome {
            Ok(CrashMatrixReport { total_ops, records, .. }) => {
                println!(
                    "{name}: {records} checkpoints, {total_ops} I/O ops — every crash point \
                     recovered exactly the acknowledged prefix"
                );
            }
            Err(e) => {
                println!("{name}: FAILED — {e}");
                failures += 1;
            }
        }
    }

    if failures == 0 {
        println!("\ncrash matrix passed");
        0
    } else {
        println!("\ncrash matrix FAILED: {failures} workload(s)");
        1
    }
}

// ------------------------------------------------------------- replicate

/// The replication gate. Three deterministic checks, one exit code:
///
/// 1. **Failover matrix** — `enumerate_failover_points` over a
///    parallel-backend workload: kill the primary, the follower, or the
///    wire at every interleaved operation, inject loss / duplication /
///    reordering / partition at every frame, and require the survivor's
///    disk to hold a byte-identical, restorable, promotable prefix of
///    the acknowledged records every single time.
/// 2. **Byte identity** — a fault-free two-node run must leave both
///    stores byte-identical after recovery.
/// 3. **Fsync amortization** — group commit must push fsyncs/record
///    below 1.0 from batch size 4 up (3 fsyncs acknowledge a whole
///    single-segment batch), measured exactly via `IoStats`.
fn replicate() -> i32 {
    use ickp_backend::ParallelBackend;
    use ickp_core::{verify_restore, CheckpointRecord};
    use ickp_durable::{DurableConfig, DurableStore, MemFs};
    use ickp_replicate::{
        enumerate_failover_points, ChannelTransport, ReplicaPair, ReplicateConfig, TransportPlan,
    };
    use ickp_synth::{SynthConfig, SynthWorld};

    println!("# ickp replicate — two-node failover matrix and group-commit gate\n");
    let mut failures = 0usize;

    // A workload small enough that the O(ops²) matrix stays fast but
    // wide enough to cross batch boundaries and segment rolls.
    let mut world = SynthWorld::build(SynthConfig {
        structures: 6,
        lists_per_structure: 2,
        list_len: 3,
        ints_per_element: 1,
        seed: 29,
    })
    .expect("world builds");
    let registry = world.heap().registry().clone();
    let roots = world.roots().to_vec();
    let mut backend = ParallelBackend::new(2, &registry);
    let mut states = Vec::new();
    let mut records = Vec::new();
    world.heap_mut().mark_all_modified();
    for round in 0..5 {
        if round > 0 {
            world.apply_modifications(&ModificationSpec::uniform(35));
        }
        records.push(backend.checkpoint(world.heap_mut(), &roots).expect("checkpoint"));
        states.push((world.heap().clone(), roots.clone()));
    }

    let config = ReplicateConfig {
        durable: DurableConfig { segment_target_bytes: 512 },
        batch_records: 2,
        max_retries: 3,
        dedup: true,
    };
    match enumerate_failover_points(&registry, &records, config, |acked, restored| {
        let (heap, roots) = &states[acked - 1];
        verify_restore(heap, roots, restored).expect("verify_restore runs")
    }) {
        Ok(report) => {
            println!(
                "failover matrix: {} checkpoints, {} interleaved ops ({} on the wire)",
                report.records, report.total_ops, report.transport_ops
            );
            println!(
                "  {} kill points survived ({} with the survivor ahead of the ack), \
                 {} masked faults, {} partitions",
                report.kill_points,
                report.promoted_extra,
                report.masked_faults,
                report.partition_points
            );
        }
        Err(e) => {
            println!("failover matrix: FAILED — {e}");
            failures += 1;
        }
    }

    // Byte identity over a perfect link.
    let mut pfs = MemFs::new();
    let mut ffs = MemFs::new();
    let mut link = ChannelTransport::new(TransportPlan::none());
    {
        let mut pair = ReplicaPair::create(&mut pfs, &mut ffs, &mut link, config, &registry)
            .expect("pair creates");
        for r in &records {
            pair.append(r.clone()).expect("append");
        }
        pair.commit().expect("commit");
        if pair.acked_records() != records.len() as u64 {
            println!("byte identity: FAILED — not every record was acknowledged");
            failures += 1;
        }
    }
    let recovered = |fs: &mut MemFs| {
        let (_, store) = DurableStore::open(fs, config.durable, &registry).expect("reopen");
        store
    };
    let (p, f) = (recovered(&mut pfs), recovered(&mut ffs));
    let identical = p.len() == records.len()
        && f.len() == records.len()
        && p.records().iter().zip(f.records()).all(|(a, b)| a.bytes() == b.bytes());
    if identical {
        println!("byte identity: primary ≡ follower across {} records", records.len());
    } else {
        println!("byte identity: FAILED — stores diverge after a fault-free run");
        failures += 1;
    }

    // Fsync amortization, measured exactly.
    println!("\n{:>6} {:>8} {:>14}  verdict", "batch", "fsyncs", "fsyncs/record");
    for batch in [1usize, 2, 4, 8, 16] {
        let stream: Vec<CheckpointRecord> = records
            .iter()
            .cloned()
            .cycle()
            .take(16)
            .enumerate()
            .map(|(i, r)| {
                let (_, kind, roots, bytes, stats) = r.into_parts();
                CheckpointRecord::from_parts(i as u64, kind, roots, bytes, stats)
            })
            .collect();
        let mut fs = MemFs::new();
        let mut store =
            DurableStore::create(&mut fs, DurableConfig { segment_target_bytes: 4 << 20 })
                .expect("create");
        let before = store.io_stats();
        for chunk in stream.chunks(batch) {
            store.append_batch(chunk).expect("append");
        }
        let ratio = (store.io_stats().fsyncs() - before.fsyncs()) as f64 / stream.len() as f64;
        let ok = batch < 4 || ratio < 1.0;
        println!(
            "{batch:>6} {:>8} {ratio:>14.3}  {}",
            store.io_stats().fsyncs() - before.fsyncs(),
            if ok { "ok" } else { "FAILED (>= 1 fsync/record at batch >= 4)" }
        );
        if !ok {
            failures += 1;
        }
    }

    if failures == 0 {
        println!("\nreplication gate passed");
        0
    } else {
        println!("\nreplication gate FAILED: {failures} check(s)");
        1
    }
}

// ---------------------------------------------------------------- shards

/// Audits the first-touch shard decomposition of every in-repo heap at
/// 1/2/4/8 shards (`ickp_audit::audit_shards`: disjointness, coverage,
/// deterministic ownership, imbalance), then cross-validates the static
/// footprints against the traced parallel engine
/// (`ickp_audit::cross_validate_shards`). Plans are the engine's own
/// (byte-weighted default). Deterministic; returns the process exit code
/// (1 if any AUD20x error or dynamic inconsistency — or, when
/// `max_imbalance` is given, any finite heaviest/lightest per-shard byte
/// ratio above it; the infinite ratio of an empty shard means more
/// workers than roots, which no balancing can fix, and is not gated).
fn shards(max_imbalance: Option<f64>) -> i32 {
    use ickp_analysis::{AnalysisEngine, Division};
    use ickp_audit::{audit_shards, cross_validate_shards};
    use ickp_core::{plan_shards, ShardBalance};
    use ickp_heap::{Heap, ObjectId};
    use ickp_synth::{SynthConfig, SynthWorld};

    println!("# ickp shards — shard-interference audit + dynamic cross-validation\n");
    if let Some(max) = max_imbalance {
        println!("# gating on per-shard byte imbalance <= {max:.2}\n");
    }

    // Subjects: the synthetic benchmark world and the analysis engine's
    // attribute heap as its binding-time phase sees it.
    let mut subjects: Vec<(String, Heap, Vec<ObjectId>)> = Vec::new();
    {
        let world = SynthWorld::build(SynthConfig::small()).expect("world builds");
        subjects.push(("synth[small]".into(), world.heap().clone(), world.roots().to_vec()));
    }
    {
        let program =
            ickp_minic::parse("int d; int s; void main() { s = d + 1; }").expect("parses");
        let division = Division { dynamic_globals: vec!["d".to_string()] };
        let mut engine = AnalysisEngine::new(program, division).expect("engine builds");
        let mut captured = None;
        engine
            .run_phase(Phase::BindingTime, |heap, attrs, _| {
                captured = Some((heap.clone(), attrs.to_vec()));
                Ok(())
            })
            .expect("phase runs");
        let (heap, attrs) = captured.expect("the phase iterates at least once");
        subjects.push(("engine[sample]".into(), heap, attrs));
    }

    let mut failures = 0usize;
    for (name, heap, roots) in &subjects {
        for workers in [1usize, 2, 4, 8] {
            let plan = match plan_shards(heap, roots, workers, ShardBalance::default()) {
                Ok(plan) => plan,
                Err(e) => {
                    println!("{name} @ {workers} shard(s): planning FAILED — {e}");
                    failures += 1;
                    continue;
                }
            };
            let audit = match audit_shards(heap, roots, &plan) {
                Ok(audit) => audit,
                Err(e) => {
                    println!("{name} @ {workers} shard(s): audit FAILED — {e}");
                    failures += 1;
                    continue;
                }
            };
            let objects: Vec<usize> = audit.footprints.iter().map(|f| f.objects.len()).collect();
            let ratio = audit.byte_imbalance();
            let balance_verdict = match max_imbalance {
                Some(max) if ratio.is_finite() && ratio > max => {
                    failures += 1;
                    format!("byte imbalance {ratio:.2} EXCEEDS {max:.2}")
                }
                _ if ratio.is_finite() => format!("byte imbalance {ratio:.2}"),
                _ => "byte imbalance inf (empty shard: more workers than roots)".to_string(),
            };
            let static_verdict = if audit.report.is_clean() {
                "clean".to_string()
            } else if audit.report.has_errors() {
                failures += 1;
                format!("INTERFERENCE\n{}", audit.report.render())
            } else {
                // Perf lints (AUD205) report, but do not gate.
                format!("lint\n{}", audit.report.render())
            };
            let dynamic_verdict = match cross_validate_shards(heap, roots, workers) {
                Ok(oracle) if oracle.is_consistent() => "observation ⊆ analysis".to_string(),
                Ok(oracle) => {
                    failures += 1;
                    format!(
                        "INCONSISTENT ({} escape(s), {} overlap(s))",
                        oracle.escapes.len(),
                        oracle.overlaps.len()
                    )
                }
                Err(e) => {
                    failures += 1;
                    format!("FAILED — {e}")
                }
            };
            println!(
                "{name} @ {workers} shard(s): static {static_verdict}; per-shard objects \
                 {objects:?}; {balance_verdict}; dynamic {dynamic_verdict}"
            );
        }
        println!();
    }

    if failures == 0 {
        println!("shard audit passed: every plan disjoint, complete, and deterministic");
        0
    } else {
        println!("shard audit FAILED: {failures} subject(s)");
        1
    }
}

// -------------------------------------------------------------- barriers

/// Statically proves the dirty-set journal sound: audits the heap's full
/// mutator catalog against the journal/epoch/version protocol
/// (`AUD301`–`AUD306`) on the synthetic paper world and the analysis
/// engine's attribute heap, pins each injected barrier breakage (missed
/// barrier, missed version bump, premature epoch clear, uncataloged
/// mutator) to its exact diagnostic code, and backs the static verdict
/// with 50+ randomized mutation sequences through the dynamic oracle.
/// Under the `barrier-sanitize` feature it additionally shadow-verifies
/// real checkpoint rounds against the full-traversal state digest and
/// demonstrates detection of an unbarriered write. Deterministic; returns
/// the process exit code (1 on any error or inconsistency).
fn barriers(opts: &Options) -> i32 {
    use ickp_analysis::{AnalysisEngine, Division};
    use ickp_audit::{
        audit_barriers, audit_barriers_with, cross_validate_barriers, DiagCode, MutatorSpec,
        Severity,
    };
    use ickp_heap::{
        DeclaredEffect, DirtyScope, Heap, HeapError, MutationCatalog, MutationProbe, ObjectId,
        Value,
    };
    use ickp_synth::{SynthConfig, SynthWorld};

    println!("# ickp barriers — write-barrier coverage audit + differential sanitizer\n");
    #[cfg(feature = "barrier-sanitize")]
    println!("# barrier-sanitize: on — every checkpoint round shadow-verified\n");
    #[cfg(not(feature = "barrier-sanitize"))]
    println!("# barrier-sanitize: off — shadow-digest section skipped\n");

    let mut failures = 0usize;
    let catalog = MutationCatalog::of_heap();
    let specs: Vec<&dyn MutatorSpec> =
        catalog.entries().iter().map(|e| e as &dyn MutatorSpec).collect();

    // ---- Static pass over real heaps -----------------------------------
    // The paper-scale world (probes clone the heap, so this is also a
    // scale test of the auditor itself) and the analysis engine's heap.
    let mut subjects: Vec<(String, Heap, Vec<ObjectId>)> = Vec::new();
    {
        let config = SynthConfig {
            structures: opts.structures,
            lists_per_structure: 5,
            list_len: 5,
            ints_per_element: 10,
            seed: 0x5ca1e,
        };
        let world = SynthWorld::build(config).expect("world builds");
        subjects.push((
            format!("synth[{}]", opts.structures),
            world.heap().clone(),
            world.roots().to_vec(),
        ));
    }
    {
        let program =
            ickp_minic::parse("int d; int s; void main() { s = d + 1; }").expect("parses");
        let division = Division { dynamic_globals: vec!["d".to_string()] };
        let mut engine = AnalysisEngine::new(program, division).expect("engine builds");
        let mut captured = None;
        engine
            .run_phase(Phase::BindingTime, |heap, attrs, _| {
                captured = Some((heap.clone(), attrs.to_vec()));
                Ok(())
            })
            .expect("phase runs");
        let (heap, attrs) = captured.expect("the phase iterates at least once");
        subjects.push(("engine[sample]".into(), heap, attrs));
    }
    for (name, heap, roots) in &subjects {
        match audit_barriers(heap, roots, &catalog) {
            Ok(audit) if !audit.report.has_errors() => {
                println!(
                    "{name}: catalog sound — {} mutator(s) probed, {} over-journaling lint(s)",
                    audit.probes.len(),
                    audit.report.count(Severity::PerfLint),
                );
                for d in audit.report.diagnostics() {
                    println!("  {d}");
                }
            }
            Ok(audit) => {
                failures += 1;
                println!("{name}: catalog UNSOUND\n{}", audit.report.render());
            }
            Err(e) => {
                failures += 1;
                println!("{name}: audit FAILED — {e}");
            }
        }
    }
    println!();

    // ---- Injection pins ------------------------------------------------
    // Each documented failure mode, expressed as a broken spec the sound
    // heap API cannot, must land on exactly its own diagnostic code.
    struct Injected {
        name: &'static str,
        effect: DeclaredEffect,
        apply: fn(&mut Heap, &MutationProbe<'_>) -> Result<(), HeapError>,
    }
    impl MutatorSpec for Injected {
        fn name(&self) -> &str {
            self.name
        }
        fn effect(&self) -> DeclaredEffect {
            self.effect
        }
        fn apply(&self, heap: &mut Heap, probe: &MutationProbe<'_>) -> Result<(), HeapError> {
            (self.apply)(heap, probe)
        }
    }
    let rogue_store = Injected {
        name: "rogue_store",
        effect: DeclaredEffect {
            dirties: DirtyScope::Target,
            bytes_may_change: true,
            journals_dirty: true,
            ..DeclaredEffect::default()
        },
        apply: |heap, probe| {
            // First non-seed target with a scalar slot, so no structure
            // bump muddies the verdict.
            for &target in probe.targets.iter().filter(|&&t| Some(t) != probe.seed) {
                let class = heap.class_of(target)?;
                let slot = heap
                    .class(class)?
                    .layout()
                    .iter()
                    .position(|f| matches!(f.ty(), ickp_heap::FieldType::Int));
                if let Some(slot) = slot {
                    return heap.set_field_unbarriered(
                        target,
                        slot,
                        Value::Int(probe.salt as i32 | 1),
                    );
                }
            }
            Ok(())
        },
    };
    let silent_rewire = Injected {
        name: "silent_rewire",
        effect: DeclaredEffect {
            dirties: DirtyScope::Target,
            bytes_may_change: true,
            structure_may_change: true,
            journals_dirty: true,
            bumps_structure_version: false,
            ..DeclaredEffect::default()
        },
        apply: |_, _| Ok(()),
    };
    let eager_reset = Injected {
        name: "eager_reset",
        effect: DeclaredEffect::default(),
        apply: |heap, probe| {
            if let Some(seed) = probe.seed {
                heap.reset_modified(seed)?;
            }
            heap.finish_journal_epoch();
            Ok(())
        },
    };
    let (inj_name, inj_heap, inj_roots) = &subjects[1]; // the engine heap
    let _ = inj_name;
    let injections: [(&Injected, DiagCode); 3] = [
        (&rogue_store, DiagCode::BarrierUnjournaledWrite),
        (&silent_rewire, DiagCode::BarrierMissedVersionBump),
        (&eager_reset, DiagCode::BarrierEpochTamper),
    ];
    for (broken, expected) in injections {
        let mut armed = specs.clone();
        armed.push(broken);
        match audit_barriers_with(inj_heap, inj_roots, &armed) {
            Ok(audit) => {
                let codes: Vec<DiagCode> = audit
                    .report
                    .diagnostics()
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .map(|d| d.code)
                    .collect();
                if codes == [expected] {
                    println!("injection `{}`: pinned to {}", broken.name, expected.code());
                } else {
                    failures += 1;
                    println!(
                        "injection `{}`: expected exactly [{}], got {:?}\n{}",
                        broken.name,
                        expected.code(),
                        codes,
                        audit.report.render()
                    );
                }
            }
            Err(e) => {
                failures += 1;
                println!("injection `{}`: audit FAILED — {e}", broken.name);
            }
        }
    }
    match audit_barriers(inj_heap, inj_roots, &catalog.without("set_modified")) {
        Ok(audit) => {
            let codes: Vec<DiagCode> = audit
                .report
                .diagnostics()
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .map(|d| d.code)
                .collect();
            if codes == [DiagCode::BarrierUncataloged] {
                println!("injection `uncataloged`: pinned to AUD306");
            } else {
                failures += 1;
                println!("injection `uncataloged`: expected exactly [AUD306], got {codes:?}");
            }
        }
        Err(e) => {
            failures += 1;
            println!("injection `uncataloged`: audit FAILED — {e}");
        }
    }
    println!();

    // ---- Dynamic cross-validation --------------------------------------
    // 50+ randomized workloads per run: every seed must report the real
    // catalog consistent with the ground-truth state diff.
    let small = SynthWorld::build(SynthConfig::small()).expect("world builds");
    let dyn_subjects: [(&str, &Heap, &[ObjectId]); 2] =
        [("synth[small]", small.heap(), small.roots()), ("engine[sample]", inj_heap, inj_roots)];
    for (name, heap, roots) in dyn_subjects {
        let mut consistent = 0usize;
        let seeds = 28u64;
        for seed in 0..seeds {
            match cross_validate_barriers(heap, roots, &specs, 40, seed) {
                Ok(report) if report.is_consistent() => consistent += 1,
                Ok(report) => {
                    failures += 1;
                    println!("{name} seed {seed}: {}", report.render());
                    for v in &report.violations {
                        println!("  {v}");
                    }
                }
                Err(e) => {
                    failures += 1;
                    println!("{name} seed {seed}: oracle FAILED — {e}");
                }
            }
        }
        println!("{name}: {consistent}/{seeds} randomized workloads consistent");
    }
    println!();

    // ---- Shadow-digest verification (barrier-sanitize) -----------------
    #[cfg(feature = "barrier-sanitize")]
    {
        use ickp_backend::{Engine, GenericBackend, ParallelBackend};

        // Real checkpoint rounds, both backends, every round verified.
        let spec = mods(20, 2, false);
        let mut world = SynthWorld::build(SynthConfig::small()).expect("world builds");
        let roots = world.roots().to_vec();
        let mut generic = GenericBackend::new(Engine::Harissa, world.heap().registry());
        // The shadow folds records, so it needs a full base to build on —
        // the same recovery-line discipline `RestorePolicy::RequireFullBase`
        // enforces for restores.
        world.heap_mut().mark_all_modified();
        let mut clean_rounds = 0usize;
        let rounds = opts.rounds.max(6);
        for _ in 0..rounds {
            world.apply_modifications(&spec);
            generic.checkpoint(world.heap_mut(), &roots).expect("checkpoint");
            let report = generic.barrier_report().expect("armed backend verifies");
            if report.is_clean() {
                clean_rounds += 1;
            } else {
                failures += 1;
                println!("generic shadow: {}", report.render());
            }
        }
        let mut world2 = SynthWorld::build(SynthConfig::small()).expect("world builds");
        let roots2 = world2.roots().to_vec();
        let mut parallel = ParallelBackend::new(4, world2.heap().registry());
        world2.heap_mut().mark_all_modified();
        for _ in 0..rounds {
            world2.apply_modifications(&spec);
            parallel.checkpoint(world2.heap_mut(), &roots2).expect("checkpoint");
            let report = parallel.barrier_report().expect("armed backend verifies");
            if report.is_clean() {
                clean_rounds += 1;
            } else {
                failures += 1;
                println!("parallel shadow: {}", report.render());
            }
        }
        println!("shadow digest: {clean_rounds}/{} checkpoint round(s) clean", 2 * rounds);

        // Detection demo: one write smuggled past the barrier must be
        // caught on the very next checkpoint.
        let scalar_target = world.heap().iter_live().find_map(|id| {
            let class = world.heap().class_of(id).ok()?;
            let def = world.heap().class(class).ok()?;
            let slot =
                def.layout().iter().position(|f| matches!(f.ty(), ickp_heap::FieldType::Int))?;
            Some((id, slot))
        });
        match scalar_target {
            Some((id, slot)) => {
                world
                    .heap_mut()
                    .set_field_unbarriered(id, slot, Value::Int(0x5EED))
                    .expect("store");
                generic.checkpoint(world.heap_mut(), &roots).expect("checkpoint");
                let report = generic.barrier_report().expect("armed backend verifies");
                if report.is_clean() {
                    failures += 1;
                    println!("detection demo: unbarriered write NOT caught — {}", report.render());
                } else {
                    println!("detection demo: unbarriered write caught — {}", report.render());
                }
            }
            None => {
                failures += 1;
                println!("detection demo: no scalar slot found in the synth world");
            }
        }
    }

    if failures == 0 {
        println!(
            "\nbarrier audit passed: journal protocol proven sound, statically and dynamically"
        );
        0
    } else {
        println!("\nbarrier audit FAILED: {failures} check(s)");
        1
    }
}

// --------------------------------------------------------------- scaling

/// Measured end-to-end scaling of the parallel engine at paper scale:
/// proves every worker count's stream byte-identical to the sequential
/// reference (reconciling shard access sets when the `sanitize` feature
/// is on), then prints the pre-pass cost (sequential oracle vs the
/// parallel min-CAS plan) and the wall-clock phase breakdown
/// (plan / traverse / merge) with serial fraction and speedup over the
/// 1-worker engine. The journal is pinned off so every round runs the
/// shard workers. Identity gates the exit code; timing is informational.
fn scaling(opts: &Options) -> i32 {
    use ickp_backend::ParallelBackend;
    use ickp_bench::timing::median;
    use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
    use ickp_heap::partition_roots;
    use ickp_synth::{SynthConfig, SynthWorld};
    use std::time::Instant;

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("# ickp scaling — parallel engine, measured end to end\n");
    println!("# structures={} rounds={} cpus={}", opts.structures, opts.rounds, cpus);
    #[cfg(feature = "sanitize")]
    println!("# sanitize: on — every round's shard access sets reconciled");
    #[cfg(not(feature = "sanitize"))]
    println!("# sanitize: off");
    println!();

    let config = SynthConfig {
        structures: opts.structures,
        lists_per_structure: 5,
        list_len: 5,
        ints_per_element: 10,
        seed: 0x5ca1e,
    };
    let no_journal = CheckpointConfig::incremental().without_journal();
    let mut failures = 0usize;

    // Byte-identity: mirrored worlds (same config, same construction,
    // same modification script) checkpointed by the parallel backend and
    // a journal-free sequential reference, every round, at every worker
    // count.
    let spec = mods(100, 5, false);
    for workers in [1usize, 2, 4, 8] {
        let mut world = SynthWorld::build(config).expect("world builds");
        let mut ref_world = SynthWorld::build(config).expect("world builds");
        let roots = world.roots().to_vec();
        let table = MethodTable::derive(ref_world.heap().registry());
        let mut backend =
            ParallelBackend::with_config(workers, world.heap().registry(), no_journal);
        let mut reference = Checkpointer::new(no_journal);
        let mut identical = true;
        for _ in 0..opts.rounds.max(2) {
            world.apply_modifications(&spec);
            ref_world.apply_modifications(&spec);
            let a = backend.checkpoint(world.heap_mut(), &roots).expect("checkpoint");
            let b = reference.checkpoint(ref_world.heap_mut(), &table, &roots).expect("checkpoint");
            identical &= a.bytes() == b.bytes();
            #[cfg(feature = "sanitize")]
            if let Some(report) = backend.sanitizer_report() {
                if !report.is_clean() {
                    failures += 1;
                    println!("{workers} workers: sanitizer OVERLAP\n{}", report.render());
                }
            }
        }
        if identical {
            println!("{workers} workers: byte-identical to the sequential stream");
        } else {
            failures += 1;
            println!("{workers} workers: stream DIVERGED from the sequential reference");
        }
    }

    // The ownership pre-pass on its own: the sequential oracle against
    // the parallel min-CAS plan the engine actually builds (uncached) —
    // the stage that used to be a fixed sequential cost.
    let world = SynthWorld::build(config).expect("world builds");
    let roots = world.roots().to_vec();
    let heap = world.heap();
    let time_plan = |f: &dyn Fn()| {
        median(
            (0..opts.rounds.max(5))
                .map(|_| {
                    let start = Instant::now();
                    f();
                    start.elapsed()
                })
                .collect(),
        )
    };
    let seq_pre = time_plan(&|| {
        std::hint::black_box(partition_roots(heap, &roots, 8).expect("plan"));
    });
    println!("\npre-pass (8 shards): sequential oracle {}", fmt_duration(seq_pre));
    for workers in [1usize, 2, 4, 8] {
        let par_pre = time_plan(&|| {
            std::hint::black_box(
                ickp_core::plan_shards(heap, &roots, workers, ickp_core::ShardBalance::default())
                    .expect("plan"),
            );
        });
        println!("pre-pass ({workers} chunk(s), weighted, parallel): {}", fmt_duration(par_pre));
    }

    // Steady-state phase breakdown and end-to-end speedup over the
    // 1-worker engine (plan served from cache in steady state, so the
    // plan column is zero; the uncached cost is the pre-pass line above).
    let mut runner = SynthRunner::new(opts.structures, 5, 10);
    let rounds = (2 * opts.rounds + 3).max(9);
    // Discarded warm-up measurement: the first parallel run pays one-off
    // process-heap growth that would otherwise bias the 1-worker row.
    runner.measure(Variant::ParallelNoJournal(8), &spec, 2);
    let seq = runner.measure(Variant::IncrementalNoJournal, &spec, rounds).time;
    println!("\nsequential checkpoint (no journal): {}", fmt_duration(seq));
    println!(
        "{:>7}  {:>12} {:>12} {:>12} {:>12}  {:>8} {:>8}",
        "workers", "total", "plan", "traverse", "merge", "serial%", "speedup"
    );
    let mut one_worker: Option<Duration> = None;
    for workers in [1usize, 2, 4, 8] {
        let m = runner.measure(Variant::ParallelNoJournal(workers), &spec, rounds);
        let p = m.phases.expect("parallel variants report phases");
        let base = *one_worker.get_or_insert(m.time);
        println!(
            "{:>7}  {:>12} {:>12} {:>12} {:>12}  {:>7.1}% {:>7.2}x",
            workers,
            fmt_duration(m.time),
            fmt_duration(p.plan),
            fmt_duration(p.traverse),
            fmt_duration(p.merge),
            p.serial_fraction() * 100.0,
            base.as_secs_f64() / m.time.as_secs_f64().max(f64::EPSILON),
        );
    }
    if cpus == 1 {
        println!("\nnote: single-CPU host — traverse cannot shrink with workers here;");
        println!("multi-core numbers come from the CI parallel-scaling job.");
    }

    if failures == 0 {
        println!("\nscaling gate passed: all parallel streams byte-identical");
        0
    } else {
        println!("\nscaling gate FAILED: {failures} check(s)");
        1
    }
}

// ------------------------------------------------------------- lifecycle

/// Drives the checkpoint manager through a tagged, retained, deduped
/// history and gates on the ISSUE's acceptance criteria: the chain never
/// exceeds the retention budget, tags survive retention and resolve by
/// rollback to the exact tagged heap, and content-hash dedup measurably
/// shrinks the store versus the same history stored plain. Returns the
/// process exit code.
fn lifecycle(opts: &Options) -> i32 {
    use ickp_bench::timing::median;
    use ickp_core::{verify_restore, CheckpointConfig, Checkpointer, MethodTable};
    use ickp_durable::{DurableConfig, MemFs};
    use ickp_lifecycle::{CheckpointManager, LifecycleConfig, RetentionPolicy};
    use ickp_synth::{SynthConfig, SynthWorld};
    use std::time::Instant;

    println!("# ickp lifecycle — tags, binomial retention, content-hash dedup\n");
    let structures = (opts.structures / 40).max(50);
    let rounds = 48usize;
    let budget = 10usize;
    println!("# structures={structures} rounds={rounds} budget={budget}\n");

    let mut failures = 0usize;
    let mut fail = |cond: bool, what: &str| {
        if !cond {
            println!("FAILED: {what}");
            failures += 1;
        }
    };

    // The same history twice: once deduped, once plain, so the space
    // comparison is exact. Periodic full checkpoints (every 16 rounds)
    // model the operational full-plus-increments cadence and are where
    // recurring subtrees pay off.
    let mut committed = [0u64; 2];
    for (which, dedup) in [(0usize, true), (1usize, false)] {
        let mut world = SynthWorld::build(SynthConfig {
            structures,
            lists_per_structure: 5,
            list_len: 5,
            ints_per_element: 10,
            seed: 41,
        })
        .expect("world builds");
        let roots = world.roots().to_vec();
        let registry = world.heap().registry().clone();
        let table = MethodTable::derive(world.heap().registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let config = LifecycleConfig {
            durable: DurableConfig { segment_target_bytes: 256 * 1024 },
            policy: RetentionPolicy { budget },
            dedup,
        };
        let mut mgr = CheckpointManager::create(MemFs::new(), config, &registry).expect("create");

        let mut tagged: Option<(u64, ickp_heap::Heap)> = None;
        for round in 0..rounds {
            if round % 16 == 0 {
                world.heap_mut().mark_all_modified();
            } else {
                // One hot list per structure: the other four are stable
                // subtrees that every periodic full re-encodes
                // byte-identically — the dedup target.
                world.apply_modifications(&mods(20, 1, false));
            }
            let record = ckp.checkpoint(world.heap_mut(), &table, &roots).expect("checkpoint");
            mgr.append(&record).expect("append");
            if round == rounds / 2 {
                let seq = mgr.tag("midpoint").expect("tag");
                tagged = Some((seq, world.heap().clone()));
            }
        }
        let (tag_seq, tag_heap) = tagged.expect("midpoint tagged");
        // Size the full history here, before retention rewrites it: both
        // configurations hold byte-identical records at this point, so
        // the dedup-vs-plain comparison is exact.
        committed[which] = mgr.store().committed_bytes();

        // Retention: fold to the budget, keeping the tag pinned.
        let report = mgr.maintain().expect("maintain");
        let kept: Vec<u64> = mgr.chain().records().iter().map(|r| r.seq()).collect();
        fail(!report.noop, "maintain must fold a 48-record chain");
        fail(
            kept.len() <= budget,
            &format!("chain over budget after maintain: {} > {budget}", kept.len()),
        );
        fail(kept.contains(&tag_seq), "the tagged checkpoint was folded away");
        fail(
            report.bytes_after < report.bytes_before,
            &format!("maintain did not shrink the store: {report:?}"),
        );

        // The folded tip still restores the live heap, and rolling back
        // to the tag reproduces the tagged heap exactly.
        let time_restore = |mgr: &CheckpointManager<MemFs>| {
            let samples = (0..opts.rounds.max(2))
                .map(|_| {
                    let start = Instant::now();
                    let rebuilt = mgr.restore_latest().expect("restore");
                    let d = start.elapsed();
                    assert!(!rebuilt.is_empty());
                    d
                })
                .collect();
            median(samples)
        };
        let restore_tip = time_restore(&mgr);
        let tip = mgr.restore_latest().expect("restore tip");
        fail(
            verify_restore(world.heap(), &roots, &tip).expect("verify").is_none(),
            "restore after maintain diverged from the live heap",
        );
        let start = Instant::now();
        let rolled = mgr.reset_to("midpoint").expect("reset_to");
        let reset_latency = start.elapsed();
        fail(
            verify_restore(&tag_heap, &roots, &rolled).expect("verify").is_none(),
            "reset_to(midpoint) diverged from the tagged heap",
        );
        fail(mgr.next_seq() == tag_seq + 1, "next_seq must resume at the restore point");

        println!(
            "dedup={dedup:<5} history {:>10}  append-saved {:>10}  fold-saved {:>10}  chain {:>2} \
             records (kept seqs {kept:?})",
            fmt_bytes(committed[which] as usize),
            fmt_bytes(mgr.stats().dedup.bytes_saved() as usize),
            fmt_bytes(report.dedup.bytes_saved() as usize),
            kept.len(),
        );
        println!(
            "             restore(tip) {}  reset_to(midpoint) {}",
            fmt_duration(restore_tip),
            fmt_duration(reset_latency),
        );
        if dedup {
            fail(
                mgr.stats().dedup.bytes_saved() > 0,
                "dedup saved zero bytes on a history with recurring subtrees",
            );
        }
    }
    fail(
        committed[0] < committed[1],
        &format!(
            "deduped store ({}) must be smaller than plain ({})",
            fmt_bytes(committed[0] as usize),
            fmt_bytes(committed[1] as usize)
        ),
    );
    println!(
        "\ndedup stores the same history in {:.1}% of the plain bytes",
        100.0 * committed[0] as f64 / committed[1].max(1) as f64
    );

    if failures == 0 {
        println!("\nlifecycle gate passed");
        0
    } else {
        println!("\nlifecycle gate FAILED: {failures} check(s)");
        1
    }
}

fn mods(pct: u8, lists: usize, last_only: bool) -> ModificationSpec {
    ModificationSpec { pct_modified: pct, modified_lists: lists, last_only }
}

const PCTS: [u8; 3] = [100, 50, 25];
const LENS: [usize; 2] = [1, 5];
const INTS: [usize; 2] = [1, 10];
const KS: [usize; 3] = [1, 3, 5];

// ---------------------------------------------------------------- table 1

fn table1(opts: &Options) {
    println!("## Table 1 — program analysis engine (image program, {} filters)", opts.filters);
    let t = run_table1(opts.filters);
    println!("attributes structures: {}\n", t.attributes);
    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "strategy/phase", "iters", "min size", "max size", "total time", "mean time", "traversal"
    );
    for phase in [Phase::BindingTime, Phase::EvalTime] {
        for strategy in Strategy::ALL {
            let r = t.run(strategy, phase).expect("cell exists");
            let mean = r.total_time() / r.iterations.max(1) as u32;
            println!(
                "{:<28} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
                format!("{} {}", phase.key(), strategy.label()),
                r.iterations,
                fmt_bytes(r.min_size()),
                fmt_bytes(r.max_size()),
                fmt_duration(r.total_time()),
                fmt_duration(mean),
                fmt_duration(r.traversal),
            );
        }
        // Paper headline ratios for this phase.
        let full = t.run(Strategy::Full, phase).expect("cell");
        let incr = t.run(Strategy::Incremental, phase).expect("cell");
        let spec = t.run(Strategy::SpecializedIncremental, phase).expect("cell");
        let m = |r: &ickp_bench::PhaseRun| r.total_time() / r.iterations.max(1) as u32;
        println!(
            "  -> {}: incr-vs-full size reduction {:.1}x..{:.1}x | spec-vs-incr time speedup {:.2}x | traversal speedup {:.2}x\n",
            phase.key(),
            full.min_size() as f64 / incr.max_size().max(1) as f64,
            full.max_size() as f64 / incr.min_size().max(1) as f64,
            speedup(m(incr), m(spec)),
            speedup(incr.traversal, spec.traversal),
        );
    }
}

// ---------------------------------------------------------------- figures

struct Grid {
    title: String,
    header: String,
    rows: Vec<String>,
}

impl Grid {
    fn print(&self) {
        println!("## {}", self.title);
        println!("{}", self.header);
        for r in &self.rows {
            println!("{r}");
        }
        println!();
    }
}

fn fig7(opts: &Options) {
    let mut grid = Grid {
        title: "Figure 7 — incremental vs full checkpointing".into(),
        header: format!(
            "{:<22} {:>12} {:>12} {:>12} {:>9}",
            "ints/len/%mod", "full", "incremental", "incr size", "speedup"
        ),
        rows: Vec::new(),
    };
    for ints in INTS {
        for len in LENS {
            let mut runner = SynthRunner::new(opts.structures, len, ints);
            for pct in PCTS {
                let m = mods(pct, 5, false);
                let full = runner.measure(Variant::FullGeneric, &m, opts.rounds);
                let incr = runner.measure(Variant::Incremental, &m, opts.rounds);
                grid.rows.push(format!(
                    "{:<22} {:>12} {:>12} {:>12} {:>8.2}x",
                    format!("{ints} int / len {len} / {pct}%"),
                    fmt_duration(full.time),
                    fmt_duration(incr.time),
                    fmt_bytes(incr.bytes),
                    speedup(full.time, incr.time),
                ));
            }
        }
    }
    grid.print();
}

fn spec_figure(
    opts: &Options,
    title: &str,
    variant: Variant,
    ks: &[usize],
    lens: &[usize],
    last_only: bool,
) {
    let mut grid = Grid {
        title: title.into(),
        header: format!(
            "{:<30} {:>12} {:>12} {:>9}",
            "ints/len/lists/%mod", "incremental", "specialized", "speedup"
        ),
        rows: Vec::new(),
    };
    for ints in INTS {
        for &len in lens {
            let mut runner = SynthRunner::new(opts.structures, len, ints);
            for &k in ks {
                for pct in PCTS {
                    let m = mods(pct, k, last_only);
                    let incr = runner.measure(Variant::Incremental, &m, opts.rounds);
                    let spec = runner.measure(variant, &m, opts.rounds);
                    grid.rows.push(format!(
                        "{:<30} {:>12} {:>12} {:>8.2}x",
                        format!("{ints} int / len {len} / {k} lists / {pct}%"),
                        fmt_duration(incr.time),
                        fmt_duration(spec.time),
                        speedup(incr.time, spec.time),
                    ));
                }
            }
        }
    }
    grid.print();
}

fn fig8(opts: &Options) {
    spec_figure(
        opts,
        "Figure 8 — specialization w.r.t. structure (vs incremental)",
        Variant::SpecStructure,
        &[5],
        &LENS,
        false,
    );
}

fn fig9(opts: &Options) {
    spec_figure(
        opts,
        "Figure 9 — structure + set of possibly-modified lists",
        Variant::SpecModifiedLists,
        &KS,
        &LENS,
        false,
    );
}

fn fig10(opts: &Options) {
    spec_figure(
        opts,
        "Figure 10 — structure + last-element-only positions",
        Variant::SpecLastOnly,
        &KS,
        &LENS,
        true,
    );
}

fn fig11(opts: &Options) {
    let mut grid = Grid {
        title: "Figure 11 — last-element specialization under JDK 1.2 and HotSpot (len 5)".into(),
        header: format!(
            "{:<34} {:>12} {:>12} {:>9}",
            "engine/ints/lists/%mod", "unspec", "spec", "speedup"
        ),
        rows: Vec::new(),
    };
    for engine in [Engine::Jdk12, Engine::HotSpot] {
        for ints in INTS {
            let mut runner = SynthRunner::new(opts.structures, 5, ints);
            for k in KS {
                for pct in PCTS {
                    let m = mods(pct, k, true);
                    let unspec = runner.measure(Variant::EngineGeneric(engine), &m, opts.rounds);
                    let spec = runner.measure(Variant::EngineSpecLastOnly(engine), &m, opts.rounds);
                    grid.rows.push(format!(
                        "{:<34} {:>12} {:>12} {:>8.2}x",
                        format!("{engine} / {ints} int / {k} lists / {pct}%"),
                        fmt_duration(unspec.time),
                        fmt_duration(spec.time),
                        speedup(unspec.time, spec.time),
                    ));
                }
            }
        }
    }
    grid.print();
}

/// Extension experiment (not in the paper): recovery cost as the store
/// grows, and the effect of compaction.
fn recovery(opts: &Options) {
    use ickp_bench::timing::median;
    use ickp_core::{
        compact, restore, verify_restore, CheckpointConfig, Checkpointer, MethodTable,
        RestorePolicy,
    };
    use ickp_synth::{SynthConfig, SynthWorld};
    use std::time::Instant;

    println!("## Recovery (extension) — restore time vs store length, and compaction");
    let structures = (opts.structures / 4).max(100);
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14}",
        "increments", "store bytes", "compacted", "restore", "restore-compacted"
    );
    for increments in [1usize, 8, 32] {
        let mut world = SynthWorld::build(SynthConfig {
            structures,
            lists_per_structure: 5,
            list_len: 5,
            ints_per_element: 1,
            seed: 5,
        })
        .expect("world builds");
        let roots = world.roots().to_vec();
        let table = MethodTable::derive(world.heap().registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = ickp_core::CheckpointStore::new();
        world.heap_mut().mark_all_modified();
        store.push(ckp.checkpoint(world.heap_mut(), &table, &roots).expect("base")).unwrap();
        for _ in 0..increments {
            world.apply_modifications(&mods(25, 5, false));
            store
                .push(ckp.checkpoint(world.heap_mut(), &table, &roots).expect("increment"))
                .unwrap();
        }
        let compacted = compact(&store, world.heap().registry()).expect("compaction");

        let time_restore = |s: &ickp_core::CheckpointStore| {
            let samples = (0..opts.rounds.max(2))
                .map(|_| {
                    let start = Instant::now();
                    let rebuilt = restore(s, world.heap().registry(), RestorePolicy::Lenient)
                        .expect("restore");
                    let d = start.elapsed();
                    assert_eq!(
                        verify_restore(world.heap(), &roots, &rebuilt).expect("verify"),
                        None
                    );
                    d
                })
                .collect();
            median(samples)
        };
        println!(
            "{:<14} {:>12} {:>12} {:>14} {:>14}",
            increments,
            fmt_bytes(store.total_bytes()),
            fmt_bytes(compacted.total_bytes()),
            fmt_duration(time_restore(&store)),
            fmt_duration(time_restore(&compacted)),
        );
    }
    println!();
}

fn table2(opts: &Options) {
    println!("## Table 2 — absolute times, unspecialized vs specialized × engine (10 ints, len 5)");
    println!(
        "{:<26} {:>10} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "lists/%mod",
        "",
        "JDK unspec",
        "JDK spec",
        "HotSpot unspec",
        "HotSpot spec",
        "Harissa unspec",
        "Harissa spec"
    );
    for k in [1usize, 5] {
        let mut runner = SynthRunner::new(opts.structures, 5, 10);
        for pct in PCTS {
            let m = mods(pct, k, true);
            let mut cells: Vec<Duration> = Vec::new();
            for engine in Engine::ALL {
                cells.push(runner.measure(Variant::EngineGeneric(engine), &m, opts.rounds).time);
                cells.push(
                    runner.measure(Variant::EngineSpecLastOnly(engine), &m, opts.rounds).time,
                );
            }
            println!(
                "{:<26} {:>10} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
                format!("{k} lists / {pct}%"),
                "",
                fmt_duration(cells[0]),
                fmt_duration(cells[1]),
                fmt_duration(cells[2]),
                fmt_duration(cells[3]),
                fmt_duration(cells[4]),
                fmt_duration(cells[5]),
            );
        }
    }
    println!();
}

// ----------------------------------------------------- dirty-set journal

fn journal(opts: &Options) {
    let mut grid = Grid {
        title: "Dirty-set journal — flag-testing traversal vs journal fast path".into(),
        header: format!(
            "{:<10} {:>12} {:>12} {:>9} {:>12} {:>12} {:>14}",
            "% dirty", "traversal", "journal", "speedup", "hits", "pruned", "bytes reused"
        ),
        rows: Vec::new(),
    };
    for pct in [0u8, 1, 10, 50, 100] {
        let m = ModificationSpec::uniform(pct);
        // One runner per variant: same config, same seed, same per-round
        // modification script, so the two columns are directly comparable.
        let mut runner = SynthRunner::new(opts.structures, 5, 1);
        let trav = runner.measure(Variant::IncrementalNoJournal, &m, opts.rounds);
        let mut runner = SynthRunner::new(opts.structures, 5, 1);
        let fast = runner.measure(Variant::Incremental, &m, opts.rounds);
        grid.rows.push(format!(
            "{:<10} {:>12} {:>12} {:>8.2}x {:>12} {:>12} {:>14}",
            format!("{pct}%"),
            fmt_duration(trav.time),
            fmt_duration(fast.time),
            speedup(trav.time, fast.time),
            fast.stats.journal_hits,
            fast.stats.subtrees_pruned,
            fmt_bytes(fast.stats.bytes_reused as usize),
        ));
    }
    grid.print();
}

// ------------------------------------------------------------ durability

/// The durability-ordering gate. Four deterministic checks, one exit
/// code:
///
/// 1. **Store protocol** — the full single-node `DurableStore`
///    vocabulary (singles, a group commit, a tag, a dedup rewrite)
///    recorded through `TraceVfs` and statically proven crash-consistent
///    by `audit_durability` (zero error-severity findings).
/// 2. **Lifecycle protocol** — the `CheckpointManager` vocabulary
///    (appends, tags, policy-driven `maintain`, `reset_to`) under the
///    same prover.
/// 3. **Replicated protocol** — a two-node `ReplicaPair` run with both
///    filesystems and the wire in one shared `OpCounter` space; the
///    prover additionally checks every client acknowledgement waited
///    for durable-on-both.
/// 4. **Injections + oracle** — six hand-built ordering violations must
///    land on exactly their own AUD4xx code, and every crash-class
///    verdict of the store workload is replayed against the real
///    `MemFs` crash machinery (first and last member of every class).
fn durability() -> i32 {
    use ickp_audit::{audit_durability, cross_validate_durability, Severity};
    use ickp_backend::ParallelBackend;
    use ickp_core::{object_slices, CheckpointRecord};
    use ickp_durable::{
        DurableConfig, DurableStore, MemFs, OpCounter, TraceEvent, TraceLog, TraceNode, TraceOp,
        TraceVfs, MANIFEST,
    };
    use ickp_lifecycle::{CheckpointManager, LifecycleConfig, RetentionPolicy};
    use ickp_replicate::{ChannelTransport, ReplicaPair, ReplicateConfig, TransportPlan};
    use ickp_synth::{SynthConfig, SynthWorld};

    println!("# ickp durability — static crash-consistency proofs over op traces\n");
    let mut failures = 0usize;

    // A record stream wide enough to cross segment rolls and batch
    // boundaries on every workload below.
    let mut world = SynthWorld::build(SynthConfig {
        structures: 48,
        lists_per_structure: 3,
        list_len: 4,
        ints_per_element: 2,
        seed: 0xd04a,
    })
    .expect("world builds");
    let registry = world.heap().registry().clone();
    let roots = world.roots().to_vec();
    let mut backend = ParallelBackend::new(2, &registry);
    let mut records: Vec<CheckpointRecord> = Vec::new();
    world.heap_mut().mark_all_modified();
    for round in 0..8 {
        if round > 0 {
            world.apply_modifications(&ModificationSpec::uniform(30));
        }
        records.push(backend.checkpoint(world.heap_mut(), &roots).expect("checkpoint"));
    }
    let config = DurableConfig { segment_target_bytes: 512 };

    let mut report_subject = |name: &str, audit: &ickp_audit::DurabilityAudit| {
        let pruned: u64 = audit.classes.iter().map(|c| c.indices.len() as u64 - 1).sum();
        if audit.is_sound() {
            println!(
                "{name}: sound — {} ops, {} commit(s), {} ack(s), {} crash class(es) \
                 ({} crash point(s) pruned), {} perf lint(s)",
                audit.counted_ops,
                audit.commits,
                audit.acks,
                audit.classes.len(),
                pruned,
                audit.report.count(Severity::PerfLint),
            );
        } else {
            failures += 1;
            println!("{name}: UNSOUND\n{}", audit.report.render());
        }
    };

    // ---- 1. The single-node store protocol -----------------------------
    // The same deterministic drive is reused below by the oracle, with
    // fault injection instead of tracing.
    let store_drive = |fs: &mut dyn ickp_durable::Vfs,
                       log: Option<&TraceLog>|
     -> Result<(), ickp_durable::DurableError> {
        let mut store = DurableStore::create(&mut *fs, config)?;
        let mut acked = 0u64;
        for record in &records[..4] {
            store.append(record)?;
            acked += 1;
            if let Some(log) = log {
                log.client_ack(acked);
            }
        }
        store.append_batch(&records[4..])?;
        acked += (records.len() - 4) as u64;
        if let Some(log) = log {
            log.client_ack(acked);
        }
        store.tag("stable", records[3].seq())?;
        let layouts: Vec<_> = records
            .iter()
            .map(|r| object_slices(r.bytes(), &registry).expect("records decode").objects)
            .collect();
        let tags = store.tags().to_vec();
        store.rewrite(&records, &layouts, &tags)?;
        Ok(())
    };
    let store_classes;
    {
        let log = TraceLog::new();
        let mut fs = TraceVfs::new(MemFs::new(), log.clone());
        store_drive(&mut fs, Some(&log)).expect("fault-free store drive");
        let trace = log.snapshot(&fs.counter());
        let audit = audit_durability(&trace);
        report_subject("store", &audit);
        store_classes = audit.classes;
    }

    // ---- 2. The lifecycle protocol -------------------------------------
    {
        let lc =
            LifecycleConfig { durable: config, policy: RetentionPolicy { budget: 3 }, dedup: true };
        let log = TraceLog::new();
        let mut fs = TraceVfs::new(MemFs::new(), log.clone());
        let mut mgr = CheckpointManager::create(&mut fs, lc, &registry).expect("manager creates");
        let mut appended = 0u64;
        for (i, record) in records.iter().enumerate() {
            mgr.append(record).expect("append");
            appended += 1;
            log.client_ack(appended);
            if i == 3 {
                mgr.tag("alpha").expect("tag");
            }
        }
        mgr.maintain().expect("maintain");
        mgr.reset_to("alpha").expect("reset");
        drop(mgr);
        let trace = log.snapshot(&fs.counter());
        let audit = audit_durability(&trace);
        report_subject("lifecycle", &audit);
    }

    // ---- 3. The replicated protocol ------------------------------------
    {
        let log = TraceLog::new();
        let counter = OpCounter::new();
        let mut pfs =
            TraceVfs::with_counter(MemFs::new(), log.clone(), counter.clone(), TraceNode::Primary);
        let mut ffs =
            TraceVfs::with_counter(MemFs::new(), log.clone(), counter.clone(), TraceNode::Follower);
        let mut link = ChannelTransport::with_counter(TransportPlan::none(), counter.clone());
        link.set_trace(log.clone());
        let rcfg =
            ReplicateConfig { durable: config, batch_records: 2, max_retries: 3, dedup: true };
        let mut pair =
            ReplicaPair::create(&mut pfs, &mut ffs, &mut link, rcfg, &registry).expect("pair");
        for record in &records {
            pair.append(record.clone()).expect("append");
            if pair.acked_records() > 0 {
                log.client_ack(pair.acked_records());
            }
        }
        pair.commit().expect("commit");
        log.client_ack(pair.acked_records());
        drop(pair);
        let trace = log.snapshot(&counter);
        let audit = audit_durability(&trace);
        let name = format!(
            "replicated ({} wire send(s), {} wire ack(s))",
            audit.wire_sends, audit.wire_acks
        );
        report_subject(&name, &audit);
    }
    println!();

    // ---- 4a. Injection pins --------------------------------------------
    struct RawTrace {
        events: Vec<TraceEvent>,
        counted: u64,
    }
    impl ickp_audit::OpTraceSpec for RawTrace {
        fn events(&self) -> &[TraceEvent] {
            &self.events
        }
        fn counted_ops(&self) -> u64 {
            self.counted
        }
    }
    let op = |index: u64, node: TraceNode, op: TraceOp| TraceEvent::Op { index, node, op };
    let local = TraceNode::Local;
    let sound_commit = |base: u64, node: TraceNode, seg: &str, records: u64| {
        vec![
            op(base, node, TraceOp::Write { path: seg.into(), offset: 0, len: 64 }),
            op(base + 1, node, TraceOp::Fsync { path: seg.into() }),
            op(base + 2, node, TraceOp::Create { path: "MANIFEST.tmp".into(), len: 32 }),
            op(base + 3, node, TraceOp::Fsync { path: "MANIFEST.tmp".into() }),
            op(
                base + 4,
                node,
                TraceOp::Rename { from: "MANIFEST.tmp".into(), to: MANIFEST.into() },
            ),
            op(base + 5, node, TraceOp::DirFsync),
            TraceEvent::ClientAck { records },
        ]
    };
    let injections: Vec<(&str, &str, RawTrace)> = vec![
        (
            "ack without a manifest publish",
            "AUD401",
            RawTrace {
                events: vec![
                    op(0, local, TraceOp::Write { path: "seg".into(), offset: 0, len: 64 }),
                    op(1, local, TraceOp::Fsync { path: "seg".into() }),
                    TraceEvent::ClientAck { records: 1 },
                ],
                counted: 2,
            },
        ),
        (
            "rename before the source fsync",
            "AUD402",
            RawTrace {
                events: vec![
                    op(0, local, TraceOp::Create { path: "MANIFEST.tmp".into(), len: 32 }),
                    op(
                        1,
                        local,
                        TraceOp::Rename { from: "MANIFEST.tmp".into(), to: MANIFEST.into() },
                    ),
                    op(2, local, TraceOp::Fsync { path: MANIFEST.into() }),
                    op(3, local, TraceOp::DirFsync),
                    TraceEvent::ClientAck { records: 1 },
                ],
                counted: 4,
            },
        ),
        (
            "publish without the directory fsync",
            "AUD403",
            RawTrace {
                events: vec![
                    op(0, local, TraceOp::Create { path: "MANIFEST.tmp".into(), len: 32 }),
                    op(1, local, TraceOp::Fsync { path: "MANIFEST.tmp".into() }),
                    op(
                        2,
                        local,
                        TraceOp::Rename { from: "MANIFEST.tmp".into(), to: MANIFEST.into() },
                    ),
                    TraceEvent::ClientAck { records: 1 },
                ],
                counted: 3,
            },
        ),
        (
            "write into a committed region",
            "AUD404",
            RawTrace {
                events: {
                    let mut events = sound_commit(0, local, "seg", 1);
                    events.push(op(
                        6,
                        local,
                        TraceOp::Write { path: "seg".into(), offset: 8, len: 8 },
                    ));
                    events
                },
                counted: 7,
            },
        ),
        (
            "client ack before the follower ack",
            "AUD405",
            RawTrace {
                events: {
                    let mut events = sound_commit(0, TraceNode::Primary, "seg", 1);
                    events.pop();
                    events.push(op(6, TraceNode::Primary, TraceOp::WireSend));
                    events.push(TraceEvent::ClientAck { records: 1 });
                    events
                },
                counted: 7,
            },
        ),
        (
            "I/O outside the shared op counter",
            "AUD406",
            RawTrace { events: sound_commit(0, local, "seg", 1), counted: 7 },
        ),
    ];
    println!("{:<40} {:>8}  verdict", "injected violation", "expected");
    for (name, expected, trace) in &injections {
        let audit = audit_durability(trace);
        let codes: Vec<&str> = audit
            .report
            .diagnostics()
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.code.code())
            .collect();
        if codes == vec![*expected] {
            println!("{name:<40} {expected:>8}  pinned");
        } else {
            failures += 1;
            println!("{name:<40} {expected:>8}  MISSED: got {codes:?}");
        }
    }

    // ---- 4b. The MemFs crash oracle ------------------------------------
    match cross_validate_durability(&registry, config, &store_classes, 1, |fs| {
        store_drive(fs, None).map_err(|e| e.to_string())
    }) {
        Ok(oracle) => {
            println!(
                "\noracle: {} class(es), {} sampled, {} crash replay(s) — static verdicts \
                 match the MemFs crash machinery",
                oracle.classes, oracle.sampled, oracle.replays
            );
        }
        Err(e) => {
            failures += 1;
            println!("\noracle: DISAGREES — {e}");
        }
    }

    if failures == 0 {
        println!("\ndurability audit passed");
        0
    } else {
        println!("\ndurability audit FAILED: {failures} check(s)");
        1
    }
}
