//! Small timing helpers shared by the `repro` binary and the Criterion
//! benches.

use std::time::Duration;

/// Median of a set of duration samples (empty ⇒ zero).
pub fn median(mut samples: Vec<Duration>) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Ratio of two durations as a speedup factor (`base / other`).
/// Returns `f64::INFINITY` when `other` is zero.
pub fn speedup(base: Duration, other: Duration) -> f64 {
    let o = other.as_secs_f64();
    if o == 0.0 {
        f64::INFINITY
    } else {
        base.as_secs_f64() / o
    }
}

/// Formats a duration in adaptive units for table output.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a byte count in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_picks_the_middle_sample() {
        let d = |ms| Duration::from_millis(ms);
        assert_eq!(median(vec![d(5), d(1), d(9)]), d(5));
        assert_eq!(median(vec![d(4), d(2)]), d(4));
        assert_eq!(median(vec![]), Duration::ZERO);
    }

    #[test]
    fn speedup_is_base_over_other() {
        let s = speedup(Duration::from_millis(100), Duration::from_millis(25));
        assert!((s - 4.0).abs() < 1e-9);
        assert!(speedup(Duration::from_millis(1), Duration::ZERO).is_infinite());
    }

    #[test]
    fn formatters_choose_sane_units() {
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with(" ms"));
        assert!(fmt_duration(Duration::from_micros(7)).ends_with(" µs"));
        assert!(fmt_bytes(3).ends_with(" B"));
        assert!(fmt_bytes(2048).ends_with(" KiB"));
        assert!(fmt_bytes(3 << 20).ends_with(" MiB"));
    }
}
