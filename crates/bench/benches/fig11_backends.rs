//! Bench tracking for Figure 11: specialized vs unspecialized code under
//! the JDK 1.2 and HotSpot execution engines, plus the parallel sharded
//! engine as a fourth implementation point.

use ickp_backend::Engine;
use ickp_bench::{BenchGroup, SynthRunner, Variant};
use ickp_synth::ModificationSpec;
use std::time::Duration;

const STRUCTURES: usize = 2_000;

fn main() {
    let mut group = BenchGroup::new("fig11");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    let mods = ModificationSpec { pct_modified: 50, modified_lists: 3, last_only: true };
    let mut runner = SynthRunner::new(STRUCTURES, 5, 1);
    for engine in [Engine::Jdk12, Engine::HotSpot] {
        group.bench_custom(&format!("unspec/{engine}"), |iters| {
            runner.time_rounds(Variant::EngineGeneric(engine), &mods, iters as usize)
        });
        group.bench_custom(&format!("spec/{engine}"), |iters| {
            runner.time_rounds(Variant::EngineSpecLastOnly(engine), &mods, iters as usize)
        });
    }
    group.bench_custom("parallel/4workers", |iters| {
        runner.time_rounds(Variant::Parallel(4), &mods, iters as usize)
    });
    group.finish();
}
