//! Cost of the ownership pre-pass itself: planning, not checkpointing.
//!
//! Three axes on a paper-scale synthetic heap:
//!
//! * **chunking** — boundary computation alone: the legacy
//!   `chunk_roots` (one `Vec<ObjectId>` per shard) against `chunk_bounds`
//!   (indices into the existing root slice, two allocations per plan
//!   total). The allocation the range form saves is the pre-pass hot-path
//!   satellite of the parallel-engine work.
//! * **planning** — full first-touch plans: sequential oracle vs the
//!   parallel min-CAS pre-pass vs the byte-weighted variant (which pays
//!   an extra reachability scan for per-root weights).
//! * **weights** — the `root_weights` scan on its own.
//!
//! On a single-CPU host the parallel plan can only tie the sequential one
//! (same work, plus thread spawn); the CI scaling job shows the shrink.

use ickp_bench::BenchGroup;
use ickp_heap::{
    chunk_bounds, chunk_roots, partition_roots, partition_roots_parallel, partition_roots_weighted,
    root_weights,
};
use ickp_synth::{SynthConfig, SynthWorld};
use std::hint::black_box;
use std::time::Duration;

const SHARDS: usize = 8;

fn main() {
    let world = SynthWorld::build(SynthConfig {
        structures: 2_000,
        lists_per_structure: 5,
        list_len: 5,
        ints_per_element: 10,
        seed: 0x009e_9a55,
    })
    .expect("synthetic world builds");
    let heap = world.heap();
    let roots = world.roots().to_vec();

    let mut group = BenchGroup::new("prepass");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));

    group.bench("chunking/vec_per_shard", || black_box(chunk_roots(&roots, SHARDS)));
    group.bench("chunking/bounds_only", || black_box(chunk_bounds(roots.len(), SHARDS)));

    group.bench("plan/sequential", || {
        black_box(partition_roots(heap, &roots, SHARDS).expect("plan"))
    });
    group.bench("plan/parallel", || {
        black_box(partition_roots_parallel(heap, &roots, SHARDS).expect("plan"))
    });
    let weights = root_weights(heap, &roots, 15).expect("weights");
    group.bench("plan/weighted", || {
        black_box(partition_roots_weighted(heap, &roots, &weights, SHARDS).expect("plan"))
    });

    group.bench("weights/root_weights", || black_box(root_weights(heap, &roots, 15).expect("w")));
    group.finish();
}
