//! Criterion tracking for Figure 10: specialization w.r.t. modified-list
//! set *and* last-element-only positions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ickp_bench::{SynthRunner, Variant};
use ickp_synth::ModificationSpec;
use std::time::Duration;

const STRUCTURES: usize = 2_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    for ints in [1usize, 10] {
        let mut runner = SynthRunner::new(STRUCTURES, 5, ints);
        for k in [1usize, 5] {
            let mods = ModificationSpec { pct_modified: 50, modified_lists: k, last_only: true };
            let label = format!("ints{ints}_lists{k}");
            group.bench_function(BenchmarkId::new("incremental", &label), |b| {
                b.iter_custom(|iters| {
                    runner.time_rounds(Variant::Incremental, &mods, iters as usize)
                })
            });
            group.bench_function(BenchmarkId::new("spec-last-only", &label), |b| {
                b.iter_custom(|iters| {
                    runner.time_rounds(Variant::SpecLastOnly, &mods, iters as usize)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
