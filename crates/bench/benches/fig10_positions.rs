//! Bench tracking for Figure 10: specialization w.r.t. modified-list set
//! *and* last-element-only positions.

use ickp_bench::{BenchGroup, SynthRunner, Variant};
use ickp_synth::ModificationSpec;
use std::time::Duration;

const STRUCTURES: usize = 2_000;

fn main() {
    let mut group = BenchGroup::new("fig10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    for ints in [1usize, 10] {
        let mut runner = SynthRunner::new(STRUCTURES, 5, ints);
        for k in [1usize, 5] {
            let mods = ModificationSpec { pct_modified: 50, modified_lists: k, last_only: true };
            let label = format!("ints{ints}_lists{k}");
            group.bench_custom(&format!("incremental/{label}"), |iters| {
                runner.time_rounds(Variant::Incremental, &mods, iters as usize)
            });
            group.bench_custom(&format!("spec-last-only/{label}"), |iters| {
                runner.time_rounds(Variant::SpecLastOnly, &mods, iters as usize)
            });
        }
    }
    group.finish();
}
