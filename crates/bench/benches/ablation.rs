//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **guards** — checked vs trusting plan execution (the safety the
//!    paper's generated C omits: what does keeping it cost?).
//! 2. **threaded vs interpreted** plan execution (is removing dispatch
//!    enough, or does instruction fusion matter?).
//! 3. **write barrier** — the §6 concern: "extra time on every
//!    assignment to update the associated flag".
//! 4. **flag tests** — traversal with flag tests vs the full incremental
//!    checkpoint at 0% modified (the test-only residue).

use ickp_backend::ThreadedPlan;
use ickp_bench::BenchGroup;
use ickp_core::{CheckpointKind, StreamWriter, TraversalStats};
use ickp_heap::Value;
use ickp_spec::{GuardMode, Specializer};
use ickp_synth::{SynthConfig, SynthWorld};
use std::collections::HashSet;
use std::time::{Duration, Instant};

fn world() -> SynthWorld {
    SynthWorld::build(SynthConfig {
        structures: 2_000,
        lists_per_structure: 5,
        list_len: 5,
        ints_per_element: 1,
        seed: 99,
    })
    .expect("world builds")
}

fn main() {
    let mut group = BenchGroup::new("ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));

    // 1 + 2: guard modes × executors on a structure-only plan, everything
    // modified (worst case for both knobs).
    for (name, threaded, mode) in [
        ("plan/interpreted-trusting", false, GuardMode::Trusting),
        ("plan/interpreted-checked", false, GuardMode::Checked),
        ("plan/threaded-trusting", true, GuardMode::Trusting),
        ("plan/threaded-checked", true, GuardMode::Checked),
    ] {
        let mut w = world();
        let plan =
            Specializer::new(w.heap().registry()).compile(&w.shape_structure_only()).unwrap();
        let threaded_plan = ThreadedPlan::compile(&plan);
        let roots = w.roots().to_vec();
        group.bench_custom(name, |iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                w.heap_mut().mark_all_modified();
                let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
                let mut stats = TraversalStats::default();
                let start = Instant::now();
                if threaded {
                    let mut regs = vec![None; threaded_plan.num_regs() as usize];
                    let mut scratch = Vec::new();
                    let mut seen = HashSet::new();
                    for &root in &roots {
                        threaded_plan
                            .run(
                                w.heap_mut(),
                                root,
                                &mut writer,
                                mode,
                                None,
                                &mut regs,
                                &mut scratch,
                                &mut seen,
                                &mut stats,
                            )
                            .expect("run");
                    }
                } else {
                    let mut exec = plan.executor();
                    for &root in &roots {
                        exec.run(w.heap_mut(), root, &mut writer, mode, None, &mut stats)
                            .expect("run");
                    }
                }
                total += start.elapsed();
            }
            total
        });
    }

    // 3: write barrier cost per store.
    {
        let mut w = world();
        let targets: Vec<_> = (0..w.config().structures).map(|s| w.element(s, 0, 0)).collect();
        group.bench_custom("barrier/set_field", |iters| {
            let start = Instant::now();
            for i in 0..iters {
                for &t in &targets {
                    w.heap_mut().set_field(t, 0, Value::Int(i as i32)).expect("store");
                }
            }
            start.elapsed()
        });
    }
    {
        let mut w = world();
        let targets: Vec<_> = (0..w.config().structures).map(|s| w.element(s, 0, 0)).collect();
        group.bench_custom("barrier/set_field_unbarriered", |iters| {
            let start = Instant::now();
            for i in 0..iters {
                for &t in &targets {
                    w.heap_mut().set_field_unbarriered(t, 0, Value::Int(i as i32)).expect("store");
                }
            }
            start.elapsed()
        });
    }

    // 4: the traversal+flag-test residue of incremental checkpointing
    // when nothing at all is modified.
    {
        let mut w = world();
        w.reset_modified();
        let table = ickp_core::MethodTable::derive(w.heap().registry());
        let roots = w.roots().to_vec();
        group.bench("flags/traverse-clean-heap", || {
            let mut ckp = ickp_core::Checkpointer::new(ickp_core::CheckpointConfig::incremental());
            ckp.traverse_only(w.heap(), &table, &roots).expect("traverse")
        });
    }

    group.finish();
}
