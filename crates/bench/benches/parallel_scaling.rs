//! Measured scaling of the parallel sharded checkpoint engine.
//!
//! Workers 1/2/4/8 against the sequential incremental baseline, on a heap
//! whose recording work (10 ints per element, every structure dirtied)
//! dominates the ownership pre-pass — the regime the engine is for. The
//! journal is pinned off for the scaling variants: with it on, steady-state
//! rounds ride the sequential journal fast path and never touch a shard
//! worker. The 1-worker point isolates the sharding overhead itself.
//!
//! After the timed groups the bench prints the *measured* per-phase
//! breakdown (plan / traverse / merge) at each worker count, the serial
//! fraction it implies, and end-to-end speedups over the 1-worker engine —
//! real wall-clock numbers, not an Amdahl projection. On a single-CPU host
//! the traverse phase cannot shrink, so the table reports what this host
//! actually did; CI runs the same harness multi-core via `repro scaling`.

use ickp_bench::{BenchGroup, SynthRunner, Variant};
use ickp_synth::ModificationSpec;
use std::time::Duration;

const STRUCTURES: usize = 2_000;
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let mut group = BenchGroup::new("parallel_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    let mods = ModificationSpec { pct_modified: 100, modified_lists: 5, last_only: false };
    let mut runner = SynthRunner::new(STRUCTURES, 5, 10);
    group.bench_custom("sequential/baseline", |iters| {
        runner.time_rounds(Variant::IncrementalNoJournal, &mods, iters as usize)
    });
    for workers in WORKERS {
        group.bench_custom(&format!("parallel/{workers}workers"), |iters| {
            runner.time_rounds(Variant::ParallelNoJournal(workers), &mods, iters as usize)
        });
    }
    group.finish();

    // Measured phase breakdown: what each worker count actually spent on
    // the (parallel) ownership pre-pass, the shard traversals, and the
    // sequential stream merge — and the serial fraction + speedup that
    // follow from it.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Discarded warm-up measurement: the first parallel run pays one-off
    // process-heap growth that would otherwise bias the 1-worker row.
    runner.measure(Variant::ParallelNoJournal(8), &mods, 2);
    let seq = runner.measure(Variant::IncrementalNoJournal, &mods, 9).time;
    println!("\nparallel_scaling/phases ({cpus} CPU(s) visible to this process)");
    println!("  sequential checkpoint (no journal)  {seq:>10.3?}");
    println!(
        "  {:>7}  {:>10} {:>10} {:>10} {:>10}  {:>8} {:>8}",
        "workers", "total", "plan", "traverse", "merge", "serial%", "speedup"
    );
    let mut one_worker = None;
    for workers in WORKERS {
        let m = runner.measure(Variant::ParallelNoJournal(workers), &mods, 9);
        let p = m.phases.expect("parallel variants report phases");
        let total = one_worker.get_or_insert(m.time);
        println!(
            "  {:>7}  {:>10.3?} {:>10.3?} {:>10.3?} {:>10.3?}  {:>7.1}% {:>7.2}x",
            workers,
            m.time,
            p.plan,
            p.traverse,
            p.merge,
            p.serial_fraction() * 100.0,
            total.as_secs_f64() / m.time.as_secs_f64(),
        );
    }
    if cpus == 1 {
        println!("  note: single-CPU host — traverse cannot shrink with workers here;");
        println!("  the multi-core run lives in CI (repro scaling artifact).");
    }
}
