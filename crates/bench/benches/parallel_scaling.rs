//! Scaling of the parallel sharded checkpoint engine over worker count.
//!
//! Workers 1/2/4/8 against the sequential incremental baseline, on a heap
//! whose recording work (10 ints per element, every structure dirtied)
//! dominates the sequential ownership pre-pass — the regime the engine is
//! for. The 1-worker point isolates the sharding overhead itself: it runs
//! the full pre-pass + merge machinery on a single worker thread.
//!
//! Wall-clock numbers only show a speedup when the host grants the process
//! more than one CPU, so after the timed groups this bench decomposes the
//! engine's serial fraction (the ownership pre-pass, measured directly) and
//! prints the Amdahl projection `T(w) = T_pre + (T_1 − T_pre)/w` next to the
//! per-shard load balance that the projection assumes.

use ickp_bench::{BenchGroup, SynthRunner, Variant};
use ickp_heap::partition_roots;
use ickp_synth::ModificationSpec;
use std::time::{Duration, Instant};

const STRUCTURES: usize = 2_000;

/// Median wall time of `f` over `samples` runs.
fn time_median(samples: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn main() {
    let mut group = BenchGroup::new("parallel_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    let mods = ModificationSpec { pct_modified: 100, modified_lists: 5, last_only: false };
    let mut runner = SynthRunner::new(STRUCTURES, 5, 10);
    group.bench_custom("sequential/baseline", |iters| {
        runner.time_rounds(Variant::Incremental, &mods, iters as usize)
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_custom(&format!("parallel/{workers}workers"), |iters| {
            runner.time_rounds(Variant::Parallel(workers), &mods, iters as usize)
        });
    }
    group.finish();

    // Serial-fraction decomposition. The only inherently sequential stage of
    // `checkpoint_parallel` with real weight is the ownership pre-pass
    // (stream merge is a memcpy, flag resets touch just the dirty objects),
    // so measure it directly and project the multi-core wall time from the
    // measured single-worker total.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let seq = runner.measure(Variant::Incremental, &mods, 9).time;
    let par1 = runner.measure(Variant::Parallel(1), &mods, 9).time;
    let (heap, roots) = (runner.world().heap(), runner.world().roots().to_vec());
    let pre = time_median(9, || {
        std::hint::black_box(partition_roots(heap, &roots, 4).expect("partition"));
    });
    let plan = partition_roots(heap, &roots, 4).expect("partition");

    println!("\nparallel_scaling/decomposition ({cpus} CPU(s) visible to this process)");
    println!("  sequential checkpoint        {seq:>10.3?}");
    println!("  parallel, 1 worker           {par1:>10.3?}");
    println!("  ownership pre-pass (serial)  {pre:>10.3?}");
    println!("  objects per shard (4 shards) {:?}", plan.objects_per_shard());
    println!("  Amdahl projection T(w) = pre + (T1 - pre)/w, speedup = seq/T(w):");
    let t1 = par1.as_secs_f64();
    let s = pre.as_secs_f64();
    for w in [2usize, 4, 8] {
        let proj = s + (t1 - s) / w as f64;
        println!(
            "    w={w}: projected {:>8.3} ms, projected speedup {:>5.2}x",
            proj * 1e3,
            seq.as_secs_f64() / proj
        );
    }
    if cpus == 1 {
        println!("  note: single-CPU host — wall-clock groups above cannot show scaling;");
        println!("  the projection uses only quantities measured on this host.");
    }
}
