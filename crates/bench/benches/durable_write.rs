//! Durable-write throughput: what does crash safety cost per checkpoint?
//!
//! Appends a pre-built stream of incremental checkpoint records through
//! three sinks:
//!
//! * `memory/store-push` — the in-memory `CheckpointStore` (the floor:
//!   no framing, no I/O);
//! * `memfs/...` — the durable store over the deterministic in-memory
//!   filesystem, isolating the protocol cost (CRC framing, manifest
//!   encode, namespace bookkeeping) from device speed;
//! * `stdfs/...` — the durable store over a real temp directory,
//!   including genuine fsyncs; this is the number a deployment sees.
//!
//! Segment targets of 64 KiB and 4 MiB bracket the roll frequency. The
//! interesting ratio is memfs vs memory (protocol overhead) and stdfs vs
//! memfs (the price of real fsyncs).

use ickp_bench::BenchGroup;
use ickp_core::{CheckpointConfig, MethodTable};
use ickp_core::{CheckpointRecord, CheckpointStore, Checkpointer};
use ickp_durable::{DurableConfig, DurableStore, MemFs, StdFs};
use ickp_synth::{ModificationSpec, SynthConfig, SynthWorld};
use std::time::{Duration, Instant};

/// A realistic record stream: one full base plus incremental rounds.
fn build_records(rounds: usize) -> Vec<CheckpointRecord> {
    let mut world = SynthWorld::build(SynthConfig {
        structures: 400,
        lists_per_structure: 5,
        list_len: 5,
        ints_per_element: 2,
        seed: 41,
    })
    .expect("world builds");
    let roots = world.roots().to_vec();
    let table = MethodTable::derive(world.heap().registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut records = Vec::new();
    world.heap_mut().mark_all_modified();
    for round in 0..rounds {
        if round > 0 {
            world.apply_modifications(&ModificationSpec::uniform(20));
        }
        records.push(ckp.checkpoint(world.heap_mut(), &table, &roots).expect("checkpoint"));
    }
    records
}

/// Re-sequences `records` so iteration `i` of a timing loop can append
/// the same payloads with contiguous sequence numbers.
fn reseq(records: &[CheckpointRecord], base: u64) -> Vec<CheckpointRecord> {
    records
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, r)| {
            let (_, kind, roots, bytes, stats) = r.into_parts();
            CheckpointRecord::from_parts(base + i as u64, kind, roots, bytes, stats)
        })
        .collect()
}

fn main() {
    let records = build_records(16);
    let payload: usize = records.iter().map(CheckpointRecord::len_bytes).sum();
    println!("durable_write: {} records, {} payload bytes per iteration", records.len(), payload);

    let mut group = BenchGroup::new("durable_write");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    group.bench_custom("memory/store-push", |iters| {
        let mut total = Duration::ZERO;
        for i in 0..iters {
            let batch = reseq(&records, 0);
            let mut store = CheckpointStore::new();
            let start = Instant::now();
            for r in batch {
                store.push(r).expect("push");
            }
            total += start.elapsed();
            let _ = i;
        }
        total
    });

    for (label, target) in [("64k", 64 * 1024u64), ("4m", 4 * 1024 * 1024)] {
        group.bench_custom(&format!("memfs/seg-{label}"), |iters| {
            let config = DurableConfig { segment_target_bytes: target };
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let batch = reseq(&records, 0);
                let mut fs = MemFs::new();
                let mut store = DurableStore::create(&mut fs, config).expect("create");
                let start = Instant::now();
                for r in &batch {
                    store.append(r).expect("append");
                }
                total += start.elapsed();
            }
            total
        });
    }

    let dir = std::env::temp_dir().join(format!("ickp-durable-bench-{}", std::process::id()));
    for (label, target) in [("64k", 64 * 1024u64), ("4m", 4 * 1024 * 1024)] {
        group.bench_custom(&format!("stdfs/seg-{label}"), |iters| {
            let config = DurableConfig { segment_target_bytes: target };
            let mut total = Duration::ZERO;
            for i in 0..iters {
                let batch = reseq(&records, 0);
                let sub = dir.join(format!("{label}-{i}"));
                let fs = StdFs::new(&sub).expect("temp dir");
                let mut store = DurableStore::create(fs, config).expect("create");
                let start = Instant::now();
                for r in &batch {
                    store.append(r).expect("append");
                }
                total += start.elapsed();
                let _ = std::fs::remove_dir_all(&sub);
            }
            total
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}
