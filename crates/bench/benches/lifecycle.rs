//! Lifecycle economics: chain length vs restore latency vs bytes
//! stored, with and without content-hash dedup, before and after
//! binomial retention.
//!
//! Sweeps the chain length (with a full checkpoint every 16 rounds, the
//! operational full-plus-increments cadence) and prints, per length:
//! the committed store size plain and deduped, the dedup saving, the
//! tip-restore latency on the raw chain, and the record count plus
//! tip-restore latency after `maintain` folds the chain to the
//! retention budget. The paper's claim, extended to the lifecycle
//! layer: restore cost tracks the records it must replay, so retention
//! buys back the restore latency that a long incremental chain costs —
//! while dedup keeps the extra restore points nearly free in space.

use ickp_bench::timing::{fmt_bytes, fmt_duration, median};
use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
use ickp_durable::{DurableConfig, MemFs};
use ickp_lifecycle::{CheckpointManager, LifecycleConfig, RetentionPolicy};
use ickp_synth::{ModificationSpec, SynthConfig, SynthWorld};
use std::time::Instant;

const SAMPLES: usize = 5;
const BUDGET: usize = 10;

struct Cell {
    rounds: usize,
    plain_bytes: u64,
    dedup_bytes: u64,
    restore_full_chain: std::time::Duration,
    records_after: usize,
    restore_after: std::time::Duration,
}

/// Builds a `rounds`-long history through the manager and measures it.
/// Returns (committed bytes before maintain, restore latency before,
/// records after maintain, restore latency after).
fn run(rounds: usize, dedup: bool) -> (u64, std::time::Duration, usize, std::time::Duration) {
    let mut world = SynthWorld::build(SynthConfig {
        structures: 1000,
        lists_per_structure: 5,
        list_len: 5,
        ints_per_element: 10,
        seed: 41,
    })
    .expect("world builds");
    let roots = world.roots().to_vec();
    let registry = world.heap().registry().clone();
    let table = MethodTable::derive(world.heap().registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let config = LifecycleConfig {
        durable: DurableConfig { segment_target_bytes: 1024 * 1024 },
        policy: RetentionPolicy { budget: BUDGET },
        dedup,
    };
    let mut mgr = CheckpointManager::create(MemFs::new(), config, &registry).expect("create");
    for round in 0..rounds {
        if round % 16 == 0 {
            world.heap_mut().mark_all_modified();
        } else {
            // One hot list per structure; the other four are the stable
            // subtrees each periodic full re-encodes byte-identically.
            world.apply_modifications(&ModificationSpec {
                pct_modified: 20,
                modified_lists: 1,
                last_only: false,
            });
        }
        let record = ckp.checkpoint(world.heap_mut(), &table, &roots).expect("checkpoint");
        mgr.append(&record).expect("append");
    }
    let bytes = mgr.store().committed_bytes();
    let time_restore = |mgr: &CheckpointManager<MemFs>| {
        median(
            (0..SAMPLES)
                .map(|_| {
                    let start = Instant::now();
                    let restored = mgr.restore_latest().expect("restore");
                    let d = start.elapsed();
                    assert!(!restored.is_empty());
                    d
                })
                .collect(),
        )
    };
    let before = time_restore(&mgr);
    mgr.maintain().expect("maintain");
    let after = time_restore(&mgr);
    (bytes, before, mgr.chain().len(), after)
}

fn main() {
    println!("# lifecycle — chain length vs restore latency vs bytes stored (budget {BUDGET})\n");
    println!(
        "{:<8} {:>12} {:>12} {:>7} {:>14} {:>14} {:>10}",
        "rounds", "plain", "deduped", "saved", "restore(chain)", "restore(kept)", "kept"
    );
    let mut cells = Vec::new();
    for rounds in [8usize, 16, 32, 64] {
        let (plain_bytes, _, _, _) = run(rounds, false);
        let (dedup_bytes, restore_full_chain, records_after, restore_after) = run(rounds, true);
        cells.push(Cell {
            rounds,
            plain_bytes,
            dedup_bytes,
            restore_full_chain,
            records_after,
            restore_after,
        });
    }
    for c in &cells {
        println!(
            "{:<8} {:>12} {:>12} {:>6.1}% {:>14} {:>14} {:>10}",
            c.rounds,
            fmt_bytes(c.plain_bytes as usize),
            fmt_bytes(c.dedup_bytes as usize),
            100.0 * (c.plain_bytes.saturating_sub(c.dedup_bytes)) as f64
                / c.plain_bytes.max(1) as f64,
            fmt_duration(c.restore_full_chain),
            fmt_duration(c.restore_after),
            c.records_after,
        );
    }
    println!(
        "\nretention holds the kept-record count at O(log rounds) (≤ budget {BUDGET}), so \
         restore latency flattens while the plain chain's grows with its length; dedup \
         absorbs the recurring full checkpoints."
    );
}
