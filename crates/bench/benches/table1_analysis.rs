//! Bench tracking for Table 1: per-iteration checkpoint cost of the
//! program-analysis engine, per strategy, at a typical mid-phase dirty
//! fraction.

use ickp_analysis::{AnalysisEngine, Division, Phase};
use ickp_bench::BenchGroup;
use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
use ickp_minic::parse;
use ickp_minic::programs::image_program_source;
use ickp_spec::{GuardMode, SpecializedCheckpointer};
use std::time::{Duration, Instant};

/// Builds an engine that has completed SE + BTA, with clean flags.
fn prepared_engine() -> AnalysisEngine {
    let program = parse(&image_program_source(10)).expect("program parses");
    let mut engine = AnalysisEngine::new(
        program,
        Division { dynamic_globals: vec!["image".into(), "work".into()] },
    )
    .expect("engine builds");
    engine.run_phase(Phase::SideEffect, |_, _, _| Ok(())).expect("SE");
    engine.run_phase(Phase::BindingTime, |_, _, _| Ok(())).expect("BTA");
    engine.heap_mut().reset_all_modified();
    engine
}

/// Dirties roughly 10% of the BT annotations (a mid-phase iteration).
fn dirty_fraction(engine: &mut AnalysisEngine, toggle: &mut i32) {
    *toggle += 1;
    let schema = *engine.schema();
    let roots = engine.roots().to_vec();
    for (i, &attrs) in roots.iter().enumerate() {
        if i % 10 == 0 {
            schema.set_bt_ann(engine.heap_mut(), attrs, 100 + *toggle).expect("set ann");
        }
    }
}

fn main() {
    let mut group = BenchGroup::new("table1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));

    {
        let mut engine = prepared_engine();
        let table = MethodTable::derive(engine.heap().registry());
        let roots = engine.roots().to_vec();
        let mut toggle = 0;
        group.bench_custom("bta-iteration/full", |iters| {
            let mut total = Duration::ZERO;
            let mut ckp = Checkpointer::new(CheckpointConfig::full());
            for _ in 0..iters {
                dirty_fraction(&mut engine, &mut toggle);
                let start = Instant::now();
                ckp.checkpoint(engine.heap_mut(), &table, &roots).expect("checkpoint");
                total += start.elapsed();
            }
            total
        });
    }

    {
        let mut engine = prepared_engine();
        let table = MethodTable::derive(engine.heap().registry());
        let roots = engine.roots().to_vec();
        let mut toggle = 0;
        group.bench_custom("bta-iteration/incremental", |iters| {
            let mut total = Duration::ZERO;
            let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
            for _ in 0..iters {
                dirty_fraction(&mut engine, &mut toggle);
                let start = Instant::now();
                ckp.checkpoint(engine.heap_mut(), &table, &roots).expect("checkpoint");
                total += start.elapsed();
            }
            total
        });
    }

    {
        let mut engine = prepared_engine();
        let plans = engine.compile_phase_plans().expect("plans compile");
        let plan = plans.plan(Phase::BindingTime.key()).expect("bta plan");
        let roots = engine.roots().to_vec();
        let mut toggle = 0;
        group.bench_custom("bta-iteration/specialized", |iters| {
            let mut total = Duration::ZERO;
            let mut ckp = SpecializedCheckpointer::new(GuardMode::Trusting);
            for _ in 0..iters {
                dirty_fraction(&mut engine, &mut toggle);
                let start = Instant::now();
                ckp.checkpoint(engine.heap_mut(), plan, &roots, None).expect("checkpoint");
                total += start.elapsed();
            }
            total
        });
    }

    group.finish();
}
