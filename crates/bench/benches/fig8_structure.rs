//! Criterion tracking for Figure 8: structure specialization vs the
//! generic incremental checkpointer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ickp_bench::{SynthRunner, Variant};
use ickp_synth::ModificationSpec;
use std::time::Duration;

const STRUCTURES: usize = 2_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    for (len, ints, pct) in [(5usize, 1usize, 25u8), (5, 10, 100), (1, 1, 100)] {
        let mut runner = SynthRunner::new(STRUCTURES, len, ints);
        let mods = ModificationSpec { pct_modified: pct, modified_lists: 5, last_only: false };
        let label = format!("len{len}_ints{ints}_pct{pct}");
        group.bench_function(BenchmarkId::new("incremental", &label), |b| {
            b.iter_custom(|iters| runner.time_rounds(Variant::Incremental, &mods, iters as usize))
        });
        group.bench_function(BenchmarkId::new("spec-structure", &label), |b| {
            b.iter_custom(|iters| {
                runner.time_rounds(Variant::SpecStructure, &mods, iters as usize)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
