//! Bench tracking for Figure 8: structure specialization vs the generic
//! incremental checkpointer.

use ickp_bench::{BenchGroup, SynthRunner, Variant};
use ickp_synth::ModificationSpec;
use std::time::Duration;

const STRUCTURES: usize = 2_000;

fn main() {
    let mut group = BenchGroup::new("fig8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    for (len, ints, pct) in [(5usize, 1usize, 25u8), (5, 10, 100), (1, 1, 100)] {
        let mut runner = SynthRunner::new(STRUCTURES, len, ints);
        let mods = ModificationSpec { pct_modified: pct, modified_lists: 5, last_only: false };
        let label = format!("len{len}_ints{ints}_pct{pct}");
        group.bench_custom(&format!("incremental/{label}"), |iters| {
            runner.time_rounds(Variant::Incremental, &mods, iters as usize)
        });
        group.bench_custom(&format!("spec-structure/{label}"), |iters| {
            runner.time_rounds(Variant::SpecStructure, &mods, iters as usize)
        });
    }
    group.finish();
}
