//! Bench tracking for Figure 9: specialization w.r.t. the set of lists
//! that may contain modified elements.

use ickp_bench::{BenchGroup, SynthRunner, Variant};
use ickp_synth::ModificationSpec;
use std::time::Duration;

const STRUCTURES: usize = 2_000;

fn main() {
    let mut group = BenchGroup::new("fig9");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    let mut runner = SynthRunner::new(STRUCTURES, 5, 1);
    for k in [1usize, 3, 5] {
        let mods = ModificationSpec { pct_modified: 50, modified_lists: k, last_only: false };
        let label = format!("lists{k}_pct50");
        group.bench_custom(&format!("incremental/{label}"), |iters| {
            runner.time_rounds(Variant::Incremental, &mods, iters as usize)
        });
        group.bench_custom(&format!("spec-lists/{label}"), |iters| {
            runner.time_rounds(Variant::SpecModifiedLists, &mods, iters as usize)
        });
    }
    group.finish();
}
