//! Group-commit amortization: how many fsyncs does a checkpoint cost
//! once the durable store batches records per manifest swap?
//!
//! Appends the same pre-built record stream at batch sizes 1, 2, 4, 8
//! and 16 through three sinks:
//!
//! * `memfs/batch-N` — the durable store over the deterministic
//!   in-memory filesystem: protocol cost only, plus the exact fsync
//!   count from [`DurableStore::io_stats`];
//! * `stdfs/batch-N` — a real temp directory with genuine fsyncs: the
//!   latency a deployment sees;
//! * `replicated/batch-N` — a two-node [`ReplicaPair`] over a perfect
//!   in-process link, so the shipping + follower-apply overhead is
//!   visible against the single-node numbers.
//!
//! The printed `fsyncs/record` column is deterministic (the same
//! arithmetic the `repro replicate` CI gate checks): one batch is one
//! segment sync + one manifest sync + one directory sync, so the ratio
//! falls from 3.0 at batch 1 to below 1.0 from batch 4 up.

use ickp_bench::BenchGroup;
use ickp_core::{CheckpointConfig, CheckpointRecord, Checkpointer, MethodTable};
use ickp_durable::{DurableConfig, DurableStore, MemFs, StdFs};
use ickp_replicate::{ChannelTransport, ReplicaPair, ReplicateConfig, TransportPlan};
use ickp_synth::{ModificationSpec, SynthConfig, SynthWorld};
use std::time::{Duration, Instant};

const BATCH_SIZES: [usize; 5] = [1, 2, 4, 8, 16];

/// A realistic record stream: one full base plus incremental rounds.
fn build_records(rounds: usize) -> (ickp_heap::ClassRegistry, Vec<CheckpointRecord>) {
    let mut world = SynthWorld::build(SynthConfig {
        structures: 400,
        lists_per_structure: 5,
        list_len: 5,
        ints_per_element: 2,
        seed: 43,
    })
    .expect("world builds");
    let registry = world.heap().registry().clone();
    let roots = world.roots().to_vec();
    let table = MethodTable::derive(world.heap().registry());
    let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
    let mut records = Vec::new();
    world.heap_mut().mark_all_modified();
    for round in 0..rounds {
        if round > 0 {
            world.apply_modifications(&ModificationSpec::uniform(20));
        }
        records.push(ckp.checkpoint(world.heap_mut(), &table, &roots).expect("checkpoint"));
    }
    (registry, records)
}

/// Re-sequences `records` so each timing iteration appends the same
/// payloads with contiguous sequence numbers into a fresh store.
fn reseq(records: &[CheckpointRecord]) -> Vec<CheckpointRecord> {
    records
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, r)| {
            let (_, kind, roots, bytes, stats) = r.into_parts();
            CheckpointRecord::from_parts(i as u64, kind, roots, bytes, stats)
        })
        .collect()
}

fn main() {
    let (registry, records) = build_records(16);
    let payload: usize = records.iter().map(CheckpointRecord::len_bytes).sum();
    println!("group_commit: {} records, {} payload bytes per iteration", records.len(), payload);

    // Deterministic fsync accounting first — the table EXPERIMENTS.md
    // cites and the ratio the `repro replicate` gate enforces.
    println!("\n{:>6} {:>8} {:>8} {:>14}", "batch", "fsyncs", "swaps", "fsyncs/record");
    for batch in BATCH_SIZES {
        let config = DurableConfig { segment_target_bytes: 4 * 1024 * 1024 };
        let stream = reseq(&records);
        let mut fs = MemFs::new();
        let mut store = DurableStore::create(&mut fs, config).expect("create");
        let before = store.io_stats();
        for chunk in stream.chunks(batch) {
            store.append_batch(chunk).expect("append");
        }
        let after = store.io_stats();
        let fsyncs = after.fsyncs() - before.fsyncs();
        let swaps = after.manifest_swaps - before.manifest_swaps;
        let ratio = fsyncs as f64 / stream.len() as f64;
        println!("{batch:>6} {fsyncs:>8} {swaps:>8} {ratio:>14.3}");
    }

    let mut group = BenchGroup::new("group_commit");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for batch in BATCH_SIZES {
        group.bench_custom(&format!("memfs/batch-{batch}"), |iters| {
            let config = DurableConfig { segment_target_bytes: 4 * 1024 * 1024 };
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let stream = reseq(&records);
                let mut fs = MemFs::new();
                let mut store = DurableStore::create(&mut fs, config).expect("create");
                let start = Instant::now();
                for chunk in stream.chunks(batch) {
                    store.append_batch(chunk).expect("append");
                }
                total += start.elapsed();
            }
            total
        });
    }

    let dir = std::env::temp_dir().join(format!("ickp-group-commit-{}", std::process::id()));
    for batch in BATCH_SIZES {
        group.bench_custom(&format!("stdfs/batch-{batch}"), |iters| {
            let config = DurableConfig { segment_target_bytes: 4 * 1024 * 1024 };
            let mut total = Duration::ZERO;
            for i in 0..iters {
                let stream = reseq(&records);
                let sub = dir.join(format!("b{batch}-{i}"));
                let fs = StdFs::new(&sub).expect("temp dir");
                let mut store = DurableStore::create(fs, config).expect("create");
                let start = Instant::now();
                for chunk in stream.chunks(batch) {
                    store.append_batch(chunk).expect("append");
                }
                total += start.elapsed();
                let _ = std::fs::remove_dir_all(&sub);
            }
            total
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Two-node replication over a perfect link: the same stream, every
    // batch group-committed on the primary, shipped, applied, acked.
    for batch in BATCH_SIZES {
        group.bench_custom(&format!("replicated/batch-{batch}"), |iters| {
            let config = ReplicateConfig {
                durable: DurableConfig { segment_target_bytes: 4 * 1024 * 1024 },
                batch_records: batch,
                ..ReplicateConfig::default()
            };
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let stream = reseq(&records);
                let mut pair = ReplicaPair::create(
                    MemFs::new(),
                    MemFs::new(),
                    ChannelTransport::new(TransportPlan::none()),
                    config,
                    &registry,
                )
                .expect("pair");
                let start = Instant::now();
                for r in stream {
                    pair.append(r).expect("append");
                }
                pair.commit().expect("commit");
                total += start.elapsed();
                assert_eq!(pair.acked_records(), records.len() as u64);
            }
            total
        });
    }

    group.finish();
}
