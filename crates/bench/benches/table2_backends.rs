//! Bench tracking for Table 2: absolute checkpoint times across all
//! three engines, unspecialized and specialized (10 ints per element),
//! plus the parallel sharded engine as a fourth implementation point.

use ickp_backend::Engine;
use ickp_bench::{BenchGroup, SynthRunner, Variant};
use ickp_synth::ModificationSpec;
use std::time::Duration;

const STRUCTURES: usize = 2_000;

fn main() {
    let mut group = BenchGroup::new("table2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    let mods = ModificationSpec { pct_modified: 50, modified_lists: 5, last_only: true };
    let mut runner = SynthRunner::new(STRUCTURES, 5, 10);
    for engine in Engine::ALL {
        group.bench_custom(&format!("unspec/{engine}"), |iters| {
            runner.time_rounds(Variant::EngineGeneric(engine), &mods, iters as usize)
        });
        group.bench_custom(&format!("spec/{engine}"), |iters| {
            runner.time_rounds(Variant::EngineSpecLastOnly(engine), &mods, iters as usize)
        });
    }
    for workers in [1usize, 4] {
        group.bench_custom(&format!("parallel/{workers}workers"), |iters| {
            runner.time_rounds(Variant::Parallel(workers), &mods, iters as usize)
        });
    }
    group.finish();
}
