//! Criterion tracking for Table 2: absolute checkpoint times across all
//! three engines, unspecialized and specialized (10 ints per element).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ickp_backend::Engine;
use ickp_bench::{SynthRunner, Variant};
use ickp_synth::ModificationSpec;
use std::time::Duration;

const STRUCTURES: usize = 2_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400));
    let mods = ModificationSpec { pct_modified: 50, modified_lists: 5, last_only: true };
    let mut runner = SynthRunner::new(STRUCTURES, 5, 10);
    for engine in Engine::ALL {
        let label = format!("{engine}");
        group.bench_function(BenchmarkId::new("unspec", &label), |b| {
            b.iter_custom(|iters| {
                runner.time_rounds(Variant::EngineGeneric(engine), &mods, iters as usize)
            })
        });
        group.bench_function(BenchmarkId::new("spec", &label), |b| {
            b.iter_custom(|iters| {
                runner.time_rounds(Variant::EngineSpecLastOnly(engine), &mods, iters as usize)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
