//! Dirty-fraction sweep: journal fast path vs flag-testing traversal.
//!
//! The dirty-set journal makes incremental checkpoint cost O(modified)
//! instead of O(reachable). This bench sweeps the fraction of the heap
//! dirtied per round — 0%, 1%, 10%, 50%, 100% — and times the generic
//! incremental driver with the journal on (`journal/...`) and pinned off
//! (`traversal/...`). Results are recorded in EXPERIMENTS.md; the win is
//! largest at small fractions, where traversal visits everything to
//! record almost nothing.

use ickp_bench::{BenchGroup, SynthRunner, Variant};
use ickp_synth::ModificationSpec;
use std::time::Duration;

const STRUCTURES: usize = 2_000;
const LIST_LEN: usize = 5;
const INTS: usize = 1;

fn main() {
    let mut group = BenchGroup::new("dirty_fraction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for pct in [0u8, 1, 10, 50, 100] {
        let mods = ModificationSpec::uniform(pct);
        let mut runner = SynthRunner::new(STRUCTURES, LIST_LEN, INTS);
        group.bench_custom(&format!("traversal/pct{pct}"), |iters| {
            runner.time_rounds(Variant::IncrementalNoJournal, &mods, iters as usize)
        });
        let mut runner = SynthRunner::new(STRUCTURES, LIST_LEN, INTS);
        group.bench_custom(&format!("journal/pct{pct}"), |iters| {
            runner.time_rounds(Variant::Incremental, &mods, iters as usize)
        });
    }
    group.finish();
}
