//! Evaluation-time analysis: when does each statement actually execute,
//! and are the variables the specialized program references properly
//! initialized?
//!
//! Following the paper (§4.1, citing Hornof & Noyé): after binding-time
//! analysis has split the program, the specializer will *execute* the
//! static statements at specialization time and *residualize* the dynamic
//! ones. A statement classified static by BTA can still be forced to run
//! time if it reads a variable that some run-time statement initializes —
//! evaluating it early would read uninitialized state. This analysis
//! computes that fixpoint: per-variable initialization times feed
//! per-statement evaluation times and vice versa, so it takes a few
//! passes to converge (fewer than BTA, as the paper also observes).

use crate::bta::Bt;
use crate::vars::VarIndex;
use ickp_minic::{Block, Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind};
use std::collections::HashMap;

/// An evaluation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Et {
    /// Executed by the specializer.
    SpecTime,
    /// Residualized into the specialized program.
    RunTime,
}

impl Et {
    /// Lattice join (`RunTime` absorbs).
    pub fn join(self, other: Et) -> Et {
        if self == Et::RunTime || other == Et::RunTime {
            Et::RunTime
        } else {
            Et::SpecTime
        }
    }

    /// Annotation integer stored in the heap `ET` object.
    pub fn ann(self) -> i32 {
        match self {
            Et::SpecTime => 0,
            Et::RunTime => 1,
        }
    }
}

/// The evaluation-time analysis state.
#[derive(Debug)]
pub struct EvalTimeAnalysis {
    /// When each variable is (last) initialized.
    var_init: HashMap<u32, Et>,
    /// Join of each function's statement evaluation times.
    fn_et: HashMap<String, Et>,
}

impl EvalTimeAnalysis {
    /// Creates the analysis.
    pub fn new() -> EvalTimeAnalysis {
        EvalTimeAnalysis { var_init: HashMap::new(), fn_et: HashMap::new() }
    }

    /// Runs one fixpoint pass given the (final) binding-time annotations.
    /// Returns per-statement evaluation times and whether anything
    /// changed.
    pub fn pass(
        &mut self,
        program: &Program,
        bt_anns: &[Bt],
        vars: &mut VarIndex,
    ) -> (Vec<Et>, bool) {
        let mut changed = false;
        let mut anns = vec![Et::SpecTime; program.stmt_count as usize];
        for func in &program.functions {
            let mut w =
                Walker { eta: self, vars, func, bt_anns, changed: &mut changed, anns: &mut anns };
            w.block(&func.body);
        }
        (anns, changed)
    }
}

impl Default for EvalTimeAnalysis {
    fn default() -> EvalTimeAnalysis {
        EvalTimeAnalysis::new()
    }
}

struct Walker<'a> {
    eta: &'a mut EvalTimeAnalysis,
    vars: &'a mut VarIndex,
    func: &'a Function,
    bt_anns: &'a [Bt],
    changed: &'a mut bool,
    anns: &'a mut Vec<Et>,
}

impl<'a> Walker<'a> {
    fn var_id(&mut self, name: &str) -> u32 {
        let is_local =
            self.func.params.iter().any(|p| p.name == name) || declares(&self.func.body, name);
        if is_local {
            self.vars.intern(&VarIndex::local_key(&self.func.name, name))
        } else {
            self.vars.intern(&VarIndex::global_key(name))
        }
    }

    fn reads_et(&mut self, e: &Expr) -> Et {
        match &e.kind {
            ExprKind::IntLit(_) => Et::SpecTime,
            ExprKind::Var(name) => {
                let id = self.var_id(name);
                self.eta.var_init.get(&id).copied().unwrap_or(Et::SpecTime)
            }
            ExprKind::Index { array, index } => {
                let id = self.var_id(array);
                let a = self.eta.var_init.get(&id).copied().unwrap_or(Et::SpecTime);
                a.join(self.reads_et(index))
            }
            ExprKind::Assign { target, value } => {
                let mut et = self.reads_et(value);
                if let LValue::Index { index, .. } = target {
                    et = et.join(self.reads_et(index));
                }
                et
            }
            ExprKind::Binary { lhs, rhs, .. } => self.reads_et(lhs).join(self.reads_et(rhs)),
            ExprKind::Unary { expr, .. } => self.reads_et(expr),
            ExprKind::Call { name, args } => {
                let mut et = self.eta.fn_et.get(name).copied().unwrap_or(Et::SpecTime);
                for a in args {
                    et = et.join(self.reads_et(a));
                }
                et
            }
        }
    }

    fn record_writes(&mut self, e: &Expr, et: Et) {
        match &e.kind {
            ExprKind::Assign { target, value } => {
                let name = match target {
                    LValue::Var(n) => n,
                    LValue::Index { array, .. } => array,
                };
                let id = self.var_id(name);
                let old = self.eta.var_init.get(&id).copied().unwrap_or(Et::SpecTime);
                let new = old.join(et);
                if new != old {
                    self.eta.var_init.insert(id, new);
                    *self.changed = true;
                }
                self.record_writes(value, et);
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.record_writes(lhs, et);
                self.record_writes(rhs, et);
            }
            ExprKind::Unary { expr, .. } => self.record_writes(expr, et),
            ExprKind::Index { index, .. } => self.record_writes(index, et),
            ExprKind::Call { args, .. } => {
                for a in args {
                    self.record_writes(a, et);
                }
            }
            ExprKind::IntLit(_) | ExprKind::Var(_) => {}
        }
    }

    fn raise_fn_et(&mut self, et: Et) {
        let old = self.eta.fn_et.get(&self.func.name).copied().unwrap_or(Et::SpecTime);
        let new = old.join(et);
        if new != old {
            self.eta.fn_et.insert(self.func.name.clone(), new);
            *self.changed = true;
        }
    }

    fn block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        // Base: BTA already decided whether the specializer *can* run it.
        let bt_forced = match self.bt_anns.get(stmt.id as usize) {
            Some(Bt::Dynamic) => Et::RunTime,
            _ => Et::SpecTime,
        };
        let et = match &stmt.kind {
            StmtKind::Expr(e) => {
                let et = bt_forced.join(self.reads_et(e));
                self.record_writes(e, et);
                et
            }
            StmtKind::Decl { init, .. } => match init {
                Some(e) => bt_forced.join(self.reads_et(e)),
                None => bt_forced,
            },
            StmtKind::If { cond, then_branch, else_branch } => {
                let et = bt_forced.join(self.reads_et(cond));
                self.block(then_branch);
                if let Some(e) = else_branch {
                    self.block(e);
                }
                et
            }
            StmtKind::While { cond, body } => {
                let et = bt_forced.join(self.reads_et(cond));
                self.block(body);
                et
            }
            StmtKind::For { init, cond, step, body } => {
                let mut et = bt_forced;
                for e in [init, cond, step].into_iter().flatten() {
                    et = et.join(self.reads_et(e));
                }
                if let Some(e) = init {
                    self.record_writes(e, et);
                }
                if let Some(e) = step {
                    self.record_writes(e, et);
                }
                self.block(body);
                et
            }
            StmtKind::Return(value) => match value {
                Some(e) => bt_forced.join(self.reads_et(e)),
                None => bt_forced,
            },
            StmtKind::Break | StmtKind::Continue => bt_forced,
            StmtKind::Block(b) => {
                self.block(b);
                bt_forced
            }
        };
        self.raise_fn_et(et);
        self.anns[stmt.id as usize] = et;
    }
}

fn declares(block: &Block, name: &str) -> bool {
    block.stmts.iter().any(|s| match &s.kind {
        StmtKind::Decl { name: n, .. } => n == name,
        StmtKind::If { then_branch, else_branch, .. } => {
            declares(then_branch, name) || else_branch.as_ref().is_some_and(|b| declares(b, name))
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => declares(body, name),
        StmtKind::Block(b) => declares(b, name),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bta::{BindingTimeAnalysis, Division};
    use ickp_minic::parse;

    fn analyze(src: &str, dynamic: &[&str]) -> (Vec<Et>, usize) {
        let p = parse(src).unwrap();
        let mut vars = VarIndex::new();
        let mut bta = BindingTimeAnalysis::new(Division {
            dynamic_globals: dynamic.iter().map(|s| s.to_string()).collect(),
        });
        let bt_anns = loop {
            let (anns, changed) = bta.pass(&p, &mut vars);
            if !changed {
                break anns;
            }
        };
        let mut eta = EvalTimeAnalysis::new();
        let mut iters = 0;
        loop {
            iters += 1;
            let (anns, changed) = eta.pass(&p, &bt_anns, &mut vars);
            assert!(iters < 50, "ETA diverged");
            if !changed {
                return (anns, iters);
            }
        }
    }

    #[test]
    fn static_statements_evaluate_at_spec_time() {
        let (anns, _) = analyze("int s; void f() { s = 1 + 2; }", &[]);
        assert_eq!(anns[0], Et::SpecTime);
    }

    #[test]
    fn dynamic_statements_are_residualized() {
        let (anns, _) = analyze("int d; int s; void f() { s = d; }", &["d"]);
        assert_eq!(anns[0], Et::RunTime);
    }

    #[test]
    fn reading_a_runtime_initialized_variable_forces_runtime() {
        // `t = d` runs at run time, so `u = t + 1` cannot execute early
        // even though BTA alone also marks it dynamic through t; the key
        // observable is the var_init feedback converging.
        let (anns, iters) = analyze("int d; int t; int u; void f() { t = d; u = t + 1; }", &["d"]);
        assert_eq!(anns[1], Et::RunTime);
        assert!(iters >= 1);
    }

    #[test]
    fn initialization_feedback_crosses_functions() {
        let (anns, _) = analyze(
            "int d; int t; int u;
             void produce() { t = d; }
             void consume() { u = t; }
             void main() { produce(); consume(); }",
            &["d"],
        );
        // `consume`'s body reads t (runtime-initialized): RunTime.
        assert_eq!(anns[1], Et::RunTime);
    }

    #[test]
    fn eta_converges_in_fewer_passes_than_a_long_bta_chain() {
        let (_, iters) = analyze(
            "int d; int a; int b; int c;
             void f() { a = d; b = a; c = b; }",
            &["d"],
        );
        assert!(iters <= 4, "got {iters}");
    }

    #[test]
    fn annotations_cover_every_statement() {
        let src = "int d; void f() { int x; x = 1; while (x) { x = x - 1; } }";
        let p = parse(src).unwrap();
        let (anns, _) = analyze(src, &["d"]);
        assert_eq!(anns.len(), p.stmt_count as usize);
    }
}
