//! Side-effect analysis: which globals each statement reads and writes.
//!
//! This is the first phase of the paper's analysis engine. Function
//! summaries (the globals a function touches, transitively through its
//! callees) are computed by fixpoint iteration over the call graph; each
//! [`SideEffectAnalysis::pass`] is one iteration, after which the engine
//! takes a checkpoint. Per-statement read/write sets — the lists stored in
//! each `SEEntry` — combine the statement's direct accesses with the
//! summaries of the functions it calls.
//!
//! Arrays passed as call arguments are handled conservatively: the call
//! statement is charged a read *and* a write of the argument array (the
//! callee may do either through the alias).

use crate::vars::VarIndex;
use ickp_minic::{Block, Expr, ExprKind, LValue, Program, Stmt, StmtKind, Type};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Read/write sets of global variables, as sorted id sets.
pub type Effects = (BTreeSet<u32>, BTreeSet<u32>);

/// The side-effect analysis state (function summaries).
#[derive(Debug, Default)]
pub struct SideEffectAnalysis {
    summaries: HashMap<String, Effects>,
}

impl SideEffectAnalysis {
    /// Creates an analysis with empty summaries.
    pub fn new() -> SideEffectAnalysis {
        SideEffectAnalysis::default()
    }

    /// Runs one fixpoint pass over all function summaries. Returns `true`
    /// if any summary grew (another pass is needed).
    pub fn pass(&mut self, program: &Program, vars: &mut VarIndex) -> bool {
        let globals: HashSet<&str> = program.globals.iter().map(|g| g.name.as_str()).collect();
        let mut changed = false;
        for func in &program.functions {
            let mut reads = BTreeSet::new();
            let mut writes = BTreeSet::new();
            collect_block(
                &func.body,
                program,
                &globals,
                &self.summaries,
                vars,
                &mut reads,
                &mut writes,
            );
            let entry = self.summaries.entry(func.name.clone()).or_default();
            if entry.0 != reads || entry.1 != writes {
                *entry = (reads, writes);
                changed = true;
            }
        }
        changed
    }

    /// The current summary of a function.
    pub fn summary(&self, func: &str) -> Option<&Effects> {
        self.summaries.get(func)
    }

    /// Per-statement effects under the current summaries, indexed by
    /// statement id.
    pub fn stmt_effects(&self, program: &Program, vars: &mut VarIndex) -> Vec<Effects> {
        let globals: HashSet<&str> = program.globals.iter().map(|g| g.name.as_str()).collect();
        let mut out = vec![Effects::default(); program.stmt_count as usize];
        program.for_each_stmt(&mut |stmt| {
            let mut reads = BTreeSet::new();
            let mut writes = BTreeSet::new();
            direct_stmt_effects(
                stmt,
                program,
                &globals,
                &self.summaries,
                vars,
                &mut reads,
                &mut writes,
            );
            out[stmt.id as usize] = (reads, writes);
        });
        out
    }
}

fn collect_block(
    block: &Block,
    program: &Program,
    globals: &HashSet<&str>,
    summaries: &HashMap<String, Effects>,
    vars: &mut VarIndex,
    reads: &mut BTreeSet<u32>,
    writes: &mut BTreeSet<u32>,
) {
    for stmt in &block.stmts {
        direct_stmt_effects(stmt, program, globals, summaries, vars, reads, writes);
        match &stmt.kind {
            StmtKind::If { then_branch, else_branch, .. } => {
                collect_block(then_branch, program, globals, summaries, vars, reads, writes);
                if let Some(e) = else_branch {
                    collect_block(e, program, globals, summaries, vars, reads, writes);
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                collect_block(body, program, globals, summaries, vars, reads, writes)
            }
            StmtKind::Block(b) => {
                collect_block(b, program, globals, summaries, vars, reads, writes)
            }
            _ => {}
        }
    }
}

/// Effects of the statement *itself* (conditions, initializers, its own
/// expression), not of statements nested in its blocks.
fn direct_stmt_effects(
    stmt: &Stmt,
    program: &Program,
    globals: &HashSet<&str>,
    summaries: &HashMap<String, Effects>,
    vars: &mut VarIndex,
    reads: &mut BTreeSet<u32>,
    writes: &mut BTreeSet<u32>,
) {
    let mut go = |e: &Expr| expr_effects(e, program, globals, summaries, vars, reads, writes);
    match &stmt.kind {
        StmtKind::Expr(e) => go(e),
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                go(e)
            }
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => go(cond),
        StmtKind::For { init, cond, step, .. } => {
            for e in [init, cond, step].into_iter().flatten() {
                go(e);
            }
        }
        StmtKind::Return(Some(e)) => go(e),
        StmtKind::Return(None) | StmtKind::Block(_) | StmtKind::Break | StmtKind::Continue => {}
    }
}

fn expr_effects(
    e: &Expr,
    program: &Program,
    globals: &HashSet<&str>,
    summaries: &HashMap<String, Effects>,
    vars: &mut VarIndex,
    reads: &mut BTreeSet<u32>,
    writes: &mut BTreeSet<u32>,
) {
    match &e.kind {
        ExprKind::IntLit(_) => {}
        ExprKind::Var(name) => {
            if globals.contains(name.as_str()) {
                reads.insert(vars.intern(name));
            }
        }
        ExprKind::Index { array, index } => {
            if globals.contains(array.as_str()) {
                reads.insert(vars.intern(array));
            }
            expr_effects(index, program, globals, summaries, vars, reads, writes);
        }
        ExprKind::Assign { target, value } => {
            match target {
                LValue::Var(name) => {
                    if globals.contains(name.as_str()) {
                        writes.insert(vars.intern(name));
                    }
                }
                LValue::Index { array, index } => {
                    if globals.contains(array.as_str()) {
                        writes.insert(vars.intern(array));
                    }
                    expr_effects(index, program, globals, summaries, vars, reads, writes);
                }
            }
            expr_effects(value, program, globals, summaries, vars, reads, writes);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_effects(lhs, program, globals, summaries, vars, reads, writes);
            expr_effects(rhs, program, globals, summaries, vars, reads, writes);
        }
        ExprKind::Unary { expr, .. } => {
            expr_effects(expr, program, globals, summaries, vars, reads, writes);
        }
        ExprKind::Call { name, args } => {
            // Scalar arguments: ordinary reads. Array arguments: the call
            // may read or write the aliased array — charge both.
            let params = program.function(name).map(|f| f.params.as_slice()).unwrap_or(&[]);
            for (i, arg) in args.iter().enumerate() {
                let is_array_param = params.get(i).is_some_and(|p| p.ty == Type::IntArray);
                if is_array_param {
                    if let ExprKind::Var(n) = &arg.kind {
                        if globals.contains(n.as_str()) {
                            let id = vars.intern(n);
                            reads.insert(id);
                            writes.insert(id);
                        }
                    }
                } else {
                    expr_effects(arg, program, globals, summaries, vars, reads, writes);
                }
            }
            if let Some((r, w)) = summaries.get(name) {
                reads.extend(r.iter().copied());
                writes.extend(w.iter().copied());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_minic::parse;

    fn fix(program: &Program) -> (SideEffectAnalysis, VarIndex, usize) {
        let mut se = SideEffectAnalysis::new();
        let mut vars = VarIndex::new();
        let mut iters = 0;
        while se.pass(program, &mut vars) {
            iters += 1;
            assert!(iters < 50, "side-effect analysis diverged");
        }
        (se, vars, iters)
    }

    #[test]
    fn direct_reads_and_writes_are_found() {
        let p = parse("int a; int b; void f() { a = b + 1; }").unwrap();
        let (se, vars, _) = fix(&p);
        let (r, w) = se.summary("f").unwrap();
        assert_eq!(r.iter().map(|&v| vars.name(v).unwrap()).collect::<Vec<_>>(), ["b"]);
        assert_eq!(w.iter().map(|&v| vars.name(v).unwrap()).collect::<Vec<_>>(), ["a"]);
    }

    #[test]
    fn locals_are_not_side_effects() {
        let p = parse("void f() { int x; x = 3; }").unwrap();
        let (se, _, _) = fix(&p);
        let (r, w) = se.summary("f").unwrap();
        assert!(r.is_empty() && w.is_empty());
    }

    #[test]
    fn effects_propagate_through_calls_transitively() {
        let p = parse(
            "int g;
             void h() { g = 1; }
             void m() { h(); }
             void top() { m(); }",
        )
        .unwrap();
        let (se, vars, _) = fix(&p);
        let g = vars.get("g").unwrap();
        assert!(se.summary("top").unwrap().1.contains(&g));
    }

    #[test]
    fn fixpoint_handles_recursion() {
        let p = parse(
            "int g;
             void a() { g = g + 1; b(); }
             void b() { a(); }",
        )
        .unwrap();
        let (se, vars, _) = fix(&p);
        let g = vars.get("g").unwrap();
        assert!(se.summary("b").unwrap().0.contains(&g));
        assert!(se.summary("b").unwrap().1.contains(&g));
    }

    #[test]
    fn array_arguments_are_charged_read_and_write() {
        let p = parse(
            "int buf[4];
             void use(int a[]) { }
             void f() { use(buf); }",
        )
        .unwrap();
        let (se, vars, _) = fix(&p);
        let buf = vars.get("buf").unwrap();
        let (r, w) = se.summary("f").unwrap();
        assert!(r.contains(&buf) && w.contains(&buf));
    }

    #[test]
    fn per_statement_effects_index_by_stmt_id() {
        let p = parse(
            "int g; int h;
             void f() { g = 1; h = g; if (g > 0) { h = 2; } }",
        )
        .unwrap();
        let (se, mut vars, _) = fix(&p);
        let effects = se.stmt_effects(&p, &mut vars);
        let g = vars.get("g").unwrap();
        let h = vars.get("h").unwrap();
        // stmt 0: g = 1
        assert!(effects[0].1.contains(&g) && effects[0].0.is_empty());
        // stmt 1: h = g
        assert!(effects[1].0.contains(&g) && effects[1].1.contains(&h));
        // stmt 2 (the if): reads g in its condition, writes nothing itself
        assert!(effects[2].0.contains(&g) && effects[2].1.is_empty());
        // stmt 3 (h = 2): writes h
        assert!(effects[3].1.contains(&h));
    }

    #[test]
    fn call_graph_depth_drives_iteration_count() {
        // A chain of k calls needs ~k passes to converge when callees are
        // defined (and thus summarized) after their callers.
        let p = parse(
            "int g;
             void f3() { f2(); }
             void f2() { f1(); }
             void f1() { f0(); }
             void f0() { g = 1; }",
        )
        .unwrap();
        let (_, _, iters) = fix(&p);
        assert!(iters >= 3, "expected multiple passes, got {iters}");
    }
}
