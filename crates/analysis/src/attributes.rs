//! The heap-backed `Attributes` structure (paper Figure 4).
//!
//! Each analyzed statement owns one `Attributes` object with one field per
//! analysis phase:
//!
//! ```text
//! Attributes ── se ──► SEEntry ── rd ──► VarNode ─► VarNode ─► …
//!            │                 └─ wr ──► VarNode ─► …
//!            ├─ bt ──► BTEntry ── bt ──► BT(ann)
//!            └─ et ──► ETEntry ── et ──► ET(ann)
//! ```
//!
//! Side-effect results are *lists* (the variables read and written);
//! binding-time and evaluation-time results are single annotations —
//! exactly the asymmetry the paper exploits ("side-effect analysis
//! collects sets of variables, while binding-time analysis and
//! evaluation-time analysis each record only a single annotation").
//!
//! All mutation goes through this schema's setters, which only write (and
//! therefore only dirty) objects whose value actually changed — that is
//! what makes later fixpoint iterations cheap to checkpoint
//! incrementally.

use ickp_heap::{ClassId, FieldType, Heap, HeapError, ObjectId, Value};
use ickp_spec::{NodePattern, SpecShape};

/// Class ids and slot indices of the `Attributes` object family.
#[derive(Debug, Clone, Copy)]
pub struct AttributesSchema {
    /// `Attributes` class.
    pub attributes: ClassId,
    /// `SEEntry` class.
    pub se_entry: ClassId,
    /// `BTEntry` class.
    pub bt_entry: ClassId,
    /// `ETEntry` class.
    pub et_entry: ClassId,
    /// `BT` annotation class.
    pub bt: ClassId,
    /// `ET` annotation class.
    pub et: ClassId,
    /// `VarNode` list-element class.
    pub var_node: ClassId,
}

/// Slots of `Attributes`.
const ATTR_SE: usize = 0;
const ATTR_BT: usize = 1;
const ATTR_ET: usize = 2;
/// Slots of `SEEntry`.
const SE_RD: usize = 0;
const SE_WR: usize = 1;
/// Slots of `BTEntry`/`ETEntry`: a version counter plus the annotation ref.
const ENTRY_VERSION: usize = 0;
const ENTRY_CHILD: usize = 1;
/// Slot of `BT`/`ET`: the annotation value.
const ANN_VALUE: usize = 0;
/// Slots of `VarNode`.
const VAR_VALUE: usize = 0;
const VAR_NEXT: usize = 1;

impl AttributesSchema {
    /// Slot of `Attributes` holding the `SEEntry` (side-effect) subtree.
    pub const SLOT_SE: usize = ATTR_SE;
    /// Slot of `Attributes` holding the `BTEntry` (binding-time) subtree.
    pub const SLOT_BT: usize = ATTR_BT;
    /// Slot of `Attributes` holding the `ETEntry` (eval-time) subtree.
    pub const SLOT_ET: usize = ATTR_ET;
    /// Slot of `BTEntry`/`ETEntry` holding the annotation object.
    pub const SLOT_ENTRY_CHILD: usize = ENTRY_CHILD;

    /// Defines the `Attributes` class family on a heap.
    ///
    /// # Errors
    ///
    /// Fails if any of the class names are already taken.
    pub fn define(heap: &mut Heap) -> Result<AttributesSchema, HeapError> {
        let var_node = heap.define_class(
            "VarNode",
            None,
            &[("var", FieldType::Int), ("next", FieldType::Ref(None))],
        )?;
        let bt = heap.define_class("BT", None, &[("ann", FieldType::Int)])?;
        let et = heap.define_class("ET", None, &[("ann", FieldType::Int)])?;
        let se_entry = heap.define_class(
            "SEEntry",
            None,
            &[("rd", FieldType::Ref(Some(var_node))), ("wr", FieldType::Ref(Some(var_node)))],
        )?;
        let bt_entry = heap.define_class(
            "BTEntry",
            None,
            &[("version", FieldType::Int), ("bt", FieldType::Ref(Some(bt)))],
        )?;
        let et_entry = heap.define_class(
            "ETEntry",
            None,
            &[("version", FieldType::Int), ("et", FieldType::Ref(Some(et)))],
        )?;
        let attributes = heap.define_class(
            "Attributes",
            None,
            &[
                ("se", FieldType::Ref(Some(se_entry))),
                ("bt", FieldType::Ref(Some(bt_entry))),
                ("et", FieldType::Ref(Some(et_entry))),
            ],
        )?;
        Ok(AttributesSchema { attributes, se_entry, bt_entry, et_entry, bt, et, var_node })
    }

    /// Allocates a complete `Attributes` tree (empty side-effect lists,
    /// zero annotations) and returns its root.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn alloc(&self, heap: &mut Heap) -> Result<ObjectId, HeapError> {
        let bt_ann = heap.alloc(self.bt)?;
        let et_ann = heap.alloc(self.et)?;
        let se = heap.alloc(self.se_entry)?;
        let bte = heap.alloc(self.bt_entry)?;
        heap.set_field(bte, ENTRY_CHILD, Value::Ref(Some(bt_ann)))?;
        let ete = heap.alloc(self.et_entry)?;
        heap.set_field(ete, ENTRY_CHILD, Value::Ref(Some(et_ann)))?;
        let attrs = heap.alloc(self.attributes)?;
        heap.set_field(attrs, ATTR_SE, Value::Ref(Some(se)))?;
        heap.set_field(attrs, ATTR_BT, Value::Ref(Some(bte)))?;
        heap.set_field(attrs, ATTR_ET, Value::Ref(Some(ete)))?;
        Ok(attrs)
    }

    fn entry(&self, heap: &Heap, attrs: ObjectId, slot: usize) -> Result<ObjectId, HeapError> {
        heap.field(attrs, slot)?.as_ref_id().ok_or(ickp_heap::HeapError::DanglingObject(attrs))
    }

    /// Reads the binding-time annotation of a statement's attributes.
    ///
    /// # Errors
    ///
    /// Fails on dangling handles.
    pub fn bt_ann(&self, heap: &Heap, attrs: ObjectId) -> Result<i32, HeapError> {
        let bte = self.entry(heap, attrs, ATTR_BT)?;
        let ann = self.entry(heap, bte, ENTRY_CHILD)?;
        Ok(heap.field(ann, ANN_VALUE)?.as_int().unwrap_or(0))
    }

    /// Writes the binding-time annotation **only if it changed**, bumping
    /// the `BTEntry` version alongside (the two objects the paper's
    /// Figure 6 residual code records). Returns `true` if a write
    /// happened.
    ///
    /// # Errors
    ///
    /// Fails on dangling handles.
    pub fn set_bt_ann(
        &self,
        heap: &mut Heap,
        attrs: ObjectId,
        value: i32,
    ) -> Result<bool, HeapError> {
        let bte = self.entry(heap, attrs, ATTR_BT)?;
        let ann = self.entry(heap, bte, ENTRY_CHILD)?;
        if heap.field(ann, ANN_VALUE)?.as_int() == Some(value) {
            return Ok(false);
        }
        heap.set_field(ann, ANN_VALUE, Value::Int(value))?;
        let version = heap.field(bte, ENTRY_VERSION)?.as_int().unwrap_or(0);
        heap.set_field(bte, ENTRY_VERSION, Value::Int(version + 1))?;
        Ok(true)
    }

    /// Reads the evaluation-time annotation.
    ///
    /// # Errors
    ///
    /// Fails on dangling handles.
    pub fn et_ann(&self, heap: &Heap, attrs: ObjectId) -> Result<i32, HeapError> {
        let ete = self.entry(heap, attrs, ATTR_ET)?;
        let ann = self.entry(heap, ete, ENTRY_CHILD)?;
        Ok(heap.field(ann, ANN_VALUE)?.as_int().unwrap_or(0))
    }

    /// Writes the evaluation-time annotation only if it changed; returns
    /// `true` if a write happened.
    ///
    /// # Errors
    ///
    /// Fails on dangling handles.
    pub fn set_et_ann(
        &self,
        heap: &mut Heap,
        attrs: ObjectId,
        value: i32,
    ) -> Result<bool, HeapError> {
        let ete = self.entry(heap, attrs, ATTR_ET)?;
        let ann = self.entry(heap, ete, ENTRY_CHILD)?;
        if heap.field(ann, ANN_VALUE)?.as_int() == Some(value) {
            return Ok(false);
        }
        heap.set_field(ann, ANN_VALUE, Value::Int(value))?;
        let version = heap.field(ete, ENTRY_VERSION)?.as_int().unwrap_or(0);
        heap.set_field(ete, ENTRY_VERSION, Value::Int(version + 1))?;
        Ok(true)
    }

    /// Reads one of the side-effect variable lists (`wr` if `writes`).
    ///
    /// # Errors
    ///
    /// Fails on dangling handles.
    pub fn se_list(
        &self,
        heap: &Heap,
        attrs: ObjectId,
        writes: bool,
    ) -> Result<Vec<i32>, HeapError> {
        let se = self.entry(heap, attrs, ATTR_SE)?;
        let mut out = Vec::new();
        let mut cur = heap.field(se, if writes { SE_WR } else { SE_RD })?.as_ref_id();
        while let Some(node) = cur {
            out.push(heap.field(node, VAR_VALUE)?.as_int().unwrap_or(0));
            cur = heap.field(node, VAR_NEXT)?.as_ref_id();
        }
        Ok(out)
    }

    /// Replaces both side-effect lists. Old list nodes are freed (they are
    /// garbage the moment the head pointer moves). The caller is expected
    /// to skip the call when the sets did not change.
    ///
    /// # Errors
    ///
    /// Fails on dangling handles.
    pub fn set_se_lists(
        &self,
        heap: &mut Heap,
        attrs: ObjectId,
        reads: &[i32],
        writes: &[i32],
    ) -> Result<(), HeapError> {
        let se = self.entry(heap, attrs, ATTR_SE)?;
        for (slot, values) in [(SE_RD, reads), (SE_WR, writes)] {
            // Free the superseded list.
            let mut cur = heap.field(se, slot)?.as_ref_id();
            while let Some(node) = cur {
                cur = heap.field(node, VAR_NEXT)?.as_ref_id();
                heap.free(node)?;
            }
            // Build the new one back-to-front.
            let mut head: Option<ObjectId> = None;
            for &v in values.iter().rev() {
                let node = heap.alloc(self.var_node)?;
                heap.set_field(node, VAR_VALUE, Value::Int(v))?;
                heap.set_field(node, VAR_NEXT, Value::Ref(head))?;
                head = Some(node);
            }
            heap.set_field(se, slot, Value::Ref(head))?;
        }
        Ok(())
    }

    /// Structure-only specialization (paper Figure 5): every node may be
    /// modified; the variable-length side-effect lists fall back to the
    /// generic checkpointer.
    pub fn shape_structure_only(&self) -> SpecShape {
        SpecShape::object(
            self.attributes,
            NodePattern::MayModify,
            vec![
                (ATTR_SE, SpecShape::Dynamic),
                (ATTR_BT, self.entry_shape(self.bt_entry, self.bt, NodePattern::MayModify)),
                (ATTR_ET, self.entry_shape(self.et_entry, self.et, NodePattern::MayModify)),
            ],
        )
    }

    /// Phase-specific specialization for the **binding-time analysis**
    /// phase (paper Figure 6): only `bt` can change; the `se` and `et`
    /// subtrees are statically unmodified and vanish.
    pub fn shape_bta_phase(&self) -> SpecShape {
        SpecShape::object(
            self.attributes,
            NodePattern::FrozenHere,
            vec![
                (ATTR_SE, SpecShape::object(self.se_entry, NodePattern::Unmodified, vec![])),
                (ATTR_BT, self.entry_shape(self.bt_entry, self.bt, NodePattern::MayModify)),
                (ATTR_ET, SpecShape::object(self.et_entry, NodePattern::Unmodified, vec![])),
            ],
        )
    }

    /// Phase-specific specialization for the **evaluation-time analysis**
    /// phase: only `et` can change.
    pub fn shape_eta_phase(&self) -> SpecShape {
        SpecShape::object(
            self.attributes,
            NodePattern::FrozenHere,
            vec![
                (ATTR_SE, SpecShape::object(self.se_entry, NodePattern::Unmodified, vec![])),
                (ATTR_BT, SpecShape::object(self.bt_entry, NodePattern::Unmodified, vec![])),
                (ATTR_ET, self.entry_shape(self.et_entry, self.et, NodePattern::MayModify)),
            ],
        )
    }

    fn entry_shape(&self, entry: ClassId, ann: ClassId, pattern: NodePattern) -> SpecShape {
        SpecShape::object(
            entry,
            pattern,
            vec![(ENTRY_CHILD, SpecShape::object(ann, pattern, vec![]))],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_heap::ClassRegistry;
    use ickp_spec::Specializer;

    fn setup() -> (Heap, AttributesSchema, ObjectId) {
        let mut heap = Heap::new(ClassRegistry::new());
        let schema = AttributesSchema::define(&mut heap).unwrap();
        let attrs = schema.alloc(&mut heap).unwrap();
        (heap, schema, attrs)
    }

    #[test]
    fn alloc_builds_the_figure_4_tree() {
        let (heap, schema, attrs) = setup();
        // 1 Attributes + SEEntry + BTEntry + ETEntry + BT + ET = 6 objects.
        assert_eq!(heap.len(), 6);
        assert_eq!(schema.bt_ann(&heap, attrs).unwrap(), 0);
        assert_eq!(schema.et_ann(&heap, attrs).unwrap(), 0);
        assert!(schema.se_list(&heap, attrs, false).unwrap().is_empty());
    }

    #[test]
    fn annotation_writes_are_change_detecting() {
        let (mut heap, schema, attrs) = setup();
        heap.reset_all_modified();
        assert!(!schema.set_bt_ann(&mut heap, attrs, 0).unwrap(), "no-op write");
        // Nothing became dirty:
        assert!(heap.iter_live().all(|o| !heap.is_modified(o).unwrap()));

        assert!(schema.set_bt_ann(&mut heap, attrs, 1).unwrap());
        assert_eq!(schema.bt_ann(&heap, attrs).unwrap(), 1);
        // Exactly BT and BTEntry are dirty:
        let dirty = heap.iter_live().filter(|&o| heap.is_modified(o).unwrap()).count();
        assert_eq!(dirty, 2);
    }

    #[test]
    fn bt_and_et_annotations_are_independent() {
        let (mut heap, schema, attrs) = setup();
        schema.set_bt_ann(&mut heap, attrs, 5).unwrap();
        assert_eq!(schema.et_ann(&heap, attrs).unwrap(), 0);
        schema.set_et_ann(&mut heap, attrs, 7).unwrap();
        assert_eq!(schema.bt_ann(&heap, attrs).unwrap(), 5);
        assert_eq!(schema.et_ann(&heap, attrs).unwrap(), 7);
    }

    #[test]
    fn se_lists_round_trip_and_free_their_predecessors() {
        let (mut heap, schema, attrs) = setup();
        schema.set_se_lists(&mut heap, attrs, &[1, 2, 3], &[4]).unwrap();
        assert_eq!(schema.se_list(&heap, attrs, false).unwrap(), vec![1, 2, 3]);
        assert_eq!(schema.se_list(&heap, attrs, true).unwrap(), vec![4]);
        let before = heap.len();
        // Replacing with shorter lists must free the old nodes.
        schema.set_se_lists(&mut heap, attrs, &[9], &[]).unwrap();
        assert_eq!(schema.se_list(&heap, attrs, false).unwrap(), vec![9]);
        assert!(schema.se_list(&heap, attrs, true).unwrap().is_empty());
        assert_eq!(heap.len(), before - 3);
    }

    #[test]
    fn phase_shapes_compile() {
        let (heap, schema, _) = setup();
        let spec = Specializer::new(heap.registry());
        let structure = spec.compile(&schema.shape_structure_only()).unwrap();
        assert!(structure.has_dynamic(), "se lists need the generic fallback");
        let bta = spec.compile(&schema.shape_bta_phase()).unwrap();
        assert!(!bta.has_dynamic(), "BTA phase plan is fully static");
        let eta = spec.compile(&schema.shape_eta_phase()).unwrap();
        // The BTA plan touches strictly fewer ops than the structure plan.
        assert!(bta.ops().len() < structure.ops().len());
        assert!(eta.ops().len() == bta.ops().len());
    }

    #[test]
    fn bta_phase_plan_sees_only_bt_changes() {
        use ickp_core::{decode, CheckpointKind, StreamWriter, TraversalStats};
        use ickp_spec::GuardMode;
        let (mut heap, schema, attrs) = setup();
        heap.reset_all_modified();
        schema.set_bt_ann(&mut heap, attrs, 3).unwrap();
        schema.set_et_ann(&mut heap, attrs, 9).unwrap(); // out-of-phase write

        let plan = Specializer::new(heap.registry()).compile(&schema.shape_bta_phase()).unwrap();
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        plan.executor()
            .run(&mut heap, attrs, &mut writer, GuardMode::Checked, None, &mut stats)
            .unwrap();
        let d = decode(&writer.finish(), heap.registry()).unwrap();
        // Only BTEntry + BT are recorded; the ET mutation is invisible to
        // this phase's plan (declarations are trusted, as in the paper).
        assert_eq!(d.objects.len(), 2);
        assert_eq!(stats.flag_tests, 2);
    }
}
