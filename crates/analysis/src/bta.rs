//! Binding-time analysis: which statements can be evaluated at
//! specialization time.
//!
//! Given a *division* of the program's inputs — which globals hold values
//! known only at run time — the analysis classifies every variable and
//! every statement as **static** (computable from known inputs) or
//! **dynamic**. The classic congruence rules apply: an expression is
//! dynamic if any operand is; an assignment makes its target at least as
//! dynamic as its value; and any assignment under a dynamic conditional
//! context is dynamic (the specializer cannot know whether it executes).
//!
//! The variable map is flow-insensitive and inter-procedural (parameters
//! join argument binding times, function results join return binding
//! times), so convergence takes several passes over the program — each
//! pass is one fixpoint iteration of the paper's "binding-time analysis"
//! phase, and the engine checkpoints after every one.

use crate::vars::VarIndex;
use ickp_minic::{Block, Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind, Type};
use std::collections::HashMap;

/// A binding time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bt {
    /// Known at specialization time.
    Static,
    /// Known only at run time.
    Dynamic,
}

impl Bt {
    /// Lattice join (`Dynamic` absorbs).
    pub fn join(self, other: Bt) -> Bt {
        if self == Bt::Dynamic || other == Bt::Dynamic {
            Bt::Dynamic
        } else {
            Bt::Static
        }
    }

    /// Annotation integer stored in the heap `BT` object.
    pub fn ann(self) -> i32 {
        match self {
            Bt::Static => 0,
            Bt::Dynamic => 1,
        }
    }
}

/// The user-supplied division: globals whose values are unknown until run
/// time. Everything else starts static.
#[derive(Debug, Clone, Default)]
pub struct Division {
    /// Names of dynamic globals.
    pub dynamic_globals: Vec<String>,
}

/// The binding-time analysis state.
#[derive(Debug)]
pub struct BindingTimeAnalysis {
    var_bt: HashMap<u32, Bt>,
    fn_ret: HashMap<String, Bt>,
    division: Division,
    seeded: bool,
}

impl BindingTimeAnalysis {
    /// Creates the analysis for a given division.
    pub fn new(division: Division) -> BindingTimeAnalysis {
        BindingTimeAnalysis {
            var_bt: HashMap::new(),
            fn_ret: HashMap::new(),
            division,
            seeded: false,
        }
    }

    /// The binding time of a variable id (default static).
    pub fn var_bt(&self, var: u32) -> Bt {
        self.var_bt.get(&var).copied().unwrap_or(Bt::Static)
    }

    /// Runs one fixpoint pass. Returns the per-statement annotations
    /// (indexed by statement id) and whether any variable or function
    /// binding time changed (another pass is needed).
    pub fn pass(&mut self, program: &Program, vars: &mut VarIndex) -> (Vec<Bt>, bool) {
        if !self.seeded {
            for name in &self.division.dynamic_globals.clone() {
                let id = vars.intern(&VarIndex::global_key(name));
                self.var_bt.insert(id, Bt::Dynamic);
            }
            self.seeded = true;
        }
        let mut changed = false;
        let mut anns = vec![Bt::Static; program.stmt_count as usize];
        for func in &program.functions {
            let mut walker =
                Walker { bta: self, vars, program, func, changed: &mut changed, anns: &mut anns };
            walker.block(&func.body, Bt::Static);
        }
        (anns, changed)
    }
}

struct Walker<'a> {
    bta: &'a mut BindingTimeAnalysis,
    vars: &'a mut VarIndex,
    program: &'a Program,
    func: &'a Function,
    changed: &'a mut bool,
    anns: &'a mut Vec<Bt>,
}

impl<'a> Walker<'a> {
    fn var_id(&mut self, name: &str) -> u32 {
        // Locals shadow globals; a name declared nowhere in this function
        // resolves as a global key (typecheck guarantees it exists).
        let is_local =
            self.func.params.iter().any(|p| p.name == name) || function_declares(self.func, name);
        if is_local {
            self.vars.intern(&VarIndex::local_key(&self.func.name, name))
        } else {
            self.vars.intern(&VarIndex::global_key(name))
        }
    }

    fn read(&mut self, name: &str) -> Bt {
        let id = self.var_id(name);
        self.bta.var_bt(id)
    }

    fn raise(&mut self, name: &str, bt: Bt) {
        let id = self.var_id(name);
        let old = self.bta.var_bt(id);
        let new = old.join(bt);
        if new != old {
            self.bta.var_bt.insert(id, new);
            *self.changed = true;
        }
    }

    fn raise_param(&mut self, func: &str, param: &str, bt: Bt) {
        let id = self.vars.intern(&VarIndex::local_key(func, param));
        let old = self.bta.var_bt(id);
        let new = old.join(bt);
        if new != old {
            self.bta.var_bt.insert(id, new);
            *self.changed = true;
        }
    }

    fn block(&mut self, block: &Block, context: Bt) {
        for stmt in &block.stmts {
            self.stmt(stmt, context);
        }
    }

    fn stmt(&mut self, stmt: &Stmt, context: Bt) {
        let ann = match &stmt.kind {
            StmtKind::Expr(e) => self.expr(e, context),
            StmtKind::Decl { name, init, .. } => {
                let bt = match init {
                    Some(e) => self.expr(e, context),
                    None => Bt::Static,
                };
                self.raise(name, bt.join(context));
                bt.join(context)
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                let c = self.expr(cond, context).join(context);
                self.block(then_branch, c);
                if let Some(e) = else_branch {
                    self.block(e, c);
                }
                c
            }
            StmtKind::While { cond, body } => {
                let c = self.expr(cond, context).join(context);
                self.block(body, c);
                c
            }
            StmtKind::For { init, cond, step, body } => {
                let mut c = context;
                if let Some(e) = init {
                    c = c.join(self.expr(e, context));
                }
                if let Some(e) = cond {
                    c = c.join(self.expr(e, context));
                }
                self.block(body, c);
                if let Some(e) = step {
                    self.expr(e, c);
                }
                c
            }
            StmtKind::Return(value) => {
                let bt = match value {
                    Some(e) => self.expr(e, context),
                    None => Bt::Static,
                }
                .join(context);
                let old = self.bta.fn_ret.get(&self.func.name).copied().unwrap_or(Bt::Static);
                let new = old.join(bt);
                if new != old {
                    self.bta.fn_ret.insert(self.func.name.clone(), new);
                    *self.changed = true;
                }
                bt
            }
            StmtKind::Break | StmtKind::Continue => context,
            StmtKind::Block(b) => {
                self.block(b, context);
                context
            }
        };
        self.anns[stmt.id as usize] = ann;
    }

    fn expr(&mut self, e: &Expr, context: Bt) -> Bt {
        match &e.kind {
            ExprKind::IntLit(_) => Bt::Static,
            ExprKind::Var(name) => self.read(name),
            ExprKind::Index { array, index } => self.expr(index, context).join(self.read(array)),
            ExprKind::Assign { target, value } => {
                let bt = self.expr(value, context).join(context);
                match target {
                    LValue::Var(name) => {
                        self.raise(name, bt);
                        bt
                    }
                    LValue::Index { array, index } => {
                        let i = self.expr(index, context);
                        // Writing one element under a dynamic index or in a
                        // dynamic context pollutes the whole array, and the
                        // write itself is as dynamic as its index.
                        self.raise(array, bt.join(i));
                        bt.join(i)
                    }
                }
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs, context).join(self.expr(rhs, context))
            }
            ExprKind::Unary { expr, .. } => self.expr(expr, context),
            ExprKind::Call { name, args } => {
                let callee = self.program.function(name);
                for (i, arg) in args.iter().enumerate() {
                    let bt = match &arg.kind {
                        // Array argument: the alias carries the array's bt.
                        ExprKind::Var(n)
                            if callee
                                .and_then(|f| f.params.get(i))
                                .is_some_and(|p| p.ty == Type::IntArray) =>
                        {
                            self.read(n)
                        }
                        _ => self.expr(arg, context),
                    };
                    if let Some(f) = callee {
                        if let Some(p) = f.params.get(i) {
                            let pname = p.name.clone();
                            let fname = f.name.clone();
                            self.raise_param(&fname, &pname, bt.join(context));
                        }
                    }
                }
                self.bta.fn_ret.get(name).copied().unwrap_or(Bt::Static).join(context)
            }
        }
    }
}

fn function_declares(func: &Function, name: &str) -> bool {
    let mut found = false;
    visit_decls(&func.body, &mut |n| {
        if n == name {
            found = true;
        }
    });
    found
}

fn visit_decls(block: &Block, f: &mut impl FnMut(&str)) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Decl { name, .. } => f(name),
            StmtKind::If { then_branch, else_branch, .. } => {
                visit_decls(then_branch, f);
                if let Some(e) = else_branch {
                    visit_decls(e, f);
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => visit_decls(body, f),
            StmtKind::Block(b) => visit_decls(b, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_minic::parse;

    fn fix(program: &Program, dynamic: &[&str]) -> (Vec<Bt>, usize) {
        let division =
            Division { dynamic_globals: dynamic.iter().map(|s| s.to_string()).collect() };
        let mut bta = BindingTimeAnalysis::new(division);
        let mut vars = VarIndex::new();
        let mut iters = 0;
        loop {
            iters += 1;
            let (anns, changed) = bta.pass(program, &mut vars);
            assert!(iters < 50, "BTA diverged");
            if !changed {
                return (anns, iters);
            }
        }
    }

    #[test]
    fn static_computation_stays_static() {
        let p = parse("int s; void f() { s = 1 + 2 * 3; }").unwrap();
        let (anns, _) = fix(&p, &[]);
        assert_eq!(anns[0], Bt::Static);
    }

    #[test]
    fn dynamic_inputs_poison_their_uses() {
        let p = parse("int d; int s; void f() { s = d + 1; }").unwrap();
        let (anns, _) = fix(&p, &["d"]);
        assert_eq!(anns[0], Bt::Dynamic);
    }

    #[test]
    fn dynamic_conditionals_make_guarded_assignments_dynamic() {
        let p = parse("int d; int s; void f() { if (d > 0) { s = 1; } }").unwrap();
        let (anns, _) = fix(&p, &["d"]);
        // The inner `s = 1` computes a static value under dynamic control.
        assert_eq!(anns[1], Bt::Dynamic);
    }

    #[test]
    fn binding_times_flow_through_calls_and_returns() {
        let p = parse(
            "int d;
             int id(int x) { return x; }
             void f() { int a; int b; a = id(1); b = id(d); }",
        )
        .unwrap();
        let (anns, _) = fix(&p, &["d"]);
        // Both assignments share `id`'s (joined) return bt: dynamic.
        let stmts = p.stmt_ids();
        assert_eq!(anns[*stmts.last().unwrap() as usize], Bt::Dynamic);
    }

    #[test]
    fn convergence_requires_multiple_passes_for_feedback_chains() {
        let p = parse(
            "int d;
             void top() { mid(); }
             void mid() { leaf(); }
             int leaked;
             void leaf() { leaked = d; }",
        )
        .unwrap();
        let (_, iters) = fix(&p, &["d"]);
        assert!(iters >= 2, "got {iters}");
    }

    #[test]
    fn loop_carried_dynamism_reaches_the_accumulator() {
        let p = parse(
            "int d; int acc;
             void f() { int i; for (i = 0; i < d; i = i + 1) { acc = acc + 1; } }",
        )
        .unwrap();
        let (anns, _) = fix(&p, &["d"]);
        // The for statement itself and the body assignment are dynamic.
        assert_eq!(anns[1], Bt::Dynamic);
        assert_eq!(anns[2], Bt::Dynamic);
    }

    #[test]
    fn annotations_cover_every_statement() {
        let p = parse("int d; void f() { int x; x = 1; if (x) { x = 2; } }").unwrap();
        let (anns, _) = fix(&p, &["d"]);
        assert_eq!(anns.len(), p.stmt_count as usize);
    }

    #[test]
    fn arrays_written_under_dynamic_index_become_dynamic() {
        let p = parse("int d; int a[4]; int s; void f() { a[d] = 1; s = a[0]; }").unwrap();
        let (anns, _) = fix(&p, &["d"]);
        assert_eq!(anns[1], Bt::Dynamic, "reading the polluted array is dynamic");
    }
}
