//! The phase-structured analysis engine.
//!
//! [`AnalysisEngine`] reproduces the paper's realistic application: the
//! three analyses run as **phases** (side-effect, then binding-time, then
//! evaluation-time), each phase performs repeated fixpoint **iterations**
//! over the program, each statement's results live in a heap-backed
//! `Attributes` structure, and "the end of an iteration is a natural time
//! at which to take a checkpoint" — the `after_iteration` hook is exactly
//! that point.
//!
//! Crucially for incremental checkpointing, "each phase only modifies its
//! corresponding field of the `Attributes` structure", and annotations are
//! written back *only when they changed*, so late iterations dirty very
//! few objects.

use crate::attributes::AttributesSchema;
use crate::bta::{BindingTimeAnalysis, Bt, Division};
use crate::error::EngineError;
use crate::eta::EvalTimeAnalysis;
use crate::seffect::{Effects, SideEffectAnalysis};
use crate::vars::VarIndex;
use ickp_core::CoreError;
use ickp_heap::{ClassRegistry, Heap, ObjectId};
use ickp_minic::{typecheck, Program};
use ickp_spec::{PhasePlans, SpecError, Specializer};

/// The three analysis phases, in their canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Side-effect analysis (variable read/write sets).
    SideEffect,
    /// Binding-time analysis (static/dynamic division).
    BindingTime,
    /// Evaluation-time analysis (specialization vs run time).
    EvalTime,
}

impl Phase {
    /// The phase's registry key (used with [`PhasePlans`]).
    pub fn key(self) -> &'static str {
        match self {
            Phase::SideEffect => "seffect",
            Phase::BindingTime => "bta",
            Phase::EvalTime => "eta",
        }
    }
}

/// Summary of one completed phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseReport {
    /// Which phase ran.
    pub phase: Phase,
    /// Fixpoint iterations performed (= checkpoints taken).
    pub iterations: usize,
    /// Heap annotation updates across all iterations.
    pub annotation_writes: usize,
}

/// The analysis engine: program + heap-backed per-statement attributes.
///
/// # Example
///
/// ```
/// use ickp_analysis::{AnalysisEngine, Division, Phase};
/// use ickp_minic::parse;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = parse("int d; int s; void main() { s = d + 1; }")?;
/// let mut engine = AnalysisEngine::new(program, Division { dynamic_globals: vec!["d".into()] })?;
/// let report = engine.run_phase(Phase::BindingTime, |_heap, _roots, _iter| Ok(()))?;
/// assert!(report.iterations >= 1);
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct AnalysisEngine {
    program: Program,
    heap: Heap,
    schema: AttributesSchema,
    attrs: Vec<ObjectId>,
    vars: VarIndex,
    division: Division,
    se: SideEffectAnalysis,
    se_cache: Vec<Effects>,
    bt_anns: Option<Vec<Bt>>,
}

impl AnalysisEngine {
    /// Builds the engine: typechecks the program and allocates one
    /// `Attributes` tree per statement.
    ///
    /// # Errors
    ///
    /// Fails if the program does not typecheck or the heap rejects the
    /// schema.
    pub fn new(program: Program, division: Division) -> Result<AnalysisEngine, EngineError> {
        typecheck(&program)?;
        let mut heap = Heap::new(ClassRegistry::new());
        let schema = AttributesSchema::define(&mut heap)?;
        let mut attrs = Vec::with_capacity(program.stmt_count as usize);
        for _ in 0..program.stmt_count {
            attrs.push(schema.alloc(&mut heap)?);
        }
        Ok(AnalysisEngine {
            se_cache: vec![Effects::default(); program.stmt_count as usize],
            program,
            heap,
            schema,
            attrs,
            vars: VarIndex::new(),
            division,
            se: SideEffectAnalysis::new(),
            bt_anns: None,
        })
    }

    /// The analyzed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The heap holding the `Attributes` structures.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable heap access (checkpointers need `&mut`).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The `Attributes` roots, indexed by statement id. These are the
    /// compound structures a checkpoint of the engine covers.
    pub fn roots(&self) -> &[ObjectId] {
        &self.attrs
    }

    /// The attributes schema (classes and phase shapes).
    pub fn schema(&self) -> &AttributesSchema {
        &self.schema
    }

    /// Compiles the per-phase specialized checkpoint plans: the Figure 6
    /// style plan for each annotation phase plus the structure-only
    /// Figure 5 plan under the key `"structure"`.
    ///
    /// # Errors
    ///
    /// Propagates plan-compilation failures.
    pub fn compile_phase_plans(&self) -> Result<PhasePlans, SpecError> {
        let spec = Specializer::new(self.heap.registry());
        let mut plans = PhasePlans::new();
        for (key, shape) in [
            ("structure", self.schema.shape_structure_only()),
            (Phase::BindingTime.key(), self.schema.shape_bta_phase()),
            (Phase::EvalTime.key(), self.schema.shape_eta_phase()),
        ] {
            let plan = spec.compile(&shape)?;
            plans.insert_with_shape(key, shape, plan);
        }
        Ok(plans)
    }

    /// Runs one phase to fixpoint, invoking `after_iteration` with the
    /// heap, the attribute roots and the 0-based iteration number after
    /// every iteration — the natural checkpoint position.
    ///
    /// # Errors
    ///
    /// * [`EngineError::PhaseOrder`] if `EvalTime` runs before
    ///   `BindingTime`.
    /// * Any error returned by the hook (e.g. a checkpoint failure).
    pub fn run_phase<F>(
        &mut self,
        phase: Phase,
        mut after_iteration: F,
    ) -> Result<PhaseReport, EngineError>
    where
        F: FnMut(&mut Heap, &[ObjectId], usize) -> Result<(), CoreError>,
    {
        let mut iterations = 0usize;
        let mut writes = 0usize;
        match phase {
            Phase::SideEffect => loop {
                let changed = self.se.pass(&self.program, &mut self.vars);
                let effects = self.se.stmt_effects(&self.program, &mut self.vars);
                for (id, eff) in effects.iter().enumerate() {
                    if self.se_cache[id] != *eff {
                        let reads: Vec<i32> = eff.0.iter().map(|&v| v as i32).collect();
                        let writes_list: Vec<i32> = eff.1.iter().map(|&v| v as i32).collect();
                        self.schema.set_se_lists(
                            &mut self.heap,
                            self.attrs[id],
                            &reads,
                            &writes_list,
                        )?;
                        self.se_cache[id] = eff.clone();
                        writes += 1;
                    }
                }
                after_iteration(&mut self.heap, &self.attrs, iterations)?;
                iterations += 1;
                if !changed {
                    break;
                }
            },
            Phase::BindingTime => {
                let mut bta = BindingTimeAnalysis::new(self.division.clone());
                loop {
                    let (anns, changed) = bta.pass(&self.program, &mut self.vars);
                    for (id, bt) in anns.iter().enumerate() {
                        if self.schema.set_bt_ann(&mut self.heap, self.attrs[id], bt.ann())? {
                            writes += 1;
                        }
                    }
                    let done = !changed;
                    if done {
                        self.bt_anns = Some(anns);
                    }
                    after_iteration(&mut self.heap, &self.attrs, iterations)?;
                    iterations += 1;
                    if done {
                        break;
                    }
                }
            }
            Phase::EvalTime => {
                let bt_anns = self.bt_anns.clone().ok_or_else(|| {
                    EngineError::PhaseOrder("run BindingTime before EvalTime".into())
                })?;
                let mut eta = EvalTimeAnalysis::new();
                loop {
                    let (anns, changed) = eta.pass(&self.program, &bt_anns, &mut self.vars);
                    for (id, et) in anns.iter().enumerate() {
                        if self.schema.set_et_ann(&mut self.heap, self.attrs[id], et.ann())? {
                            writes += 1;
                        }
                    }
                    after_iteration(&mut self.heap, &self.attrs, iterations)?;
                    iterations += 1;
                    if !changed {
                        break;
                    }
                }
            }
        }
        Ok(PhaseReport { phase, iterations, annotation_writes: writes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
    use ickp_minic::parse;
    use ickp_spec::{GuardMode, SpecializedCheckpointer};

    fn engine(src: &str, dynamic: &[&str]) -> AnalysisEngine {
        let program = parse(src).unwrap();
        AnalysisEngine::new(
            program,
            Division { dynamic_globals: dynamic.iter().map(|s| s.to_string()).collect() },
        )
        .unwrap()
    }

    const SAMPLE: &str = "int d; int s; int t;
        void main() { int i; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + d; } t = s; }";

    #[test]
    fn one_attributes_tree_per_statement() {
        let e = engine(SAMPLE, &["d"]);
        assert_eq!(e.roots().len(), e.program().stmt_count as usize);
        // 6 objects per tree.
        assert_eq!(e.heap().len(), e.roots().len() * 6);
    }

    #[test]
    fn phases_run_and_report_iterations() {
        let mut e = engine(SAMPLE, &["d"]);
        let se = e.run_phase(Phase::SideEffect, |_, _, _| Ok(())).unwrap();
        let bta = e.run_phase(Phase::BindingTime, |_, _, _| Ok(())).unwrap();
        let eta = e.run_phase(Phase::EvalTime, |_, _, _| Ok(())).unwrap();
        assert!(se.iterations >= 1);
        assert!(bta.iterations >= 2, "fixpoint needs a verification pass");
        assert!(eta.iterations >= 1);
        assert!(bta.annotation_writes > 0);
    }

    #[test]
    fn eval_time_requires_binding_time_first() {
        let mut e = engine(SAMPLE, &["d"]);
        let err = e.run_phase(Phase::EvalTime, |_, _, _| Ok(())).unwrap_err();
        assert!(matches!(err, EngineError::PhaseOrder(_)));
    }

    #[test]
    fn hook_runs_once_per_iteration_and_sees_the_roots() {
        let mut e = engine(SAMPLE, &["d"]);
        let mut seen = Vec::new();
        let nroots = e.roots().len();
        e.run_phase(Phase::BindingTime, |_, roots, iter| {
            assert_eq!(roots.len(), nroots);
            seen.push(iter);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, (0..seen.len()).collect::<Vec<_>>());
    }

    #[test]
    fn later_iterations_dirty_fewer_objects() {
        let mut e = engine(SAMPLE, &["d"]);
        // Clean slate: pretend a base checkpoint happened.
        e.heap_mut().reset_all_modified();
        let mut dirty_per_iter = Vec::new();
        e.run_phase(Phase::BindingTime, |heap, _, _| {
            let dirty = heap.iter_live().filter(|&o| heap.is_modified(o).unwrap()).count();
            heap.reset_all_modified();
            dirty_per_iter.push(dirty);
            Ok(())
        })
        .unwrap();
        assert!(dirty_per_iter.len() >= 2);
        let last = *dirty_per_iter.last().unwrap();
        let first = dirty_per_iter[0];
        assert!(last <= first, "{dirty_per_iter:?}");
        assert_eq!(last, 0, "converged iteration writes nothing: {dirty_per_iter:?}");
    }

    #[test]
    fn phase_isolation_only_touches_the_phase_field() {
        let mut e = engine(SAMPLE, &["d"]);
        e.run_phase(Phase::SideEffect, |_, _, _| Ok(())).unwrap();
        e.heap_mut().reset_all_modified();
        e.run_phase(Phase::BindingTime, |_, _, _| Ok(())).unwrap();
        // After BTA, no SEEntry or ETEntry object may be dirty.
        let schema = *e.schema();
        let heap = e.heap();
        for &o in e.roots() {
            let se = heap.field(o, 0).unwrap().as_ref_id().unwrap();
            let et = heap.field(o, 2).unwrap().as_ref_id().unwrap();
            assert!(!heap.is_modified(se).unwrap());
            assert!(!heap.is_modified(et).unwrap());
            let _ = schema;
        }
    }

    #[test]
    fn generic_and_specialized_iteration_checkpoints_agree() {
        let src = SAMPLE;
        let mut e1 = engine(src, &["d"]);
        let mut e2 = engine(src, &["d"]);
        e1.run_phase(Phase::SideEffect, |_, _, _| Ok(())).unwrap();
        e2.run_phase(Phase::SideEffect, |_, _, _| Ok(())).unwrap();
        e1.heap_mut().reset_all_modified();
        e2.heap_mut().reset_all_modified();

        let plans = e1.compile_phase_plans().unwrap();
        let plan = plans.plan(Phase::BindingTime.key()).unwrap();

        let table = MethodTable::derive(e2.heap().registry());
        let mut generic_sizes = Vec::new();
        let mut gc = Checkpointer::new(CheckpointConfig::incremental());
        e2.run_phase(Phase::BindingTime, |heap, roots, _| {
            let roots = roots.to_vec();
            generic_sizes
                .push(gc.checkpoint(heap, &table, &roots).unwrap().stats().objects_recorded);
            Ok(())
        })
        .unwrap();

        let mut spec_sizes = Vec::new();
        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        e1.run_phase(Phase::BindingTime, |heap, roots, _| {
            let roots = roots.to_vec();
            spec_sizes
                .push(sc.checkpoint(heap, plan, &roots, None).unwrap().stats().objects_recorded);
            Ok(())
        })
        .unwrap();

        assert_eq!(generic_sizes, spec_sizes);
        assert!(spec_sizes[0] > 0);
    }

    #[test]
    fn image_program_runs_all_three_phases() {
        let program = ickp_minic::programs::image_program();
        let mut e = AnalysisEngine::new(
            program,
            Division { dynamic_globals: vec!["image".into(), "work".into()] },
        )
        .unwrap();
        let se = e.run_phase(Phase::SideEffect, |_, _, _| Ok(())).unwrap();
        let bta = e.run_phase(Phase::BindingTime, |_, _, _| Ok(())).unwrap();
        let eta = e.run_phase(Phase::EvalTime, |_, _, _| Ok(())).unwrap();
        assert!(se.iterations >= 2);
        assert!(bta.iterations >= 2);
        assert!(eta.iterations >= 1);
        assert!(bta.iterations >= eta.iterations, "paper: BTA needs more iterations (9 vs 3)");
    }
}
