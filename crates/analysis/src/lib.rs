//! # ickp-analysis — the realistic workload: a program-analysis engine
//!
//! Reproduction of the paper's §4 application: "a Java implementation of
//! the analyses performed by the program specializer Tempo", treating a
//! simplified C (our `ickp-minic`). Three analyses run in phases —
//! side-effect, binding-time, evaluation-time — each iterating to
//! fixpoint over the program, storing its result in the per-statement,
//! heap-backed [`AttributesSchema`] structure (paper Figure 4), and
//! checkpointing after every iteration.
//!
//! The phase structure is what makes specialized incremental
//! checkpointing shine: each phase modifies only its own field of every
//! `Attributes`, so the phase-specific plans from
//! [`AnalysisEngine::compile_phase_plans`] skip the other subtrees
//! entirely (paper Figure 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attributes;
mod bta;
mod engine;
mod error;
mod eta;
mod seffect;
mod vars;
mod writeset;

pub use attributes::AttributesSchema;
pub use bta::{BindingTimeAnalysis, Bt, Division};
pub use engine::{AnalysisEngine, Phase, PhaseReport};
pub use error::EngineError;
pub use eta::{Et, EvalTimeAnalysis};
pub use seffect::{Effects, SideEffectAnalysis};
pub use vars::VarIndex;
pub use writeset::{infer_phase_writes, PhaseWriteSet, PhaseWrites};
