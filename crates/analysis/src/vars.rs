//! Variable interning shared by the analyses.
//!
//! Globals are keyed by their bare name; locals and parameters by
//! `function::name`, so the flow-insensitive variable maps of the analyses
//! never confuse same-named locals of different functions.

use std::collections::HashMap;

/// Interns variable names to dense ids.
#[derive(Debug, Default, Clone)]
pub struct VarIndex {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl VarIndex {
    /// Creates an empty index.
    pub fn new() -> VarIndex {
        VarIndex::default()
    }

    /// Interns a key, returning its dense id.
    pub fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(key.to_string());
        self.map.insert(key.to_string(), id);
        id
    }

    /// The key for a global variable.
    pub fn global_key(name: &str) -> String {
        name.to_string()
    }

    /// The key for a local or parameter of `func`.
    pub fn local_key(func: &str, name: &str) -> String {
        format!("{func}::{name}")
    }

    /// Looks up the name of an id.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Looks up an already interned key.
    pub fn get(&self, key: &str) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut idx = VarIndex::new();
        let a = idx.intern("g");
        let b = idx.intern(&VarIndex::local_key("f", "x"));
        assert_eq!(idx.intern("g"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(idx.name(b), Some("f::x"));
        assert_eq!(idx.get("g"), Some(a));
        assert_eq!(idx.get("nope"), None);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn locals_of_different_functions_do_not_collide() {
        let mut idx = VarIndex::new();
        let fx = idx.intern(&VarIndex::local_key("f", "x"));
        let gx = idx.intern(&VarIndex::local_key("g", "x"));
        assert_ne!(fx, gx);
    }
}
