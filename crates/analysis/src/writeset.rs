//! Static inference of per-phase heap write-sets.
//!
//! The engine's phase map is fixed — side-effect analysis writes the `se`
//! subtree of every `Attributes`, binding-time analysis the `bt` subtree,
//! evaluation-time analysis the `et` subtree — but whether a phase writes
//! *at all* for a given program is a static question: the engine's setters
//! ([`crate::AttributesSchema`]) only dirty objects whose value actually
//! changes, and every attribute starts at its bottom value (empty lists,
//! annotation `0`). All three analyses are monotone, so a phase whose
//! fixpoint leaves every attribute at bottom provably never performs a
//! heap write.
//!
//! [`infer_phase_writes`] runs the three analyses to fixpoint (pure
//! computation, no attribute heap involved) and reports, per phase, the
//! write-set the phase can produce. `ickp-audit` cross-checks these
//! against the declared [`ickp_spec::SpecShape`] modification patterns:
//! a phase that writes a subtree its declaration freezes is *unsound*; a
//! declaration that leaves a subtree modifiable for a phase that provably
//! never writes it is a missed-pruning perf lint.

use crate::bta::{BindingTimeAnalysis, Bt, Division};
use crate::engine::Phase;
use crate::error::EngineError;
use crate::eta::{Et, EvalTimeAnalysis};
use crate::seffect::SideEffectAnalysis;
use crate::vars::VarIndex;
use ickp_minic::{typecheck, Program};

/// Iteration bound for the fixpoint loops; the analyses are monotone over
/// finite lattices, so this only guards against bugs, not semantics.
const MAX_PASSES: usize = 1_000;

/// The statically inferred write behaviour of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseWriteSet {
    /// The phase this summary describes.
    pub phase: Phase,
    /// `true` if the phase can write its `Attributes` subtree for at
    /// least one statement of the program. `false` is a *proof* of
    /// absence: every attribute the phase owns stays at its initial
    /// value through every iteration.
    pub writes_own_subtree: bool,
    /// Statements whose attribute the phase can write (upper bound).
    pub stmts_written: usize,
}

/// Per-phase write-sets for one program, inferred without running the
/// engine or touching an attribute heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseWrites {
    sets: [PhaseWriteSet; 3],
}

impl PhaseWrites {
    /// The write-set of `phase`.
    pub fn get(&self, phase: Phase) -> PhaseWriteSet {
        self.sets[match phase {
            Phase::SideEffect => 0,
            Phase::BindingTime => 1,
            Phase::EvalTime => 2,
        }]
    }

    /// All three write-sets, in canonical phase order.
    pub fn iter(&self) -> impl Iterator<Item = PhaseWriteSet> + '_ {
        self.sets.iter().copied()
    }
}

/// Infers, for each of the engine's three phases, whether running the
/// phase on `program` can write the phase's `Attributes` subtree.
///
/// # Errors
///
/// Fails if the program does not typecheck (mirroring
/// [`crate::AnalysisEngine::new`]) or a fixpoint exceeds the iteration
/// bound (which would indicate a non-monotone analysis bug).
pub fn infer_phase_writes(
    program: &Program,
    division: &Division,
) -> Result<PhaseWrites, EngineError> {
    typecheck(program)?;
    let mut vars = VarIndex::new();

    // Side-effect analysis: an `SEEntry` is written exactly when a
    // statement's read/write sets leave their initial (empty) value.
    let mut se = SideEffectAnalysis::new();
    let mut passes = 0;
    while se.pass(program, &mut vars) {
        passes += 1;
        if passes > MAX_PASSES {
            return Err(EngineError::PhaseOrder("side-effect fixpoint diverged".into()));
        }
    }
    let se_written = se
        .stmt_effects(program, &mut vars)
        .iter()
        .filter(|(r, w)| !r.is_empty() || !w.is_empty())
        .count();

    // Binding-time analysis: `BT` annotations start at `Static` (0); a
    // write happens only for statements whose fixpoint annotation is
    // `Dynamic` (the lattice is monotone, so the fixpoint is an upper
    // bound on every intermediate value).
    let mut bta = BindingTimeAnalysis::new(division.clone());
    let bt_anns = loop {
        let (anns, changed) = bta.pass(program, &mut vars);
        if !changed {
            break anns;
        }
        passes += 1;
        if passes > MAX_PASSES {
            return Err(EngineError::PhaseOrder("binding-time fixpoint diverged".into()));
        }
    };
    let bt_written = bt_anns.iter().filter(|bt| **bt != Bt::Static).count();

    // Evaluation-time analysis, over the final binding times.
    let mut eta = EvalTimeAnalysis::new();
    let et_anns = loop {
        let (anns, changed) = eta.pass(program, &bt_anns, &mut vars);
        if !changed {
            break anns;
        }
        passes += 1;
        if passes > MAX_PASSES {
            return Err(EngineError::PhaseOrder("eval-time fixpoint diverged".into()));
        }
    };
    let et_written = et_anns.iter().filter(|et| **et != Et::SpecTime).count();

    Ok(PhaseWrites {
        sets: [
            PhaseWriteSet {
                phase: Phase::SideEffect,
                writes_own_subtree: se_written > 0,
                stmts_written: se_written,
            },
            PhaseWriteSet {
                phase: Phase::BindingTime,
                writes_own_subtree: bt_written > 0,
                stmts_written: bt_written,
            },
            PhaseWriteSet {
                phase: Phase::EvalTime,
                writes_own_subtree: et_written > 0,
                stmts_written: et_written,
            },
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AnalysisEngine;
    use ickp_minic::parse;

    fn division(dynamic: &[&str]) -> Division {
        Division { dynamic_globals: dynamic.iter().map(|s| s.to_string()).collect() }
    }

    #[test]
    fn global_free_program_proves_no_seffect_writes() {
        let p = parse("void main() { int x; x = 1; }").unwrap();
        let w = infer_phase_writes(&p, &division(&[])).unwrap();
        assert!(!w.get(Phase::SideEffect).writes_own_subtree);
    }

    #[test]
    fn fully_static_program_proves_no_bta_or_eta_writes() {
        let p = parse("int s; void main() { s = 1; }").unwrap();
        let w = infer_phase_writes(&p, &division(&[])).unwrap();
        assert!(w.get(Phase::SideEffect).writes_own_subtree, "s is read/written");
        assert!(!w.get(Phase::BindingTime).writes_own_subtree, "no dynamic globals");
        assert!(!w.get(Phase::EvalTime).writes_own_subtree);
    }

    #[test]
    fn dynamic_division_makes_bta_and_eta_write() {
        let p = parse("int d; int s; void main() { s = d + 1; }").unwrap();
        let w = infer_phase_writes(&p, &division(&["d"])).unwrap();
        assert!(w.get(Phase::BindingTime).writes_own_subtree);
        assert!(w.get(Phase::EvalTime).writes_own_subtree);
        assert!(w.get(Phase::BindingTime).stmts_written >= 1);
    }

    /// The inference is a sound upper bound on the engine's actual
    /// annotation writes: a phase the inference proves write-free
    /// performs zero writes when really run.
    #[test]
    fn inference_upper_bounds_engine_writes() {
        for (src, dynamic) in [
            ("int s; void main() { s = 1; }", &[][..]),
            ("int d; int s; void main() { s = d + 1; }", &["d"][..]),
            ("void main() { int x; x = 3; }", &[][..]),
        ] {
            let p = parse(src).unwrap();
            let w = infer_phase_writes(&p, &division(dynamic)).unwrap();
            let mut engine = AnalysisEngine::new(p, division(dynamic)).unwrap();
            for phase in [Phase::SideEffect, Phase::BindingTime, Phase::EvalTime] {
                let report = engine.run_phase(phase, |_, _, _| Ok(())).unwrap();
                if !w.get(phase).writes_own_subtree {
                    assert_eq!(report.annotation_writes, 0, "{src}: {phase:?}");
                }
            }
        }
    }

    #[test]
    fn image_program_writes_all_three_phases() {
        let p = ickp_minic::programs::image_program();
        let w = infer_phase_writes(&p, &division(&["image", "work"])).unwrap();
        for set in w.iter() {
            assert!(set.writes_own_subtree, "{:?}", set.phase);
        }
    }
}
