//! Errors of the analysis engine.

use ickp_core::CoreError;
use ickp_heap::HeapError;
use ickp_minic::MinicError;
use std::error::Error;
use std::fmt;

/// Errors raised while building or running the analysis engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The analyzed program failed the front end.
    Minic(MinicError),
    /// A heap operation on the attributes failed.
    Heap(HeapError),
    /// A checkpoint taken from the iteration hook failed.
    Core(CoreError),
    /// Phases were run out of order.
    PhaseOrder(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Minic(e) => write!(f, "program error: {e}"),
            EngineError::Heap(e) => write!(f, "attributes heap error: {e}"),
            EngineError::Core(e) => write!(f, "checkpoint error: {e}"),
            EngineError::PhaseOrder(what) => write!(f, "phase ordering violation: {what}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Minic(e) => Some(e),
            EngineError::Heap(e) => Some(e),
            EngineError::Core(e) => Some(e),
            EngineError::PhaseOrder(_) => None,
        }
    }
}

impl From<MinicError> for EngineError {
    fn from(e: MinicError) -> EngineError {
        EngineError::Minic(e)
    }
}

impl From<HeapError> for EngineError {
    fn from(e: HeapError) -> EngineError {
        EngineError::Heap(e)
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> EngineError {
        EngineError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_minic::{ErrorKind, Pos};

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let errors: Vec<EngineError> = vec![
            EngineError::Minic(MinicError::new(ErrorKind::Type, Pos::default(), "x")),
            EngineError::Heap(HeapError::UnknownClassName("X".into())),
            EngineError::Core(CoreError::EmptyStore),
            EngineError::PhaseOrder("eta before bta".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
