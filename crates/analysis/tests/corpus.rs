//! The analysis engine across the whole workload corpus: every generated
//! program runs all three phases with per-iteration checkpoints, stays
//! phase-isolated, and recovers exactly.

use ickp_analysis::{AnalysisEngine, Division, Phase};
use ickp_core::{
    restore, verify_restore, CheckpointConfig, CheckpointStore, Checkpointer, MethodTable,
    RestorePolicy,
};
use ickp_minic::parse;
use ickp_minic::programs::{image_program_source, matrix_program_source, sort_program_source};

fn corpus() -> Vec<(&'static str, String, Vec<String>)> {
    vec![
        ("image", image_program_source(3), vec!["image".into(), "work".into()]),
        ("matrix", matrix_program_source(4), vec!["ma".into(), "mb".into()]),
        ("sort", sort_program_source(12), vec!["data".into()]),
    ]
}

#[test]
fn every_corpus_program_analyzes_checkpoints_and_recovers() {
    for (name, source, dynamic_globals) in corpus() {
        let program = parse(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut engine = AnalysisEngine::new(program, Division { dynamic_globals })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let roots = engine.roots().to_vec();
        let table = MethodTable::derive(engine.heap().registry());
        let mut ckp = Checkpointer::new(CheckpointConfig::incremental());
        let mut store = CheckpointStore::new();
        store.push(ckp.checkpoint(engine.heap_mut(), &table, &roots).unwrap()).unwrap();

        let mut recs = Vec::new();
        for phase in [Phase::SideEffect, Phase::BindingTime, Phase::EvalTime] {
            let report = engine
                .run_phase(phase, |heap, roots, _| {
                    let roots = roots.to_vec();
                    recs.push(ckp.checkpoint(heap, &table, &roots)?);
                    Ok(())
                })
                .unwrap_or_else(|e| panic!("{name}/{phase:?}: {e}"));
            assert!(report.iterations >= 1, "{name}/{phase:?}");
        }
        for rec in recs {
            store.push(rec).unwrap();
        }

        let rebuilt = restore(&store, engine.heap().registry(), RestorePolicy::Lenient).unwrap();
        assert_eq!(
            verify_restore(engine.heap(), &roots, &rebuilt).unwrap(),
            None,
            "{name}: restore mismatch"
        );
    }
}

#[test]
fn dynamic_divisions_differentiate_the_corpus() {
    // The sort program's hot path is control-dependent on data, so with
    // the data dynamic nearly everything becomes dynamic; the matrix
    // program with only `ma` dynamic keeps its loop nests partly static.
    let sort = parse(&sort_program_source(12)).unwrap();
    let mut sort_engine =
        AnalysisEngine::new(sort, Division { dynamic_globals: vec!["data".into()] }).unwrap();
    sort_engine.run_phase(Phase::SideEffect, |_, _, _| Ok(())).unwrap();
    let sort_report = sort_engine.run_phase(Phase::BindingTime, |_, _, _| Ok(())).unwrap();

    let matrix = parse(&matrix_program_source(4)).unwrap();
    let mut matrix_engine =
        AnalysisEngine::new(matrix, Division { dynamic_globals: vec![] }).unwrap();
    matrix_engine.run_phase(Phase::SideEffect, |_, _, _| Ok(())).unwrap();
    let matrix_report = matrix_engine.run_phase(Phase::BindingTime, |_, _, _| Ok(())).unwrap();

    // With no dynamic inputs, the matrix program is fully static: the
    // only annotation writes are the (absent) transitions to dynamic.
    assert_eq!(matrix_report.annotation_writes, 0, "all-static program");
    assert!(sort_report.annotation_writes > 0, "dynamic data forces annotations");
}

#[test]
fn phase_specialized_plans_work_across_the_corpus() {
    use ickp_spec::{GuardMode, SpecializedCheckpointer};
    for (name, source, dynamic_globals) in corpus() {
        let program = parse(&source).unwrap();
        let mut engine = AnalysisEngine::new(program, Division { dynamic_globals }).unwrap();
        engine.run_phase(Phase::SideEffect, |_, _, _| Ok(())).unwrap();
        engine.heap_mut().reset_all_modified();

        let plans = engine.compile_phase_plans().unwrap();
        let plan = plans.plan(Phase::BindingTime.key()).unwrap();
        let mut sc = SpecializedCheckpointer::new(GuardMode::Checked);
        let mut sizes = Vec::new();
        engine
            .run_phase(Phase::BindingTime, |heap, roots, _| {
                let roots = roots.to_vec();
                sizes.push(sc.checkpoint(heap, plan, &roots, None)?.len_bytes());
                Ok(())
            })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!sizes.is_empty(), "{name}");
    }
}
