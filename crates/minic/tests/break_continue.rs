//! End-to-end coverage of `break`/`continue` across the front end,
//! interpreter and pretty printer.

use ickp_minic::{parse, pretty, typecheck, Interp};

fn run_and_get(src: &str, global: &str) -> i64 {
    let p = parse(src).unwrap();
    typecheck(&p).unwrap();
    let mut i = Interp::new(&p);
    i.call("main", &[]).unwrap();
    i.global_scalar(global).unwrap()
}

#[test]
fn break_exits_the_innermost_loop_only() {
    let v = run_and_get(
        "int n;
         void main() {
             int i; int j;
             n = 0;
             for (i = 0; i < 3; i = i + 1) {
                 for (j = 0; j < 10; j = j + 1) {
                     if (j == 2) { break; }
                     n = n + 1;
                 }
             }
         }",
        "n",
    );
    assert_eq!(v, 6, "inner loop runs twice per outer iteration");
}

#[test]
fn continue_skips_to_the_next_iteration() {
    let v = run_and_get(
        "int n;
         void main() {
             int i;
             n = 0;
             for (i = 0; i < 10; i = i + 1) {
                 if (i % 2 == 0) { continue; }
                 n = n + i;
             }
         }",
        "n",
    );
    assert_eq!(v, 1 + 3 + 5 + 7 + 9);
}

#[test]
fn continue_in_for_still_runs_the_step() {
    // If `continue` skipped the step, this would loop forever (and hit
    // the step limit).
    let v = run_and_get(
        "int n;
         void main() {
             int i;
             n = 0;
             for (i = 0; i < 5; i = i + 1) {
                 continue;
             }
             n = i;
         }",
        "n",
    );
    assert_eq!(v, 5);
}

#[test]
fn break_in_while_terminates() {
    let v = run_and_get(
        "int n;
         void main() {
             n = 0;
             while (1) {
                 n = n + 1;
                 if (n >= 7) { break; }
             }
         }",
        "n",
    );
    assert_eq!(v, 7);
}

#[test]
fn break_outside_a_loop_is_a_type_error() {
    for src in ["void f() { break; }", "void f() { continue; }", "void f() { if (1) { break; } }"] {
        let p = parse(src).unwrap();
        assert!(typecheck(&p).is_err(), "{src}");
    }
    // But inside a loop nested in an if, it is fine.
    let p = parse("void f() { while (1) { if (1) { break; } } }").unwrap();
    typecheck(&p).unwrap();
}

#[test]
fn pretty_printing_round_trips_break_and_continue() {
    let src = "void f() { int i; for (i = 0; i < 9; i = i + 1) { if (i == 3) { continue; } if (i == 5) { break; } } }";
    let p1 = parse(src).unwrap();
    let printed = pretty(&p1);
    assert!(printed.contains("break;"));
    assert!(printed.contains("continue;"));
    let p2 = parse(&printed).unwrap();
    assert_eq!(p1.stmt_ids(), p2.stmt_ids());
    assert_eq!(pretty(&p2), printed);
}

#[test]
fn analysis_engine_handles_break_continue_programs() {
    use ickp_minic::programs::sort_program_source;
    // The corpus sort program plus an explicit break-heavy search.
    let src = format!(
        "{}\nint find(int needle) {{
             int i; int found;
             found = -1;
             for (i = 0; i < 16; i = i + 1) {{
                 if (data[i] == needle) {{ found = i; break; }}
             }}
             return found;
         }}",
        sort_program_source(16)
    );
    let p = parse(&src).unwrap();
    typecheck(&p).unwrap();
}
