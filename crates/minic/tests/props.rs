//! Randomized tests for the mini-C front end and interpreter.
//!
//! Previously written with `proptest`; rewritten over the in-repo seeded
//! PRNG so the suite builds with no network access. Each case is fully
//! determined by its seed, named in the assertion message for replay.

use ickp_minic::{lex, parse, pretty, typecheck, Interp, Limits};
use ickp_prng::Prng;

const BINOPS: [&str; 13] = ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"];

/// Random expression source over the globals `a`, `b`, `c`.
fn random_expr(rng: &mut Prng, depth: usize) -> String {
    if depth == 0 || rng.ratio(1, 3) {
        // Leaf: a small literal or a global.
        if rng.next_bool() {
            rng.range_i64(-50, 50).to_string()
        } else {
            (*rng.choose(&["a", "b", "c"])).to_string()
        }
    } else {
        match rng.below(4) {
            0 => format!("(-{})", random_expr(rng, depth - 1)),
            1 => format!("(!{})", random_expr(rng, depth - 1)),
            _ => {
                let l = random_expr(rng, depth - 1);
                let op = *rng.choose(&BINOPS);
                let r = random_expr(rng, depth - 1);
                format!("({l} {op} {r})")
            }
        }
    }
}

/// A random straight-line program assigning random expressions.
fn random_program(rng: &mut Prng) -> String {
    let n = 1 + rng.index(5);
    let mut body = String::new();
    for i in 0..n {
        let target = ["a", "b", "c"][i % 3];
        let e = random_expr(rng, 4);
        body.push_str(&format!("    {target} = {e};\n"));
    }
    format!("int a;\nint b;\nint c;\nvoid main() {{\n{body}}}\n")
}

/// Pretty-printing is a fixpoint under re-parsing, and preserves
/// statement identity, for arbitrary generated programs.
#[test]
fn pretty_parse_fixpoint() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0xf1c5_0000 + case);
        let src = random_program(&mut rng);
        let p1 = parse(&src).unwrap();
        typecheck(&p1).unwrap();
        let printed = pretty(&p1);
        let p2 = parse(&printed).unwrap();
        typecheck(&p2).unwrap();
        assert_eq!(p1.stmt_ids(), p2.stmt_ids(), "case {case}");
        assert_eq!(&printed, &pretty(&p2), "case {case}");
    }
}

/// The interpreter is deterministic, and pretty-printing preserves
/// program semantics (same final globals or the same error).
#[test]
fn interpretation_is_deterministic_and_print_stable() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0xde7e_0000 + case);
        let src = random_program(&mut rng);
        let p1 = parse(&src).unwrap();
        let p2 = parse(&pretty(&p1)).unwrap();
        let run = |p: &ickp_minic::Program| {
            let mut i = Interp::with_limits(p, Limits { max_steps: 200_000, max_depth: 16 });
            let outcome = i
                .call("main", &[])
                .map(|_| (i.global_scalar("a"), i.global_scalar("b"), i.global_scalar("c")));
            // Compare errors by message only: source positions legitimately
            // differ between the original and pretty-printed layouts.
            outcome.map_err(|e| e.message().to_string())
        };
        let r1 = run(&p1);
        let r1_again = run(&p1);
        let r2 = run(&p2);
        assert_eq!(&r1, &r1_again, "case {case}: determinism");
        assert_eq!(&r1, &r2, "case {case}: pretty-printing preserves semantics");
    }
}

/// The lexer is total: arbitrary printable input errors gracefully,
/// never panics, and never loops.
#[test]
fn lexer_is_total() {
    // Printable ASCII plus newline and tab, like the original `[ -~\n\t]`.
    let alphabet: Vec<char> = (b' '..=b'~').map(char::from).chain(['\n', '\t']).collect();
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0x1e8e_0000 + case);
        let len = rng.index(201);
        let src: String = (0..len).map(|_| *rng.choose(&alphabet)).collect();
        let _ = lex(&src);
    }
}

/// The parser is total on arbitrary token-ish text.
#[test]
fn parser_is_total() {
    let alphabet: Vec<char> =
        ('a'..='z').chain('0'..='9').chain("(){};=+*<>!&|,[] \n".chars()).collect();
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0x9a85_0000 + case);
        let len = rng.index(161);
        let src: String = (0..len).map(|_| *rng.choose(&alphabet)).collect();
        let _ = parse(&src);
    }
}
