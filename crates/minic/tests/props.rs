//! Property tests for the mini-C front end and interpreter.

use ickp_minic::{lex, parse, pretty, typecheck, Interp, Limits};
use proptest::prelude::*;

/// Random expression source over the globals `a`, `b`, `c`.
fn arb_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(|v| v.to_string()),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(str::to_string),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("/"), Just("%"),
                Just("<"), Just("<="), Just(">"), Just(">="), Just("=="),
                Just("!="), Just("&&"), Just("||"),
            ], inner.clone())
                .prop_map(|(l, op, r)| format!("({l} {op} {r})")),
            inner.clone().prop_map(|e| format!("(-{e})")),
            inner.prop_map(|e| format!("(!{e})")),
        ]
    })
}

/// A random straight-line program assigning random expressions.
fn arb_program() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_expr(), 1..6).prop_map(|exprs| {
        let mut body = String::new();
        for (i, e) in exprs.iter().enumerate() {
            let target = ["a", "b", "c"][i % 3];
            body.push_str(&format!("    {target} = {e};\n"));
        }
        format!("int a;\nint b;\nint c;\nvoid main() {{\n{body}}}\n")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pretty-printing is a fixpoint under re-parsing, and preserves
    /// statement identity, for arbitrary generated programs.
    #[test]
    fn pretty_parse_fixpoint(src in arb_program()) {
        let p1 = parse(&src).unwrap();
        typecheck(&p1).unwrap();
        let printed = pretty(&p1);
        let p2 = parse(&printed).unwrap();
        typecheck(&p2).unwrap();
        prop_assert_eq!(p1.stmt_ids(), p2.stmt_ids());
        prop_assert_eq!(&printed, &pretty(&p2));
    }

    /// The interpreter is deterministic, and pretty-printing preserves
    /// program semantics (same final globals or the same error).
    #[test]
    fn interpretation_is_deterministic_and_print_stable(src in arb_program()) {
        let p1 = parse(&src).unwrap();
        let p2 = parse(&pretty(&p1)).unwrap();
        let run = |p: &ickp_minic::Program| {
            let mut i = Interp::with_limits(p, Limits { max_steps: 200_000, max_depth: 16 });
            let outcome = i.call("main", &[]).map(|_| {
                (
                    i.global_scalar("a"),
                    i.global_scalar("b"),
                    i.global_scalar("c"),
                )
            });
            // Compare errors by message only: source positions legitimately
            // differ between the original and pretty-printed layouts.
            outcome.map_err(|e| e.message().to_string())
        };
        let r1 = run(&p1);
        let r1_again = run(&p1);
        let r2 = run(&p2);
        prop_assert_eq!(&r1, &r1_again, "determinism");
        prop_assert_eq!(&r1, &r2, "pretty-printing preserves semantics");
    }

    /// The lexer is total: arbitrary input errors gracefully, never
    /// panics, and never loops.
    #[test]
    fn lexer_is_total(src in "[ -~\n\t]{0,200}") {
        let _ = lex(&src);
    }

    /// The parser is total on arbitrary token-ish text.
    #[test]
    fn parser_is_total(src in "[a-z0-9(){};=+*<>!&|,\\[\\] \n]{0,160}") {
        let _ = parse(&src);
    }
}
