//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::error::{ErrorKind, MinicError};
use crate::lexer::lex;
use crate::token::{Pos, SpannedToken, Token};

/// Parses mini-C source into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntax error.
///
/// # Example
///
/// ```
/// use ickp_minic::parse;
/// let program = parse("int g; void main() { g = 1 + 2; }")?;
/// assert_eq!(program.functions.len(), 1);
/// assert_eq!(program.stmt_count, 1);
/// # Ok::<(), ickp_minic::MinicError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, MinicError> {
    let tokens = lex(source)?;
    Parser { tokens, index: 0, next_id: 0 }.program()
}

struct Parser {
    tokens: Vec<SpannedToken>,
    index: usize,
    next_id: NodeId,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.index].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.index + 1).min(self.tokens.len() - 1)].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.index].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.index].token.clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Token) -> Result<(), MinicError> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {expected}")))
        }
    }

    fn unexpected(&self, what: &str) -> MinicError {
        MinicError::new(ErrorKind::Parse, self.pos(), format!("{what}, found {}", self.peek()))
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn ident(&mut self) -> Result<String, MinicError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.bump();
                Ok(name)
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    fn program(mut self) -> Result<Program, MinicError> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        while *self.peek() != Token::Eof {
            match self.peek() {
                Token::KwVoid => functions.push(self.function(Type::Void)?),
                Token::KwInt => {
                    // `int name (` starts a function; otherwise a global.
                    if matches!(self.peek2(), Token::Ident(_))
                        && self.tokens.get(self.index + 2).map(|t| &t.token) == Some(&Token::LParen)
                    {
                        functions.push(self.function(Type::Int)?);
                    } else {
                        globals.push(self.global()?);
                    }
                }
                _ => return Err(self.unexpected("expected `int` or `void` at top level")),
            }
        }
        Ok(Program { globals, functions, stmt_count: self.next_id })
    }

    fn global(&mut self) -> Result<GlobalDecl, MinicError> {
        let pos = self.pos();
        self.eat(&Token::KwInt)?;
        let name = self.ident()?;
        let (ty, array_size) = self.opt_array_suffix()?;
        self.eat(&Token::Semi)?;
        Ok(GlobalDecl { name, ty, array_size, pos })
    }

    fn opt_array_suffix(&mut self) -> Result<(Type, Option<usize>), MinicError> {
        if *self.peek() == Token::LBracket {
            self.bump();
            let size = match self.peek().clone() {
                Token::IntLit(n) if n > 0 => {
                    self.bump();
                    n as usize
                }
                _ => return Err(self.unexpected("expected positive array size")),
            };
            self.eat(&Token::RBracket)?;
            Ok((Type::IntArray, Some(size)))
        } else {
            Ok((Type::Int, None))
        }
    }

    fn function(&mut self, ret: Type) -> Result<Function, MinicError> {
        let pos = self.pos();
        self.bump(); // `int` or `void`
        let name = self.ident()?;
        self.eat(&Token::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Token::RParen {
            loop {
                self.eat(&Token::KwInt)?;
                let pname = self.ident()?;
                let ty = if *self.peek() == Token::LBracket {
                    self.bump();
                    self.eat(&Token::RBracket)?;
                    Type::IntArray
                } else {
                    Type::Int
                };
                params.push(Param { name: pname, ty });
                if *self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        let body = self.block()?;
        Ok(Function { name, ret, params, body, pos })
    }

    fn block(&mut self) -> Result<Block, MinicError> {
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Token::RBrace {
            if *self.peek() == Token::Eof {
                return Err(self.unexpected("expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // `}`
        Ok(Block { stmts })
    }

    /// A single statement, or a block wrapped as one statement list.
    fn block_or_stmt(&mut self) -> Result<Block, MinicError> {
        if *self.peek() == Token::LBrace {
            self.block()
        } else {
            Ok(Block { stmts: vec![self.stmt()?] })
        }
    }

    fn stmt(&mut self) -> Result<Stmt, MinicError> {
        let pos = self.pos();
        let id = self.fresh_id();
        let kind = match self.peek().clone() {
            Token::KwInt => {
                self.bump();
                let name = self.ident()?;
                let (ty, array_size) = self.opt_array_suffix()?;
                let init = if *self.peek() == Token::Assign {
                    if ty == Type::IntArray {
                        return Err(self.unexpected("array locals cannot have initializers"));
                    }
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat(&Token::Semi)?;
                StmtKind::Decl { name, ty, array_size, init }
            }
            Token::KwIf => {
                self.bump();
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let then_branch = self.block_or_stmt()?;
                let else_branch = if *self.peek() == Token::KwElse {
                    self.bump();
                    Some(self.block_or_stmt()?)
                } else {
                    None
                };
                StmtKind::If { cond, then_branch, else_branch }
            }
            Token::KwWhile => {
                self.bump();
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let body = self.block_or_stmt()?;
                StmtKind::While { cond, body }
            }
            Token::KwFor => {
                self.bump();
                self.eat(&Token::LParen)?;
                let init = if *self.peek() == Token::Semi { None } else { Some(self.expr()?) };
                self.eat(&Token::Semi)?;
                let cond = if *self.peek() == Token::Semi { None } else { Some(self.expr()?) };
                self.eat(&Token::Semi)?;
                let step = if *self.peek() == Token::RParen { None } else { Some(self.expr()?) };
                self.eat(&Token::RParen)?;
                let body = self.block_or_stmt()?;
                StmtKind::For { init, cond, step, body }
            }
            Token::KwReturn => {
                self.bump();
                let value = if *self.peek() == Token::Semi { None } else { Some(self.expr()?) };
                self.eat(&Token::Semi)?;
                StmtKind::Return(value)
            }
            Token::KwBreak => {
                self.bump();
                self.eat(&Token::Semi)?;
                StmtKind::Break
            }
            Token::KwContinue => {
                self.bump();
                self.eat(&Token::Semi)?;
                StmtKind::Continue
            }
            Token::LBrace => StmtKind::Block(self.block()?),
            _ => {
                let e = self.expr()?;
                self.eat(&Token::Semi)?;
                StmtKind::Expr(e)
            }
        };
        Ok(Stmt { id, pos, kind })
    }

    fn expr(&mut self) -> Result<Expr, MinicError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, MinicError> {
        let lhs = self.or_expr()?;
        if *self.peek() == Token::Assign {
            let pos = lhs.pos;
            let target = match lhs.kind {
                ExprKind::Var(name) => LValue::Var(name),
                ExprKind::Index { array, index } => LValue::Index { array, index },
                _ => {
                    return Err(MinicError::new(
                        ErrorKind::Parse,
                        pos,
                        "assignment target must be a variable or array element",
                    ))
                }
            };
            self.bump();
            let value = Box::new(self.assign_expr()?);
            return Ok(Expr { pos, kind: ExprKind::Assign { target, value } });
        }
        Ok(lhs)
    }

    fn binary_level(
        &mut self,
        ops: &[(Token, BinOp)],
        next: fn(&mut Parser) -> Result<Expr, MinicError>,
    ) -> Result<Expr, MinicError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.peek() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    let pos = lhs.pos;
                    lhs = Expr {
                        pos,
                        kind: ExprKind::Binary { op: *op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn or_expr(&mut self) -> Result<Expr, MinicError> {
        self.binary_level(&[(Token::OrOr, BinOp::Or)], Parser::and_expr)
    }

    fn and_expr(&mut self) -> Result<Expr, MinicError> {
        self.binary_level(&[(Token::AndAnd, BinOp::And)], Parser::eq_expr)
    }

    fn eq_expr(&mut self) -> Result<Expr, MinicError> {
        self.binary_level(&[(Token::Eq, BinOp::Eq), (Token::Ne, BinOp::Ne)], Parser::rel_expr)
    }

    fn rel_expr(&mut self) -> Result<Expr, MinicError> {
        self.binary_level(
            &[
                (Token::Le, BinOp::Le),
                (Token::Lt, BinOp::Lt),
                (Token::Ge, BinOp::Ge),
                (Token::Gt, BinOp::Gt),
            ],
            Parser::add_expr,
        )
    }

    fn add_expr(&mut self) -> Result<Expr, MinicError> {
        self.binary_level(
            &[(Token::Plus, BinOp::Add), (Token::Minus, BinOp::Sub)],
            Parser::mul_expr,
        )
    }

    fn mul_expr(&mut self) -> Result<Expr, MinicError> {
        self.binary_level(
            &[(Token::Star, BinOp::Mul), (Token::Slash, BinOp::Div), (Token::Percent, BinOp::Rem)],
            Parser::unary_expr,
        )
    }

    fn unary_expr(&mut self) -> Result<Expr, MinicError> {
        let pos = self.pos();
        match self.peek() {
            Token::Minus => {
                self.bump();
                let expr = Box::new(self.unary_expr()?);
                Ok(Expr { pos, kind: ExprKind::Unary { op: UnOp::Neg, expr } })
            }
            Token::Not => {
                self.bump();
                let expr = Box::new(self.unary_expr()?);
                Ok(Expr { pos, kind: ExprKind::Unary { op: UnOp::Not, expr } })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, MinicError> {
        let pos = self.pos();
        match self.peek().clone() {
            Token::IntLit(v) => {
                self.bump();
                Ok(Expr { pos, kind: ExprKind::IntLit(v) })
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                self.bump();
                match self.peek() {
                    Token::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if *self.peek() != Token::RParen {
                            loop {
                                args.push(self.expr()?);
                                if *self.peek() == Token::Comma {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.eat(&Token::RParen)?;
                        Ok(Expr { pos, kind: ExprKind::Call { name, args } })
                    }
                    Token::LBracket => {
                        self.bump();
                        let index = Box::new(self.expr()?);
                        self.eat(&Token::RBracket)?;
                        Ok(Expr { pos, kind: ExprKind::Index { array: name, index } })
                    }
                    _ => Ok(Expr { pos, kind: ExprKind::Var(name) }),
                }
            }
            _ => Err(self.unexpected("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_and_functions() {
        let p = parse("int g; int buf[16]; int add(int a, int b) { return a + b; }").unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].array_size, Some(16));
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params.len(), 2);
        assert_eq!(p.functions[0].ret, Type::Int);
    }

    #[test]
    fn statement_ids_are_dense_preorder() {
        let p =
            parse("void f() { int i; for (i = 0; i < 3; i = i + 1) { g(i); } if (i) { return; } }")
                .unwrap();
        // stmts: decl, for, call-expr, if, return
        assert_eq!(p.stmt_count, 5);
        assert_eq!(p.stmt_ids(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse("void f() { x = 1 + 2 * 3 < 4 && 5 == 6; }").unwrap();
        let stmt = &p.functions[0].body.stmts[0];
        let StmtKind::Expr(Expr { kind: ExprKind::Assign { value, .. }, .. }) = &stmt.kind else {
            panic!("expected assignment");
        };
        // Top level must be `&&`.
        let ExprKind::Binary { op: BinOp::And, lhs, .. } = &value.kind else {
            panic!("expected && at top, got {:?}", value.kind);
        };
        // Left of && is `<`.
        assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn assignment_is_right_associative() {
        let p = parse("void f() { a = b = 1; }").unwrap();
        let StmtKind::Expr(e) = &p.functions[0].body.stmts[0].kind else { panic!() };
        let ExprKind::Assign { value, .. } = &e.kind else { panic!() };
        assert!(matches!(value.kind, ExprKind::Assign { .. }));
    }

    #[test]
    fn array_reads_writes_and_calls_parse() {
        let p = parse("void f(int a[]) { a[0] = h(a[1], 2); }").unwrap();
        let StmtKind::Expr(e) = &p.functions[0].body.stmts[0].kind else { panic!() };
        let ExprKind::Assign { target: LValue::Index { array, .. }, value } = &e.kind else {
            panic!()
        };
        assert_eq!(array, "a");
        assert!(matches!(value.kind, ExprKind::Call { .. }));
    }

    #[test]
    fn if_without_braces_wraps_single_statement() {
        let p = parse("void f() { if (1) g(); else h(); }").unwrap();
        let StmtKind::If { then_branch, else_branch, .. } = &p.functions[0].body.stmts[0].kind
        else {
            panic!()
        };
        assert_eq!(then_branch.stmts.len(), 1);
        assert_eq!(else_branch.as_ref().unwrap().stmts.len(), 1);
    }

    #[test]
    fn for_parts_are_optional() {
        let p = parse("void f() { for (;;) { g(); } }").unwrap();
        let StmtKind::For { init, cond, step, .. } = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn invalid_assignment_target_is_rejected() {
        assert!(parse("void f() { 1 = 2; }").is_err());
        assert!(parse("void f() { g() = 2; }").is_err());
    }

    #[test]
    fn missing_semicolon_is_reported_with_position() {
        let err = parse("void f() { g() }").unwrap_err();
        assert!(err.to_string().contains("expected `;`"));
    }

    #[test]
    fn unterminated_block_is_rejected() {
        assert!(parse("void f() { g();").is_err());
    }

    #[test]
    fn zero_size_arrays_are_rejected() {
        assert!(parse("int a[0];").is_err());
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse("void f() { x = - - 1; y = !!0; }").unwrap();
        assert_eq!(p.stmt_count, 2);
    }
}
