//! Tokens of the mini-C language.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    IntLit(i64),
    /// `int` keyword.
    KwInt,
    /// `void` keyword.
    KwVoid,
    /// `if` keyword.
    KwIf,
    /// `else` keyword.
    KwElse,
    /// `while` keyword.
    KwWhile,
    /// `for` keyword.
    KwFor,
    /// `return` keyword.
    KwReturn,
    /// `break` keyword.
    KwBreak,
    /// `continue` keyword.
    KwContinue,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Not,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::IntLit(v) => write!(f, "integer {v}"),
            Token::KwInt => write!(f, "`int`"),
            Token::KwVoid => write!(f, "`void`"),
            Token::KwIf => write!(f, "`if`"),
            Token::KwElse => write!(f, "`else`"),
            Token::KwWhile => write!(f, "`while`"),
            Token::KwFor => write!(f, "`for`"),
            Token::KwReturn => write!(f, "`return`"),
            Token::KwBreak => write!(f, "`break`"),
            Token::KwContinue => write!(f, "`continue`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::LBrace => write!(f, "`{{`"),
            Token::RBrace => write!(f, "`}}`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::Semi => write!(f, "`;`"),
            Token::Comma => write!(f, "`,`"),
            Token::Assign => write!(f, "`=`"),
            Token::Plus => write!(f, "`+`"),
            Token::Minus => write!(f, "`-`"),
            Token::Star => write!(f, "`*`"),
            Token::Slash => write!(f, "`/`"),
            Token::Percent => write!(f, "`%`"),
            Token::Eq => write!(f, "`==`"),
            Token::Ne => write!(f, "`!=`"),
            Token::Lt => write!(f, "`<`"),
            Token::Le => write!(f, "`<=`"),
            Token::Gt => write!(f, "`>`"),
            Token::Ge => write!(f, "`>=`"),
            Token::AndAnd => write!(f, "`&&`"),
            Token::OrOr => write!(f, "`||`"),
            Token::Not => write!(f, "`!`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        for t in [Token::Ident("x".into()), Token::IntLit(3), Token::KwFor, Token::Eof] {
            assert!(!t.to_string().is_empty());
        }
    }

    #[test]
    fn positions_order_by_line_then_column() {
        assert!(Pos { line: 1, col: 9 } < Pos { line: 2, col: 1 });
        assert!(Pos { line: 2, col: 1 } < Pos { line: 2, col: 2 });
        assert_eq!(Pos { line: 3, col: 4 }.to_string(), "3:4");
    }
}
