//! Abstract syntax tree of mini-C.
//!
//! The language is the "simplified version of C" the paper's prototype
//! analysis engine treats: `int` scalars and fixed-size `int` arrays,
//! global variables, functions, assignments, arithmetic/comparison/logic
//! operators, `if`/`while`/`for`/`return`. Every **statement** carries a
//! dense [`NodeId`]; the analysis engine attaches one heap-backed
//! `Attributes` structure per statement id (paper §4.1).

use crate::token::Pos;

/// Dense statement identifier, assigned by the parser in pre-order.
pub type NodeId = u32;

/// A mini-C type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// `int`.
    Int,
    /// `int[n]` (named arrays only; no pointer arithmetic).
    IntArray,
    /// `void` (function returns only).
    Void,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Global variable declarations.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, in source order.
    pub functions: Vec<Function>,
    /// Total number of statements (= number of [`NodeId`]s issued).
    pub stmt_count: u32,
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// `Int` or `IntArray`.
    pub ty: Type,
    /// Array size for `IntArray` globals.
    pub array_size: Option<usize>,
    /// Source position.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type (`Int` or `Void`).
    pub ret: Type,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Source position.
    pub pos: Pos,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// `Int` or `IntArray`.
    pub ty: Type,
}

/// A brace-delimited statement sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

/// A statement with identity and position.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Dense statement id.
    pub id: NodeId,
    /// Source position.
    pub pos: Pos,
    /// The statement proper.
    pub kind: StmtKind,
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement (usually an assignment or call).
    Expr(Expr),
    /// Local declaration, with optional initializer.
    Decl {
        /// Variable name.
        name: String,
        /// `Int` or `IntArray`.
        ty: Type,
        /// Array size for `IntArray` locals.
        array_size: Option<usize>,
        /// Optional initializer (scalars only).
        init: Option<Expr>,
    },
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Block,
        /// Optional else branch.
        else_branch: Option<Block>,
    },
    /// `while (cond) { .. }`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `for (init; cond; step) { .. }` — all three parts optional.
    For {
        /// Initialization expression.
        init: Option<Expr>,
        /// Loop condition.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Block,
    },
    /// `return expr?;`.
    Return(Option<Expr>),
    /// `break;` — exits the innermost loop.
    Break,
    /// `continue;` — skips to the next iteration of the innermost loop.
    Continue,
    /// Nested block.
    Block(Block),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Source position.
    pub pos: Pos,
    /// The expression proper.
    pub kind: ExprKind,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Scalar variable read.
    Var(String),
    /// Array element read `a[i]`.
    Index {
        /// Array name.
        array: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Assignment `lv = e` (an expression, as in C).
    Assign {
        /// Assignment target.
        target: LValue,
        /// Value.
        value: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Index {
        /// Array name.
        array: String,
        /// Index expression.
        index: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Visits every statement in the program, in pre-order.
    pub fn for_each_stmt(&self, f: &mut impl FnMut(&Stmt)) {
        for func in &self.functions {
            visit_block(&func.body, f);
        }
    }

    /// Collects the ids of all statements, in visit order.
    pub fn stmt_ids(&self) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(self.stmt_count as usize);
        self.for_each_stmt(&mut |s| ids.push(s.id));
        ids
    }
}

fn visit_block(block: &Block, f: &mut impl FnMut(&Stmt)) {
    for stmt in &block.stmts {
        f(stmt);
        match &stmt.kind {
            StmtKind::If { then_branch, else_branch, .. } => {
                visit_block(then_branch, f);
                if let Some(e) = else_branch {
                    visit_block(e, f);
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => visit_block(body, f),
            StmtKind::Block(b) => visit_block(b, f),
            StmtKind::Expr(_)
            | StmtKind::Decl { .. }
            | StmtKind::Return(_)
            | StmtKind::Break
            | StmtKind::Continue => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_expr() -> Expr {
        Expr { pos: Pos::default(), kind: ExprKind::IntLit(0) }
    }

    fn stmt(id: NodeId, kind: StmtKind) -> Stmt {
        Stmt { id, pos: Pos::default(), kind }
    }

    #[test]
    fn statement_visitor_reaches_nested_statements() {
        let body = Block {
            stmts: vec![
                stmt(0, StmtKind::Expr(dummy_expr())),
                stmt(
                    1,
                    StmtKind::If {
                        cond: dummy_expr(),
                        then_branch: Block { stmts: vec![stmt(2, StmtKind::Return(None))] },
                        else_branch: Some(Block {
                            stmts: vec![stmt(
                                3,
                                StmtKind::While {
                                    cond: dummy_expr(),
                                    body: Block {
                                        stmts: vec![stmt(4, StmtKind::Expr(dummy_expr()))],
                                    },
                                },
                            )],
                        }),
                    },
                ),
            ],
        };
        let program = Program {
            globals: vec![],
            functions: vec![Function {
                name: "f".into(),
                ret: Type::Void,
                params: vec![],
                body,
                pos: Pos::default(),
            }],
            stmt_count: 5,
        };
        assert_eq!(program.stmt_ids(), vec![0, 1, 2, 3, 4]);
        assert!(program.function("f").is_some());
        assert!(program.function("g").is_none());
        assert!(program.global("x").is_none());
    }
}
