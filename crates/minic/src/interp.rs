//! A tree-walking interpreter for mini-C.
//!
//! The analyses in `ickp-analysis` are purely static, but the workload
//! programs should be *real programs*: the interpreter lets tests and
//! examples execute them and check their results, which keeps the
//! generated image-manipulation benchmark honest (it computes, not just
//! parses).

use crate::ast::*;
use crate::error::{ErrorKind, MinicError};
use crate::token::Pos;
use std::collections::HashMap;

/// Execution limits for the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of statements + expression evaluations.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits { max_steps: 50_000_000, max_depth: 256 }
    }
}

/// Interpreter state: global variable values persist across calls.
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    globals: HashMap<String, Slot>,
    limits: Limits,
    steps: u64,
}

#[derive(Debug, Clone)]
enum Slot {
    Scalar(i64),
    Array(Vec<i64>),
}

enum Flow {
    Normal,
    Return(Option<i64>),
    Break,
    Continue,
}

type Frame = Vec<HashMap<String, Slot>>;

impl<'p> Interp<'p> {
    /// Creates an interpreter with zero-initialized globals.
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp::with_limits(program, Limits::default())
    }

    /// Creates an interpreter with explicit execution limits.
    pub fn with_limits(program: &'p Program, limits: Limits) -> Interp<'p> {
        let mut globals = HashMap::new();
        for g in &program.globals {
            let slot = match g.ty {
                Type::IntArray => Slot::Array(vec![0; g.array_size.unwrap_or(0)]),
                _ => Slot::Scalar(0),
            };
            globals.insert(g.name.clone(), slot);
        }
        Interp { program, globals, limits, steps: 0 }
    }

    /// Calls a function by name with scalar arguments; array parameters
    /// are not supported through this entry point (call a wrapper without
    /// array parameters instead, as `main` typically is).
    ///
    /// # Errors
    ///
    /// Returns a runtime [`MinicError`] on undefined functions, arity
    /// mismatch, division by zero, out-of-bounds indexing, or exceeded
    /// limits.
    pub fn call(&mut self, name: &str, args: &[i64]) -> Result<Option<i64>, MinicError> {
        self.call_at_depth(name, args, 0, Pos::default())
    }

    /// Reads a global scalar after execution.
    pub fn global_scalar(&self, name: &str) -> Option<i64> {
        match self.globals.get(name)? {
            Slot::Scalar(v) => Some(*v),
            Slot::Array(_) => None,
        }
    }

    /// Reads a global array after execution.
    pub fn global_array(&self, name: &str) -> Option<&[i64]> {
        match self.globals.get(name)? {
            Slot::Array(v) => Some(v),
            Slot::Scalar(_) => None,
        }
    }

    /// Statements/expressions evaluated so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn tick(&mut self, pos: Pos) -> Result<(), MinicError> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(MinicError::new(ErrorKind::Runtime, pos, "step limit exceeded"));
        }
        Ok(())
    }

    fn call_at_depth(
        &mut self,
        name: &str,
        args: &[i64],
        depth: usize,
        pos: Pos,
    ) -> Result<Option<i64>, MinicError> {
        if depth >= self.limits.max_depth {
            return Err(MinicError::new(ErrorKind::Runtime, pos, "call depth exceeded"));
        }
        let program: &'p Program = self.program;
        let func = program.function(name).ok_or_else(|| {
            MinicError::new(ErrorKind::Runtime, pos, format!("no function `{name}`"))
        })?;
        if func.params.len() != args.len() {
            return Err(MinicError::new(
                ErrorKind::Runtime,
                pos,
                format!("`{name}` expects {} args, got {}", func.params.len(), args.len()),
            ));
        }
        let mut scope = HashMap::new();
        for (p, &v) in func.params.iter().zip(args) {
            match p.ty {
                Type::Int => {
                    scope.insert(p.name.clone(), Slot::Scalar(v));
                }
                Type::IntArray => {
                    return Err(MinicError::new(
                        ErrorKind::Runtime,
                        pos,
                        "array parameters unsupported at the call entry point",
                    ))
                }
                Type::Void => unreachable!("void parameters are unparseable"),
            }
        }
        let mut frame: Frame = vec![scope];
        match self.run_block(&func.body, &mut frame, depth)? {
            Flow::Return(v) => Ok(v),
            // Typecheck rejects break/continue outside loops, so a Break
            // or Continue can never escape a function body.
            Flow::Normal | Flow::Break | Flow::Continue => Ok(None),
        }
    }

    fn run_block(
        &mut self,
        block: &Block,
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, MinicError> {
        frame.push(HashMap::new());
        for stmt in &block.stmts {
            match self.run_stmt(stmt, frame, depth)? {
                Flow::Normal => {}
                ret => {
                    frame.pop();
                    return Ok(ret);
                }
            }
        }
        frame.pop();
        Ok(Flow::Normal)
    }

    fn run_stmt(
        &mut self,
        stmt: &Stmt,
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, MinicError> {
        self.tick(stmt.pos)?;
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.eval(e, frame, depth)?;
                Ok(Flow::Normal)
            }
            StmtKind::Decl { name, ty, array_size, init } => {
                let slot = match ty {
                    Type::IntArray => Slot::Array(vec![0; array_size.unwrap_or(0)]),
                    _ => Slot::Scalar(match init {
                        Some(e) => self.eval(e, frame, depth)?,
                        None => 0,
                    }),
                };
                frame.last_mut().expect("frame nonempty").insert(name.clone(), slot);
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                if self.eval(cond, frame, depth)? != 0 {
                    self.run_block(then_branch, frame, depth)
                } else if let Some(e) = else_branch {
                    self.run_block(e, frame, depth)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval(cond, frame, depth)? != 0 {
                    match self.run_block(body, frame, depth)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(e) = init {
                    self.eval(e, frame, depth)?;
                }
                loop {
                    if let Some(c) = cond {
                        if self.eval(c, frame, depth)? == 0 {
                            break;
                        }
                    }
                    match self.run_block(body, frame, depth)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    if let Some(s) = step {
                        self.eval(s, frame, depth)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.eval(e, frame, depth)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Block(b) => self.run_block(b, frame, depth),
        }
    }

    fn read_var(&self, name: &str, frame: &Frame, pos: Pos) -> Result<i64, MinicError> {
        for scope in frame.iter().rev() {
            if let Some(slot) = scope.get(name) {
                return match slot {
                    Slot::Scalar(v) => Ok(*v),
                    Slot::Array(_) => Err(MinicError::new(
                        ErrorKind::Runtime,
                        pos,
                        format!("`{name}` is an array"),
                    )),
                };
            }
        }
        match self.globals.get(name) {
            Some(Slot::Scalar(v)) => Ok(*v),
            Some(Slot::Array(_)) => {
                Err(MinicError::new(ErrorKind::Runtime, pos, format!("`{name}` is an array")))
            }
            None => Err(MinicError::new(ErrorKind::Runtime, pos, format!("undefined `{name}`"))),
        }
    }

    fn with_array<R>(
        &mut self,
        name: &str,
        frame: &mut Frame,
        pos: Pos,
        f: impl FnOnce(&mut Vec<i64>) -> Result<R, MinicError>,
    ) -> Result<R, MinicError> {
        for scope in frame.iter_mut().rev() {
            if let Some(Slot::Array(arr)) = scope.get_mut(name) {
                return f(arr);
            }
            if scope.contains_key(name) {
                return Err(MinicError::new(
                    ErrorKind::Runtime,
                    pos,
                    format!("`{name}` is not an array"),
                ));
            }
        }
        match self.globals.get_mut(name) {
            Some(Slot::Array(arr)) => f(arr),
            Some(_) => {
                Err(MinicError::new(ErrorKind::Runtime, pos, format!("`{name}` is not an array")))
            }
            None => Err(MinicError::new(ErrorKind::Runtime, pos, format!("undefined `{name}`"))),
        }
    }

    fn write_var(
        &mut self,
        name: &str,
        value: i64,
        frame: &mut Frame,
        pos: Pos,
    ) -> Result<(), MinicError> {
        for scope in frame.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                match slot {
                    Slot::Scalar(v) => {
                        *v = value;
                        return Ok(());
                    }
                    Slot::Array(_) => {
                        return Err(MinicError::new(
                            ErrorKind::Runtime,
                            pos,
                            format!("cannot assign array `{name}`"),
                        ))
                    }
                }
            }
        }
        match self.globals.get_mut(name) {
            Some(Slot::Scalar(v)) => {
                *v = value;
                Ok(())
            }
            Some(Slot::Array(_)) => Err(MinicError::new(
                ErrorKind::Runtime,
                pos,
                format!("cannot assign array `{name}`"),
            )),
            None => Err(MinicError::new(ErrorKind::Runtime, pos, format!("undefined `{name}`"))),
        }
    }

    fn eval(&mut self, e: &Expr, frame: &mut Frame, depth: usize) -> Result<i64, MinicError> {
        self.tick(e.pos)?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(*v),
            ExprKind::Var(name) => self.read_var(name, frame, e.pos),
            ExprKind::Index { array, index } => {
                let i = self.eval(index, frame, depth)?;
                self.with_array(array, frame, e.pos, |arr| {
                    usize::try_from(i).ok().and_then(|i| arr.get(i).copied()).ok_or_else(|| {
                        MinicError::new(
                            ErrorKind::Runtime,
                            e.pos,
                            format!("index {i} out of bounds (len {})", arr.len()),
                        )
                    })
                })
            }
            ExprKind::Assign { target, value } => {
                let v = self.eval(value, frame, depth)?;
                match target {
                    LValue::Var(name) => self.write_var(name, v, frame, e.pos)?,
                    LValue::Index { array, index } => {
                        let i = self.eval(index, frame, depth)?;
                        self.with_array(array, frame, e.pos, |arr| {
                            let len = arr.len();
                            let slot = usize::try_from(i)
                                .ok()
                                .and_then(|i| arr.get_mut(i))
                                .ok_or_else(|| {
                                    MinicError::new(
                                        ErrorKind::Runtime,
                                        e.pos,
                                        format!("index {i} out of bounds (len {len})"),
                                    )
                                })?;
                            *slot = v;
                            Ok(())
                        })?;
                    }
                }
                Ok(v)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // Short-circuit logic first.
                match op {
                    BinOp::And => {
                        return Ok(
                            if self.eval(lhs, frame, depth)? != 0
                                && self.eval(rhs, frame, depth)? != 0
                            {
                                1
                            } else {
                                0
                            },
                        )
                    }
                    BinOp::Or => {
                        return Ok(
                            if self.eval(lhs, frame, depth)? != 0
                                || self.eval(rhs, frame, depth)? != 0
                            {
                                1
                            } else {
                                0
                            },
                        )
                    }
                    _ => {}
                }
                let a = self.eval(lhs, frame, depth)?;
                let b = self.eval(rhs, frame, depth)?;
                let div_guard = |b: i64| {
                    if b == 0 {
                        Err(MinicError::new(ErrorKind::Runtime, e.pos, "division by zero"))
                    } else {
                        Ok(b)
                    }
                };
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => a.wrapping_div(div_guard(b)?),
                    BinOp::Rem => a.wrapping_rem(div_guard(b)?),
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                })
            }
            ExprKind::Unary { op, expr } => {
                let v = self.eval(expr, frame, depth)?;
                Ok(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                })
            }
            ExprKind::Call { name, args } => {
                // Array arguments alias the caller's array: mini-C passes
                // arrays by reference like C. We support only *global*
                // arrays as arguments (the simplification the analyses
                // also make), so the callee accesses them as globals under
                // the parameter name.
                let mut scalar_args = Vec::with_capacity(args.len());
                let mut array_aliases: Vec<(String, String)> = Vec::new();
                let program: &'p Program = self.program;
                let func = program.function(name).ok_or_else(|| {
                    MinicError::new(ErrorKind::Runtime, e.pos, format!("no function `{name}`"))
                })?;
                for (arg, param) in args.iter().zip(&func.params) {
                    match param.ty {
                        Type::IntArray => match &arg.kind {
                            ExprKind::Var(global) => {
                                array_aliases.push((param.name.clone(), global.clone()))
                            }
                            _ => {
                                return Err(MinicError::new(
                                    ErrorKind::Runtime,
                                    arg.pos,
                                    "array argument must be a global array name",
                                ))
                            }
                        },
                        _ => scalar_args.push(self.eval(arg, frame, depth)?),
                    }
                }
                // Install aliases by temporarily moving the global arrays
                // under the parameter names.
                let mut moved: Vec<(String, String, Slot)> = Vec::new();
                for (param, global) in &array_aliases {
                    let slot = self.globals.remove(global).ok_or_else(|| {
                        MinicError::new(
                            ErrorKind::Runtime,
                            e.pos,
                            format!("array argument `{global}` must be a global array"),
                        )
                    })?;
                    self.globals.insert(param.clone(), slot);
                    moved.push((param.clone(), global.clone(), Slot::Scalar(0)));
                }
                let result = self.call_scalars_only(name, &scalar_args, depth + 1, e.pos);
                // Restore aliased arrays under their original names.
                for (param, global, _) in moved {
                    if let Some(slot) = self.globals.remove(&param) {
                        self.globals.insert(global, slot);
                    }
                }
                Ok(result?.unwrap_or(0))
            }
        }
    }

    fn call_scalars_only(
        &mut self,
        name: &str,
        scalars: &[i64],
        depth: usize,
        pos: Pos,
    ) -> Result<Option<i64>, MinicError> {
        if depth >= self.limits.max_depth {
            return Err(MinicError::new(ErrorKind::Runtime, pos, "call depth exceeded"));
        }
        let program: &'p Program = self.program;
        let func = program.function(name).ok_or_else(|| {
            MinicError::new(ErrorKind::Runtime, pos, format!("no function `{name}`"))
        })?;
        let mut scope = HashMap::new();
        let mut it = scalars.iter();
        for p in &func.params {
            if p.ty == Type::Int {
                let v = *it.next().ok_or_else(|| {
                    MinicError::new(ErrorKind::Runtime, pos, "missing scalar argument")
                })?;
                scope.insert(p.name.clone(), Slot::Scalar(v));
            }
            // Array params resolve through the aliased globals.
        }
        let mut frame: Frame = vec![scope];
        match self.run_block(&func.body, &mut frame, depth)? {
            Flow::Return(v) => Ok(v),
            // Typecheck rejects break/continue outside loops, so a Break
            // or Continue can never escape a function body.
            Flow::Normal | Flow::Break | Flow::Continue => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typecheck::typecheck;

    fn program(src: &str) -> Program {
        let p = parse(src).unwrap();
        typecheck(&p).unwrap();
        p
    }

    #[test]
    fn arithmetic_and_calls_evaluate() {
        let p = program("int add(int a, int b) { return a + b * 2; } ");
        let mut i = Interp::new(&p);
        assert_eq!(i.call("add", &[1, 3]).unwrap(), Some(7));
    }

    #[test]
    fn globals_persist_across_calls() {
        let p = program("int g; void bump() { g = g + 1; }");
        let mut i = Interp::new(&p);
        i.call("bump", &[]).unwrap();
        i.call("bump", &[]).unwrap();
        assert_eq!(i.global_scalar("g"), Some(2));
    }

    #[test]
    fn loops_and_arrays_work() {
        let p = program(
            "int a[10];
             void fill() { int i; for (i = 0; i < 10; i = i + 1) { a[i] = i * i; } }",
        );
        let mut i = Interp::new(&p);
        i.call("fill", &[]).unwrap();
        let squares: Vec<i64> = (0..10).map(|x| x * x).collect();
        assert_eq!(i.global_array("a").unwrap(), squares.as_slice());
    }

    #[test]
    fn array_parameters_alias_global_arrays() {
        let p = program(
            "int src[4]; int dst[4];
             void copy(int a[], int b[]) { int i; for (i = 0; i < 4; i = i + 1) { b[i] = a[i]; } }
             void init() { int i; for (i = 0; i < 4; i = i + 1) { src[i] = i + 1; } }
             void main() { init(); copy(src, dst); }",
        );
        let mut i = Interp::new(&p);
        i.call("main", &[]).unwrap();
        assert_eq!(i.global_array("dst").unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn short_circuit_evaluation_protects_rhs() {
        // Without short-circuit the rhs would divide by zero.
        let p = program("int f(int x) { if (x != 0 && 10 / x > 1) { return 1; } return 0; }");
        let mut i = Interp::new(&p);
        assert_eq!(i.call("f", &[0]).unwrap(), Some(0));
        assert_eq!(i.call("f", &[2]).unwrap(), Some(1));
    }

    #[test]
    fn division_by_zero_is_a_runtime_error() {
        let p = program("int f(int x) { return 1 / x; }");
        let mut i = Interp::new(&p);
        assert!(i.call("f", &[0]).is_err());
    }

    #[test]
    fn out_of_bounds_indexing_is_a_runtime_error() {
        let p = program("int a[2]; int f(int i) { return a[i]; }");
        let mut i = Interp::new(&p);
        assert!(i.call("f", &[5]).is_err());
        assert!(i.call("f", &[-1]).is_err());
        assert!(i.call("f", &[1]).is_ok());
    }

    #[test]
    fn infinite_loops_hit_the_step_limit() {
        let p = program("void f() { while (1) {} }");
        let mut i = Interp::with_limits(&p, Limits { max_steps: 10_000, max_depth: 8 });
        let err = i.call("f", &[]).unwrap_err();
        assert!(err.to_string().contains("step limit"));
    }

    #[test]
    fn runaway_recursion_hits_the_depth_limit() {
        let p = program("int f(int x) { return f(x); }");
        let mut i = Interp::with_limits(&p, Limits { max_steps: 1_000_000, max_depth: 16 });
        assert!(i.call("f", &[1]).unwrap_err().to_string().contains("depth"));
    }

    #[test]
    fn recursion_computes_factorial() {
        let p = program("int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }");
        let mut i = Interp::new(&p);
        assert_eq!(i.call("fact", &[6]).unwrap(), Some(720));
    }

    #[test]
    fn return_exits_nested_loops() {
        let p = program(
            "int f() { int i; int j;
               for (i = 0; i < 10; i = i + 1) {
                 for (j = 0; j < 10; j = j + 1) { if (i * 10 + j == 42) { return i * 10 + j; } }
               } return -1; }",
        );
        let mut i = Interp::new(&p);
        assert_eq!(i.call("f", &[]).unwrap(), Some(42));
    }

    #[test]
    fn steps_counter_advances() {
        let p = program("void f() { int i; for (i = 0; i < 5; i = i + 1) {} }");
        let mut i = Interp::new(&p);
        i.call("f", &[]).unwrap();
        assert!(i.steps() > 10);
    }
}
