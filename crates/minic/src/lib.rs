//! # ickp-minic — the mini-C language substrate
//!
//! The paper's realistic benchmark is a Java program-analysis engine that
//! "treats a simplified version of C" (§4.1). This crate is that simplified
//! C: a lexer, recursive-descent parser, typechecker, pretty printer, and
//! tree-walking interpreter for a language of `int` scalars, fixed-size
//! `int` arrays, globals, functions and structured control flow.
//!
//! Every statement carries a dense [`NodeId`]; `ickp-analysis` attaches one
//! heap-backed `Attributes` structure per statement and runs the paper's
//! three analyses (side-effect, binding-time, evaluation-time) over this
//! AST, checkpointing after every fixpoint iteration.
//!
//! [`programs`] generates the workload inputs, including the ≈750-line
//! image-manipulation program the paper analyzes.
//!
//! ## Example
//!
//! ```
//! use ickp_minic::{parse, typecheck, Interp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse("int g; void main() { int i; for (i = 0; i < 5; i = i + 1) { g = g + i; } }")?;
//! typecheck(&program)?;
//! let mut interp = Interp::new(&program);
//! interp.call("main", &[])?;
//! assert_eq!(interp.global_scalar("g"), Some(10));
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod interp;
mod lexer;
mod parser;
mod pretty;
pub mod programs;
mod token;
mod typecheck;

pub use ast::{
    BinOp, Block, Expr, ExprKind, Function, GlobalDecl, LValue, NodeId, Param, Program, Stmt,
    StmtKind, Type, UnOp,
};
pub use error::{ErrorKind, MinicError};
pub use interp::{Interp, Limits};
pub use lexer::lex;
pub use parser::parse;
pub use pretty::pretty;
pub use token::{Pos, SpannedToken, Token};
pub use typecheck::typecheck;
