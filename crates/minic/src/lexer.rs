//! The mini-C lexer.

use crate::error::{ErrorKind, MinicError};
use crate::token::{Pos, SpannedToken, Token};

/// Tokenizes mini-C source into a token stream ending with [`Token::Eof`].
///
/// Supports `//` line comments and `/* */` block comments.
///
/// # Errors
///
/// Returns a [`MinicError`] of kind `Lex` on an unexpected character,
/// an unterminated block comment, or an integer literal overflowing `i64`.
///
/// # Example
///
/// ```
/// use ickp_minic::lex;
/// let tokens = lex("int x = 42;")?;
/// assert_eq!(tokens.len(), 6); // int, x, =, 42, ;, EOF
/// # Ok::<(), ickp_minic::MinicError>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<SpannedToken>, MinicError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let pos = Pos { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                bump!();
                bump!();
                let mut closed = false;
                while i < chars.len() {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        bump!();
                        bump!();
                        closed = true;
                        break;
                    }
                    bump!();
                }
                if !closed {
                    return Err(MinicError::new(ErrorKind::Lex, pos, "unterminated block comment"));
                }
            }
            c if c.is_ascii_digit() => {
                let mut value: i64 = 0;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    let digit = (chars[i] as u8 - b'0') as i64;
                    value = value.checked_mul(10).and_then(|v| v.checked_add(digit)).ok_or_else(
                        || MinicError::new(ErrorKind::Lex, pos, "integer literal overflows i64"),
                    )?;
                    bump!();
                }
                tokens.push(SpannedToken { token: Token::IntLit(value), pos });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
                let word: String = chars[start..i].iter().collect();
                let token = match word.as_str() {
                    "int" => Token::KwInt,
                    "void" => Token::KwVoid,
                    "if" => Token::KwIf,
                    "else" => Token::KwElse,
                    "while" => Token::KwWhile,
                    "for" => Token::KwFor,
                    "return" => Token::KwReturn,
                    "break" => Token::KwBreak,
                    "continue" => Token::KwContinue,
                    _ => Token::Ident(word),
                };
                tokens.push(SpannedToken { token, pos });
            }
            _ => {
                let two = |a: char, b: char| c == a && chars.get(i + 1) == Some(&b);
                let (token, width) = if two('=', '=') {
                    (Token::Eq, 2)
                } else if two('!', '=') {
                    (Token::Ne, 2)
                } else if two('<', '=') {
                    (Token::Le, 2)
                } else if two('>', '=') {
                    (Token::Ge, 2)
                } else if two('&', '&') {
                    (Token::AndAnd, 2)
                } else if two('|', '|') {
                    (Token::OrOr, 2)
                } else {
                    let t = match c {
                        '(' => Token::LParen,
                        ')' => Token::RParen,
                        '{' => Token::LBrace,
                        '}' => Token::RBrace,
                        '[' => Token::LBracket,
                        ']' => Token::RBracket,
                        ';' => Token::Semi,
                        ',' => Token::Comma,
                        '=' => Token::Assign,
                        '+' => Token::Plus,
                        '-' => Token::Minus,
                        '*' => Token::Star,
                        '/' => Token::Slash,
                        '%' => Token::Percent,
                        '<' => Token::Lt,
                        '>' => Token::Gt,
                        '!' => Token::Not,
                        other => {
                            return Err(MinicError::new(
                                ErrorKind::Lex,
                                pos,
                                format!("unexpected character `{other}`"),
                            ))
                        }
                    };
                    (t, 1)
                };
                for _ in 0..width {
                    bump!();
                }
                tokens.push(SpannedToken { token, pos });
            }
        }
    }
    tokens.push(SpannedToken { token: Token::Eof, pos: Pos { line, col } });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_a_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Token::KwInt,
                Token::Ident("x".into()),
                Token::Assign,
                Token::IntLit(42),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_one_and_two_char_operators() {
        assert_eq!(
            kinds("< <= = == ! != > >= && ||"),
            vec![
                Token::Lt,
                Token::Le,
                Token::Assign,
                Token::Eq,
                Token::Not,
                Token::Ne,
                Token::Gt,
                Token::Ge,
                Token::AndAnd,
                Token::OrOr,
                Token::Eof
            ]
        );
    }

    #[test]
    fn keywords_are_not_identifiers_but_prefixes_are() {
        assert_eq!(kinds("if ifx")[0], Token::KwIf);
        assert_eq!(kinds("if ifx")[1], Token::Ident("ifx".into()));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\n b /* inner\n lines */ c"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = lex("int $x;").unwrap_err();
        assert!(err.to_string().contains('$'));
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(lex("99999999999999999999999999").is_err());
        assert_eq!(kinds("9223372036854775807")[0], Token::IntLit(i64::MAX));
    }

    #[test]
    fn empty_input_yields_only_eof() {
        assert_eq!(kinds(""), vec![Token::Eof]);
    }
}
