//! Workload program generators.
//!
//! The paper's realistic benchmark analyzes "a 750-line image manipulation
//! program" (§4.3). The original source is not published, so
//! [`image_program_source`] generates a comparable one: a pipeline of 3×3
//! convolution filters plus histogram/threshold/normalize passes over a
//! 64×64 image, written in mini-C. Only its *shape* matters to the
//! reproduction — the number of statements determines the number of
//! `Attributes` structures the analyses create and the checkpointer
//! traverses.
//!
//! The generated program is a real program: it typechecks and runs under
//! the interpreter, and `checksum()` returns a deterministic value that
//! tests pin down.

use crate::ast::Program;
use crate::parser::parse;
use std::fmt::Write as _;

/// Image side length used by the generated program.
pub const IMAGE_DIM: usize = 32;

/// Number of convolution stages in the default program (tuned so the
/// pretty-printed source is ≈750 lines, like the paper's input).
pub const DEFAULT_FILTERS: usize = 20;

/// Generates the image-manipulation workload source with `filters`
/// convolution stages.
pub fn image_program_source(filters: usize) -> String {
    let n = IMAGE_DIM;
    let total = n * n;
    let mut s = String::new();
    let _ = writeln!(s, "int image[{total}];");
    let _ = writeln!(s, "int work[{total}];");
    let _ = writeln!(s, "int hist[256];");
    let _ = writeln!(s, "int checksum_value;");
    let _ = writeln!(s);

    // `main` is emitted first, callees after their callers: the
    // inter-procedural fixpoints then need multiple passes to converge,
    // giving the analyses the multi-iteration profile the paper's Table 1
    // exploits (one checkpoint per iteration).
    let _ = writeln!(s, "void main() {{");
    let _ = writeln!(s, "    init_image();");
    for k in 0..filters {
        let _ = writeln!(s, "    filter{k}(image, work);");
        let _ = writeln!(s, "    copy_back(work, image);");
    }
    let _ = writeln!(
        s,
        "    histogram(image);
    brighten(image, 3);
    threshold(image, median_cut());
    checksum_value = checksum(image);
}}
"
    );

    // Deterministic pseudo-random content.
    let _ = writeln!(
        s,
        "void init_image() {{
    int i;
    int v;
    v = 7;
    for (i = 0; i < {total}; i = i + 1) {{
        v = (v * 1103 + 12345) % 256;
        if (v < 0) {{
            v = -v;
        }}
        image[i] = v;
    }}
}}
"
    );

    // Convolution stages with varying integer kernels. Kernel weights are
    // derived from the stage index so every function body is distinct.
    for k in 0..filters {
        let w: Vec<i64> = (0..9)
            .map(|t| {
                let raw = ((k * 31 + t * 17 + 3) % 7) as i64 - 2; // -2..=4
                if t == 4 {
                    raw.abs() + 2 // centre weight positive
                } else {
                    raw
                }
            })
            .collect();
        let wsum: i64 = w.iter().sum::<i64>().max(1);
        let _ = writeln!(
            s,
            "void filter{k}(int src[], int dst[]) {{
    int x;
    int y;
    int acc;
    for (y = 1; y < {ym}; y = y + 1) {{
        for (x = 1; x < {xm}; x = x + 1) {{
            acc = src[(y - 1) * {n} + (x - 1)] * {w0};
            acc = acc + src[(y - 1) * {n} + x] * {w1};
            acc = acc + src[(y - 1) * {n} + (x + 1)] * {w2};
            acc = acc + src[y * {n} + (x - 1)] * {w3};
            acc = acc + src[y * {n} + x] * {w4};
            acc = acc + src[y * {n} + (x + 1)] * {w5};
            acc = acc + src[(y + 1) * {n} + (x - 1)] * {w6};
            acc = acc + src[(y + 1) * {n} + x] * {w7};
            acc = acc + src[(y + 1) * {n} + (x + 1)] * {w8};
            acc = acc / {wsum};
            if (acc < 0) {{
                acc = 0;
            }}
            if (acc > 255) {{
                acc = 255;
            }}
            dst[y * {n} + x] = acc;
        }}
    }}
}}
",
            ym = n - 1,
            xm = n - 1,
            w0 = w[0],
            w1 = w[1],
            w2 = w[2],
            w3 = w[3],
            w4 = w[4],
            w5 = w[5],
            w6 = w[6],
            w7 = w[7],
            w8 = w[8],
        );
    }

    let _ = writeln!(
        s,
        "void histogram(int src[]) {{
    int i;
    for (i = 0; i < 256; i = i + 1) {{
        hist[i] = 0;
    }}
    for (i = 0; i < {total}; i = i + 1) {{
        hist[src[i]] = hist[src[i]] + 1;
    }}
}}

void threshold(int src[], int cut) {{
    int i;
    for (i = 0; i < {total}; i = i + 1) {{
        if (src[i] < cut) {{
            src[i] = 0;
        }} else {{
            src[i] = 255;
        }}
    }}
}}

void brighten(int src[], int amount) {{
    int i;
    int v;
    for (i = 0; i < {total}; i = i + 1) {{
        v = src[i] + amount;
        if (v > 255) {{
            v = 255;
        }}
        src[i] = v;
    }}
}}

int median_cut() {{
    int i;
    int seen;
    int half;
    half = {half};
    seen = 0;
    for (i = 0; i < 256; i = i + 1) {{
        seen = seen + hist[i];
        if (seen >= half) {{
            return i;
        }}
    }}
    return 128;
}}

void copy_back(int src[], int dst[]) {{
    int i;
    for (i = 0; i < {total}; i = i + 1) {{
        dst[i] = src[i];
    }}
}}

int checksum(int src[]) {{
    int i;
    int sum;
    sum = 0;
    for (i = 0; i < {total}; i = i + 1) {{
        sum = (sum * 31 + src[i]) % 1000003;
        if (sum < 0) {{
            sum = -sum;
        }}
    }}
    return sum;
}}
",
        half = total / 2,
    );

    s
}

/// The default workload: parsed, ready for typechecking and analysis.
///
/// # Panics
///
/// Never in practice — the generated source always parses; a panic would
/// indicate a generator bug.
pub fn image_program() -> Program {
    parse(&image_program_source(DEFAULT_FILTERS)).expect("generated program parses")
}

/// A matrix workload: multiply, transpose, and trace of `n`×`n` integer
/// matrices. A second analysis input with a different mutation profile
/// (dense nested loops, no conditionals in the hot path).
pub fn matrix_program_source(n: usize) -> String {
    let total = n * n;
    format!(
        "int ma[{total}];
int mb[{total}];
int mc[{total}];
int trace_value;

void init() {{
    int i;
    for (i = 0; i < {total}; i = i + 1) {{
        ma[i] = (i * 7 + 3) % 19;
        mb[i] = (i * 5 + 1) % 17;
    }}
}}

void multiply(int x[], int y[], int z[]) {{
    int i;
    int j;
    int k;
    int acc;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            acc = 0;
            for (k = 0; k < {n}; k = k + 1) {{
                acc = acc + x[i * {n} + k] * y[k * {n} + j];
            }}
            z[i * {n} + j] = acc;
        }}
    }}
}}

void transpose(int x[]) {{
    int i;
    int j;
    int t;
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = i + 1; j < {n}; j = j + 1) {{
            t = x[i * {n} + j];
            x[i * {n} + j] = x[j * {n} + i];
            x[j * {n} + i] = t;
        }}
    }}
}}

int trace(int x[]) {{
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < {n}; i = i + 1) {{
        acc = acc + x[i * {n} + i];
    }}
    return acc;
}}

void main() {{
    init();
    multiply(ma, mb, mc);
    transpose(mc);
    trace_value = trace(mc);
}}
"
    )
}

/// A sorting workload: insertion sort plus a verification pass, a third
/// analysis input whose hot path is dominated by data-dependent
/// conditionals (everything downstream of the comparison is dynamic).
pub fn sort_program_source(n: usize) -> String {
    format!(
        "int data[{n}];
int sorted_ok;

void fill() {{
    int i;
    int v;
    v = 13;
    for (i = 0; i < {n}; i = i + 1) {{
        v = (v * 31 + 17) % 101;
        data[i] = v;
    }}
}}

void insertion_sort(int a[]) {{
    int i;
    int j;
    int key;
    for (i = 1; i < {n}; i = i + 1) {{
        key = a[i];
        j = i - 1;
        while (j >= 0 && a[j] > key) {{
            a[j + 1] = a[j];
            j = j - 1;
        }}
        a[j + 1] = key;
    }}
}}

int is_sorted(int a[]) {{
    int i;
    for (i = 1; i < {n}; i = i + 1) {{
        if (a[i - 1] > a[i]) {{
            return 0;
        }}
    }}
    return 1;
}}

void main() {{
    fill();
    insertion_sort(data);
    sorted_ok = is_sorted(data);
}}
"
    )
}

/// A minimal example program used in docs and quickstarts.
pub fn tiny_program_source() -> String {
    "int total;
int square(int x) {
    return x * x;
}
void main() {
    int i;
    total = 0;
    for (i = 1; i <= 10; i = i + 1) {
        total = total + square(i);
    }
}
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::typecheck::typecheck;

    #[test]
    fn image_program_is_about_750_lines() {
        let src = image_program_source(DEFAULT_FILTERS);
        let lines = src.lines().count();
        assert!((600..=900).contains(&lines), "expected roughly 750 lines, got {lines}");
    }

    #[test]
    fn image_program_parses_and_typechecks() {
        let p = image_program();
        typecheck(&p).unwrap();
        assert!(p.stmt_count > 100, "got {}", p.stmt_count);
        assert!(p.functions.len() > 20);
    }

    #[test]
    fn image_program_runs_and_produces_a_stable_checksum() {
        let p = image_program();
        typecheck(&p).unwrap();
        let mut i = Interp::new(&p);
        i.call("main", &[]).unwrap();
        let c1 = i.global_scalar("checksum_value").unwrap();
        // Deterministic: a second interpreter reproduces it.
        let mut j = Interp::new(&p);
        j.call("main", &[]).unwrap();
        assert_eq!(Some(c1), j.global_scalar("checksum_value"));
        assert!(c1 != 0);
    }

    #[test]
    fn filter_count_scales_the_program() {
        let small = image_program_source(2).lines().count();
        let large = image_program_source(10).lines().count();
        assert!(large > small + 8 * 20);
    }

    #[test]
    fn matrix_program_computes_a_stable_trace() {
        let p = parse(&matrix_program_source(6)).unwrap();
        typecheck(&p).unwrap();
        let mut i = Interp::new(&p);
        i.call("main", &[]).unwrap();
        let t1 = i.global_scalar("trace_value").unwrap();
        let mut j = Interp::new(&p);
        j.call("main", &[]).unwrap();
        assert_eq!(Some(t1), j.global_scalar("trace_value"));
    }

    #[test]
    fn transpose_is_an_involution() {
        // transpose(transpose(m)) == m: checked through the interpreter.
        let src = format!(
            "{}\nvoid double_transpose() {{ init(); multiply(ma, mb, mc); transpose(mc); transpose(mc); trace_value = trace(mc); }}",
            matrix_program_source(5)
        );
        let p = parse(&src).unwrap();
        typecheck(&p).unwrap();
        let mut once = Interp::new(&p);
        once.call("main", &[]).unwrap(); // one transpose
        let mut twice = Interp::new(&p);
        twice.call("double_transpose", &[]).unwrap();
        // trace is invariant under transpose, so both agree:
        assert_eq!(once.global_scalar("trace_value"), twice.global_scalar("trace_value"));
    }

    #[test]
    fn sort_program_actually_sorts() {
        let p = parse(&sort_program_source(40)).unwrap();
        typecheck(&p).unwrap();
        let mut i = Interp::new(&p);
        i.call("main", &[]).unwrap();
        assert_eq!(i.global_scalar("sorted_ok"), Some(1));
        let data = i.global_array("data").unwrap();
        assert!(data.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn extra_programs_run_through_the_analysis_corpus_sizes() {
        for src in [matrix_program_source(4), sort_program_source(16)] {
            let p = parse(&src).unwrap();
            typecheck(&p).unwrap();
            assert!(p.stmt_count > 15);
        }
    }

    #[test]
    fn tiny_program_computes_sum_of_squares() {
        let p = parse(&tiny_program_source()).unwrap();
        typecheck(&p).unwrap();
        let mut i = Interp::new(&p);
        i.call("main", &[]).unwrap();
        assert_eq!(i.global_scalar("total"), Some(385));
    }
}
