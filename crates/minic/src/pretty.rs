//! Pretty printer for mini-C programs.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a program back to parseable mini-C source.
///
/// Pretty-printing then re-parsing yields a structurally identical AST
/// (same statement ids, since pre-order is preserved).
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    for g in &program.globals {
        match g.array_size {
            Some(n) => {
                let _ = writeln!(out, "int {}[{}];", g.name, n);
            }
            None => {
                let _ = writeln!(out, "int {};", g.name);
            }
        }
    }
    for f in &program.functions {
        if !out.is_empty() {
            out.push('\n');
        }
        let ret = match f.ret {
            Type::Int => "int",
            Type::Void => "void",
            Type::IntArray => "int[]",
        };
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| match p.ty {
                Type::IntArray => format!("int {}[]", p.name),
                _ => format!("int {}", p.name),
            })
            .collect();
        let _ = writeln!(out, "{} {}({}) {{", ret, f.name, params.join(", "));
        print_block_body(&f.body, 1, &mut out);
        out.push_str("}\n");
    }
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block_body(block: &Block, level: usize, out: &mut String) {
    for stmt in &block.stmts {
        print_stmt(stmt, level, out);
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match &stmt.kind {
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{};", expr_str(e));
        }
        StmtKind::Decl { name, ty, array_size, init } => match (ty, array_size, init) {
            (Type::IntArray, Some(n), _) => {
                let _ = writeln!(out, "int {name}[{n}];");
            }
            (_, _, Some(e)) => {
                let _ = writeln!(out, "int {name} = {};", expr_str(e));
            }
            _ => {
                let _ = writeln!(out, "int {name};");
            }
        },
        StmtKind::If { cond, then_branch, else_branch } => {
            let _ = writeln!(out, "if ({}) {{", expr_str(cond));
            print_block_body(then_branch, level + 1, out);
            indent(level, out);
            match else_branch {
                Some(e) => {
                    out.push_str("} else {\n");
                    print_block_body(e, level + 1, out);
                    indent(level, out);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr_str(cond));
            print_block_body(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        StmtKind::For { init, cond, step, body } => {
            let part = |e: &Option<Expr>| e.as_ref().map(expr_str).unwrap_or_default();
            let _ = writeln!(out, "for ({}; {}; {}) {{", part(init), part(cond), part(step));
            print_block_body(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Return(value) => match value {
            Some(e) => {
                let _ = writeln!(out, "return {};", expr_str(e));
            }
            None => out.push_str("return;\n"),
        },
        StmtKind::Block(b) => {
            out.push_str("{\n");
            print_block_body(b, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
    }
}

fn expr_str(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::Var(name) => name.clone(),
        ExprKind::Index { array, index } => format!("{array}[{}]", expr_str(index)),
        ExprKind::Assign { target, value } => {
            let t = match target {
                LValue::Var(name) => name.clone(),
                LValue::Index { array, index } => format!("{array}[{}]", expr_str(index)),
            };
            format!("{t} = {}", expr_str(value))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let ops = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {} {})", expr_str(lhs), ops, expr_str(rhs))
        }
        ExprKind::Unary { op, expr } => {
            let ops = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("({ops}{})", expr_str(expr))
        }
        ExprKind::Call { name, args } => {
            let args: Vec<String> = args.iter().map(expr_str).collect();
            format!("{name}({})", args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn pretty_print_is_a_fixpoint_under_reparsing() {
        let src = "int g; int a[4];
            int f(int x, int b[]) { if (x > 0 && g < 3) { b[x] = f(x - 1, b) + 1; } else { return -x; } return 0; }
            void main() { int i; for (i = 0; i < 4; i = i + 1) { f(i, a); } while (g) { g = g - 1; } }";
        let once = pretty(&parse(src).unwrap());
        let twice = pretty(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn pretty_output_preserves_statement_ids() {
        let src = "void f() { int i; for (i = 0; i < 3; i = i + 1) { if (i) { i = i; } } }";
        let p1 = parse(src).unwrap();
        let p2 = parse(&pretty(&p1)).unwrap();
        assert_eq!(p1.stmt_ids(), p2.stmt_ids());
        assert_eq!(p1.stmt_count, p2.stmt_count);
    }

    #[test]
    fn parenthesization_preserves_semantics() {
        use crate::interp::Interp;
        use crate::typecheck::typecheck;
        let src = "int f(int x) { return 1 + x * 2 - -3 % (x + 1); }";
        let p1 = parse(src).unwrap();
        typecheck(&p1).unwrap();
        let p2 = parse(&pretty(&p1)).unwrap();
        typecheck(&p2).unwrap();
        for x in [0, 1, 5, -4] {
            let r1 = Interp::new(&p1).call("f", &[x]).unwrap();
            let r2 = Interp::new(&p2).call("f", &[x]).unwrap();
            assert_eq!(r1, r2, "x={x}");
        }
    }
}
