//! Errors of the mini-C front end and interpreter.

use crate::token::Pos;
use std::error::Error;
use std::fmt;

/// A front-end (lex/parse/typecheck) error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinicError {
    kind: ErrorKind,
    pos: Pos,
    message: String,
}

/// Which stage produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Lexical error (bad character, overflow).
    Lex,
    /// Syntax error.
    Parse,
    /// Type or name-resolution error.
    Type,
    /// Run-time error in the interpreter.
    Runtime,
}

impl MinicError {
    /// Creates an error.
    pub fn new(kind: ErrorKind, pos: Pos, message: impl Into<String>) -> MinicError {
        MinicError { kind, pos, message: message.into() }
    }

    /// The stage that failed.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The source position.
    pub fn pos(&self) -> Pos {
        self.pos
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for MinicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.kind {
            ErrorKind::Lex => "lex",
            ErrorKind::Parse => "parse",
            ErrorKind::Type => "type",
            ErrorKind::Runtime => "runtime",
        };
        write!(f, "{stage} error at {}: {}", self.pos, self.message)
    }
}

impl Error for MinicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_position_and_message() {
        let e = MinicError::new(ErrorKind::Parse, Pos { line: 2, col: 5 }, "expected `;`");
        let s = e.to_string();
        assert!(s.contains("parse"));
        assert!(s.contains("2:5"));
        assert!(s.contains("expected `;`"));
        assert_eq!(e.kind(), ErrorKind::Parse);
        assert_eq!(e.message(), "expected `;`");
    }
}
