//! Name resolution and type checking for mini-C.

use crate::ast::*;
use crate::error::{ErrorKind, MinicError};
use crate::token::Pos;
use std::collections::HashMap;

/// Checks a program: unique names, resolved variables, array/scalar usage,
/// call arity, and return types.
///
/// # Errors
///
/// Returns the first type error found.
///
/// # Example
///
/// ```
/// use ickp_minic::{parse, typecheck};
/// let program = parse("int g; void main() { g = 3; }")?;
/// typecheck(&program)?;
/// # Ok::<(), ickp_minic::MinicError>(())
/// ```
pub fn typecheck(program: &Program) -> Result<(), MinicError> {
    let mut checker = Checker {
        globals: HashMap::new(),
        functions: HashMap::new(),
        scopes: Vec::new(),
        current_ret: Type::Void,
        loop_depth: 0,
    };
    for g in &program.globals {
        if checker.globals.insert(g.name.clone(), g.ty).is_some() {
            return Err(err(g.pos, format!("global `{}` defined twice", g.name)));
        }
    }
    for f in &program.functions {
        if checker
            .functions
            .insert(f.name.clone(), (f.ret, f.params.iter().map(|p| p.ty).collect()))
            .is_some()
        {
            return Err(err(f.pos, format!("function `{}` defined twice", f.name)));
        }
        if checker.globals.contains_key(&f.name) {
            return Err(err(f.pos, format!("`{}` is both a global and a function", f.name)));
        }
    }
    for f in &program.functions {
        checker.current_ret = f.ret;
        checker.scopes.clear();
        let mut top = HashMap::new();
        for p in &f.params {
            if top.insert(p.name.clone(), p.ty).is_some() {
                return Err(err(f.pos, format!("parameter `{}` repeated", p.name)));
            }
        }
        checker.scopes.push(top);
        checker.block(&f.body)?;
    }
    Ok(())
}

fn err(pos: Pos, message: impl Into<String>) -> MinicError {
    MinicError::new(ErrorKind::Type, pos, message)
}

struct Checker {
    globals: HashMap<String, Type>,
    functions: HashMap<String, (Type, Vec<Type>)>,
    scopes: Vec<HashMap<String, Type>>,
    current_ret: Type,
    loop_depth: usize,
}

impl Checker {
    fn lookup(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(ty) = scope.get(name) {
                return Some(*ty);
            }
        }
        self.globals.get(name).copied()
    }

    fn block(&mut self, block: &Block) -> Result<(), MinicError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), MinicError> {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            StmtKind::Decl { name, ty, init, .. } => {
                if let Some(init) = init {
                    self.expect_int(init)?;
                }
                let scope = self.scopes.last_mut().expect("scope stack nonempty");
                if scope.insert(name.clone(), *ty).is_some() {
                    return Err(err(stmt.pos, format!("`{name}` declared twice in this scope")));
                }
                Ok(())
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                self.expect_int(cond)?;
                self.block(then_branch)?;
                if let Some(e) = else_branch {
                    self.block(e)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.expect_int(cond)?;
                self.loop_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                r
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(e) = init {
                    self.expr(e)?;
                }
                if let Some(e) = cond {
                    self.expect_int(e)?;
                }
                if let Some(e) = step {
                    self.expr(e)?;
                }
                self.loop_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                r
            }
            StmtKind::Return(value) => match (self.current_ret, value) {
                (Type::Void, None) => Ok(()),
                (Type::Void, Some(e)) => Err(err(e.pos, "void function cannot return a value")),
                (Type::Int, Some(e)) => self.expect_int(e),
                (Type::Int, None) => Err(err(stmt.pos, "function must return a value")),
                (Type::IntArray, _) => Err(err(stmt.pos, "functions cannot return arrays")),
            },
            StmtKind::Break => {
                if self.loop_depth == 0 {
                    return Err(err(stmt.pos, "`break` outside a loop"));
                }
                Ok(())
            }
            StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(err(stmt.pos, "`continue` outside a loop"));
                }
                Ok(())
            }
            StmtKind::Block(b) => self.block(b),
        }
    }

    fn expect_int(&mut self, e: &Expr) -> Result<(), MinicError> {
        match self.expr(e)? {
            Type::Int => Ok(()),
            other => Err(err(e.pos, format!("expected int expression, found {other:?}"))),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Type, MinicError> {
        match &e.kind {
            ExprKind::IntLit(_) => Ok(Type::Int),
            ExprKind::Var(name) => {
                self.lookup(name).ok_or_else(|| err(e.pos, format!("undefined variable `{name}`")))
            }
            ExprKind::Index { array, index } => {
                match self.lookup(array) {
                    Some(Type::IntArray) => {}
                    Some(_) => return Err(err(e.pos, format!("`{array}` is not an array"))),
                    None => return Err(err(e.pos, format!("undefined array `{array}`"))),
                }
                self.expect_int(index)?;
                Ok(Type::Int)
            }
            ExprKind::Assign { target, value } => {
                match target {
                    LValue::Var(name) => match self.lookup(name) {
                        Some(Type::Int) => {}
                        Some(_) => {
                            return Err(err(e.pos, format!("cannot assign whole array `{name}`")))
                        }
                        None => return Err(err(e.pos, format!("undefined variable `{name}`"))),
                    },
                    LValue::Index { array, index } => {
                        match self.lookup(array) {
                            Some(Type::IntArray) => {}
                            Some(_) => {
                                return Err(err(e.pos, format!("`{array}` is not an array")))
                            }
                            None => return Err(err(e.pos, format!("undefined array `{array}`"))),
                        }
                        self.expect_int(index)?;
                    }
                }
                self.expect_int(value)?;
                Ok(Type::Int)
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expect_int(lhs)?;
                self.expect_int(rhs)?;
                Ok(Type::Int)
            }
            ExprKind::Unary { expr, .. } => {
                self.expect_int(expr)?;
                Ok(Type::Int)
            }
            ExprKind::Call { name, args } => {
                let (ret, param_tys) = self
                    .functions
                    .get(name)
                    .cloned()
                    .ok_or_else(|| err(e.pos, format!("undefined function `{name}`")))?;
                if args.len() != param_tys.len() {
                    return Err(err(
                        e.pos,
                        format!(
                            "`{name}` expects {} arguments, got {}",
                            param_tys.len(),
                            args.len()
                        ),
                    ));
                }
                for (arg, expected) in args.iter().zip(&param_tys) {
                    match expected {
                        Type::Int => self.expect_int(arg)?,
                        Type::IntArray => match &arg.kind {
                            ExprKind::Var(n) if self.lookup(n) == Some(Type::IntArray) => {}
                            _ => {
                                return Err(err(
                                    arg.pos,
                                    "array parameter requires an array variable argument",
                                ))
                            }
                        },
                        Type::Void => unreachable!("void parameters are unparseable"),
                    }
                }
                if ret == Type::Void {
                    // A void call is only usable as a statement; modelling it
                    // as Int would let it flow into arithmetic. Returning
                    // Void and letting expect_int reject misuse.
                    Ok(Type::Void)
                } else {
                    Ok(ret)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<(), MinicError> {
        typecheck(&parse(src).unwrap())
    }

    #[test]
    fn accepts_a_well_typed_program() {
        check(
            "int g; int buf[8];
             int inc(int x) { return x + 1; }
             void main() { int i; for (i = 0; i < 8; i = i + 1) { buf[i] = inc(g); } }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_duplicate_globals_functions_and_locals() {
        assert!(check("int g; int g;").is_err());
        assert!(check("void f() {} void f() {}").is_err());
        assert!(check("void f() { int x; int x; }").is_err());
        assert!(check("void f(int a, int a) {}").is_err());
        assert!(check("int f; void f() {}").is_err());
    }

    #[test]
    fn shadowing_in_inner_scope_is_allowed() {
        check("void f() { int x; { int x; x = 1; } x = 2; }").unwrap();
    }

    #[test]
    fn rejects_undefined_names() {
        assert!(check("void f() { x = 1; }").is_err());
        assert!(check("void f() { g(); }").is_err());
        assert!(check("void f() { a[0] = 1; }").is_err());
    }

    #[test]
    fn rejects_scalar_array_confusion() {
        assert!(check("int g; void f() { g[0] = 1; }").is_err());
        assert!(check("int a[4]; void f() { a = 1; }").is_err());
        assert!(check("int a[4]; void f() { int x; x = a + 1; }").is_err());
    }

    #[test]
    fn array_arguments_must_be_array_variables() {
        check("int a[4]; void g(int b[]) {} void f() { g(a); }").unwrap();
        assert!(check("void g(int b[]) {} void f() { g(1); }").is_err());
        assert!(check("int x; void g(int b[]) {} void f() { g(x); }").is_err());
    }

    #[test]
    fn return_types_are_enforced() {
        assert!(check("int f() { return; }").is_err());
        assert!(check("void f() { return 1; }").is_err());
        check("int f() { return 1; } void g() { return; }").unwrap();
    }

    #[test]
    fn call_arity_is_enforced() {
        assert!(check("int f(int a) { return a; } void g() { f(); }").is_err());
        assert!(check("int f(int a) { return a; } void g() { f(1, 2); }").is_err());
    }

    #[test]
    fn void_calls_cannot_be_used_as_values() {
        assert!(check("void f() {} void g() { int x; x = f(); }").is_err());
        check("void f() {} void g() { f(); }").unwrap();
    }
}
