//! # ickp-backend — execution engines for the paper's JVM axis
//!
//! The paper evaluates every checkpointing configuration under three Java
//! execution engines: the JDK 1.2 JIT, HotSpot, and the Harissa
//! ahead-of-time Java→C compiler (Figures 11a/b, Table 2). A Rust
//! reproduction has no JVMs, so this crate rebuilds the *property the
//! engines differ by* — how much dispatch and checking overhead survives
//! into steady-state execution — as three real, measured dispatch
//! strategies. See [`Engine`] for the mapping.
//!
//! [`GenericBackend`] runs unspecialized incremental checkpointing under
//! an engine; [`SpecializedBackend`] runs a compiled plan under an
//! engine; [`ParallelBackend`] runs the parallel sharded engine from
//! `ickp-core` as a fourth implementation point (varying the execution
//! *schedule* rather than the dispatch mechanism). All emit standard
//! `CheckpointRecord`s, so every combination feeds the same store/restore
//! path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barrier_shadow;
mod engine;
mod generic;
mod parallel;
mod sanitize;
mod specialized;
mod threaded;

pub use barrier_shadow::{BarrierShadow, BarrierShadowReport};
pub use engine::Engine;
pub use generic::GenericBackend;
pub use parallel::ParallelBackend;
pub use sanitize::{AccessOverlap, SanitizerReport};
pub use specialized::SpecializedBackend;
pub use threaded::{Ctx, ThreadedPlan};
