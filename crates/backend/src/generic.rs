//! Generic (unspecialized) incremental checkpointing under each engine.
//!
//! The traversal is semantically identical to
//! `ickp_core::Checkpointer` in incremental mode; only the *dispatch
//! mechanism* for reaching each object's `record`/`fold` methods differs
//! per [`Engine`]:
//!
//! * `Jdk12` — a hash-table lookup per virtual call (itable search; the
//!   JIT neither caches nor inlines),
//! * `HotSpot` — a monomorphic inline cache per call site, falling back
//!   to the hash table on a miss,
//! * `Harissa` — direct dense-table dispatch (AOT-resolved).

use crate::barrier_shadow::{BarrierShadow, BarrierShadowReport};
use crate::engine::Engine;
use ickp_core::{
    BufferPool, CheckpointKind, CheckpointRecord, CoreError, JournalCache, MethodTable,
    StreamWriter, TraversalStats,
};
use ickp_heap::{ClassId, ClassRegistry, Heap, ObjectId, StableId};
use std::collections::{HashMap, HashSet};

/// Generic incremental checkpointing under a selected engine.
#[derive(Debug)]
pub struct GenericBackend {
    engine: Engine,
    table: MethodTable,
    /// Jdk12/HotSpot-miss path: class → dense index, looked up by hash.
    itable: HashMap<u32, ClassId>,
    /// HotSpot inline cache: the last class dispatched at this call site.
    cache: Option<ClassId>,
    next_seq: u64,
    /// Traversal-order cache for the dirty-set journal fast path, rebuilt
    /// by every slow-path checkpoint (see `ickp_core::JournalCache`).
    journal_cache: Option<JournalCache>,
    /// Recycles encode buffers between checkpoints.
    pool: BufferPool,
    /// Reusable `(position, id)` scratch for the fast path's sort.
    scratch: Vec<(u32, ObjectId)>,
    /// Differential journal sanitizer; populated (and fed) only when the
    /// `barrier-sanitize` feature arms it.
    shadow: Option<BarrierShadow>,
    /// Shadow verdict of the most recent checkpoint.
    last_barrier: Option<BarrierShadowReport>,
}

impl GenericBackend {
    /// Builds the backend for a class registry.
    pub fn new(engine: Engine, registry: &ClassRegistry) -> GenericBackend {
        let table = MethodTable::derive(registry);
        let itable = registry.iter().map(|d| (d.id().index() as u32, d.id())).collect();
        GenericBackend {
            engine,
            table,
            itable,
            cache: None,
            next_seq: 0,
            journal_cache: None,
            pool: BufferPool::default(),
            scratch: Vec::new(),
            #[cfg(feature = "barrier-sanitize")]
            shadow: Some(BarrierShadow::new(registry)),
            #[cfg(not(feature = "barrier-sanitize"))]
            shadow: None,
            last_barrier: None,
        }
    }

    /// The engine in force.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Resolves a class through the engine's dispatch mechanism.
    ///
    /// All three return the same class id — what differs is the work done
    /// to obtain it, which is exactly the overhead the engines differ by.
    #[inline]
    fn dispatch(&mut self, class: ClassId) -> Result<ClassId, CoreError> {
        match self.engine {
            Engine::Harissa => Ok(class),
            Engine::Jdk12 => self
                .itable
                .get(&(class.index() as u32))
                .copied()
                .ok_or(CoreError::UnknownClassIndex(class.index() as u32)),
            Engine::HotSpot => {
                if self.cache == Some(class) {
                    Ok(class)
                } else {
                    let resolved = self
                        .itable
                        .get(&(class.index() as u32))
                        .copied()
                        .ok_or(CoreError::UnknownClassIndex(class.index() as u32))?;
                    self.cache = Some(resolved);
                    Ok(resolved)
                }
            }
        }
    }

    /// Takes one incremental checkpoint of `roots`.
    ///
    /// With the `barrier-sanitize` cargo feature enabled, the emitted
    /// record is additionally folded into a [`BarrierShadow`] and the
    /// shadow is digest-compared against the live heap; the verdict is
    /// available from [`GenericBackend::barrier_report`] until the next
    /// checkpoint. The record bytes are identical either way.
    ///
    /// # Errors
    ///
    /// Fails like `ickp_core::Checkpointer::checkpoint`.
    pub fn checkpoint(
        &mut self,
        heap: &mut Heap,
        roots: &[ObjectId],
    ) -> Result<CheckpointRecord, CoreError> {
        let (record, fast_path) = self.checkpoint_impl(heap, roots)?;
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.absorb(&record)?;
            self.last_barrier = Some(shadow.verify(heap, roots, fast_path)?);
        }
        Ok(record)
    }

    /// The differential sanitizer's verdict on the most recent checkpoint,
    /// or `None` before the first checkpoint or when the `barrier-sanitize`
    /// feature is off (the unarmed backend verifies nothing).
    pub fn barrier_report(&self) -> Option<&BarrierShadowReport> {
        self.last_barrier.as_ref()
    }

    fn checkpoint_impl(
        &mut self,
        heap: &mut Heap,
        roots: &[ObjectId],
    ) -> Result<(CheckpointRecord, bool), CoreError> {
        let seq = self.next_seq;
        let root_ids: Vec<StableId> =
            roots.iter().map(|&r| heap.stable_id(r)).collect::<Result<_, _>>()?;
        if let Some(cache) = self.journal_cache.take() {
            if cache.is_valid(heap, roots) {
                let result = self.checkpoint_from_journal(heap, &cache, root_ids);
                self.journal_cache = Some(cache);
                return result.map(|record| (record, true));
            }
        }
        let (mut writer, reused) = self.writer_for(seq, &root_ids);
        let mut stats = TraversalStats { bytes_reused: reused, ..TraversalStats::default() };
        let mut builder = JournalCache::builder(heap, roots);

        let mut stack: Vec<ObjectId> = roots.iter().rev().copied().collect();
        let mut visited: HashSet<ObjectId> = HashSet::with_capacity(roots.len() * 4);
        while let Some(id) = stack.pop() {
            if !visited.insert(id) {
                continue;
            }
            stats.objects_visited += 1;
            stats.flag_tests += 1;
            builder.visit(id);
            let class = heap.class_of(id)?;
            if heap.is_modified(id)? {
                let resolved = self.dispatch(class)?;
                let def = heap.class(resolved)?;
                writer.begin_object(heap.stable_id(id)?, resolved, def.num_slots());
                stats.virtual_calls += 1;
                self.table.record(resolved)?(heap, id, &mut writer)?;
                stats.objects_recorded += 1;
                heap.reset_modified(id)?;
            }
            let resolved = self.dispatch(class)?;
            stats.virtual_calls += 1;
            let before = stack.len();
            self.table.fold(resolved)?(heap, id, &mut |child| {
                stack.push(child);
                Ok(())
            })?;
            stats.refs_followed += (stack.len() - before) as u64;
            stack[before..].reverse();
        }

        self.journal_cache = Some(builder.finish());
        heap.finish_journal_epoch();
        stats.bytes_written = writer.len() as u64;
        let bytes = writer.finish();
        self.next_seq += 1;
        Ok((
            CheckpointRecord::from_parts(seq, CheckpointKind::Incremental, root_ids, bytes, stats)
                .with_pool(self.pool.clone()),
            false,
        ))
    }

    /// The journal fast path under this backend's dispatch regime: records
    /// are emitted straight from the sorted dirty set, but each emission
    /// still pays the engine's dispatch cost (itable lookup, inline cache,
    /// or direct), so the engine axis stays measurable.
    fn checkpoint_from_journal(
        &mut self,
        heap: &mut Heap,
        cache: &JournalCache,
        root_ids: Vec<StableId>,
    ) -> Result<CheckpointRecord, CoreError> {
        let seq = self.next_seq;
        let mut scratch = std::mem::take(&mut self.scratch);
        let scanned = cache.collect_dirty(heap, &mut scratch);
        let hits = scratch.len() as u64;
        let mut stats = TraversalStats {
            flag_tests: scanned,
            journal_hits: hits,
            objects_visited: hits,
            subtrees_pruned: cache.reachable_len().saturating_sub(hits),
            ..TraversalStats::default()
        };

        let (mut writer, reused) = self.writer_for(seq, &root_ids);
        stats.bytes_reused = reused;
        for &(_, id) in &scratch {
            let class = heap.class_of(id)?;
            let resolved = self.dispatch(class)?;
            let def = heap.class(resolved)?;
            writer.begin_object(heap.stable_id(id)?, resolved, def.num_slots());
            stats.virtual_calls += 1;
            self.table.record(resolved)?(heap, id, &mut writer)?;
            stats.objects_recorded += 1;
            heap.reset_modified(id)?;
        }
        scratch.clear();
        self.scratch = scratch;
        heap.finish_journal_epoch();

        stats.bytes_written = writer.len() as u64;
        let bytes = writer.finish();
        self.next_seq += 1;
        Ok(CheckpointRecord::from_parts(seq, CheckpointKind::Incremental, root_ids, bytes, stats)
            .with_pool(self.pool.clone()))
    }

    fn writer_for(&mut self, seq: u64, root_ids: &[StableId]) -> (StreamWriter, u64) {
        match self.pool.acquire() {
            Some(buf) => {
                let reused = buf.capacity() as u64;
                (StreamWriter::with_buffer(buf, seq, CheckpointKind::Incremental, root_ids), reused)
            }
            None => (StreamWriter::new(seq, CheckpointKind::Incremental, root_ids), 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_core::{decode, CheckpointConfig, Checkpointer};
    use ickp_heap::{FieldType, Value};

    fn world() -> (Heap, Vec<ObjectId>) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let mut roots = Vec::new();
        for i in 0..10 {
            let tail = heap.alloc(node).unwrap();
            let head = heap.alloc(node).unwrap();
            heap.set_field(head, 0, Value::Int(i)).unwrap();
            heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
            roots.push(head);
        }
        (heap, roots)
    }

    #[test]
    fn every_engine_produces_the_reference_checkpoint() {
        for engine in Engine::ALL {
            let (mut heap, roots) = world();
            let (mut ref_heap, ref_roots) = world();

            let mut backend = GenericBackend::new(engine, heap.registry());
            let rec = backend.checkpoint(&mut heap, &roots).unwrap();

            let table = MethodTable::derive(ref_heap.registry());
            let mut core = Checkpointer::new(CheckpointConfig::incremental());
            let ref_rec = core.checkpoint(&mut ref_heap, &table, &ref_roots).unwrap();

            let a = decode(rec.bytes(), heap.registry()).unwrap();
            let b = decode(ref_rec.bytes(), ref_heap.registry()).unwrap();
            assert_eq!(a.objects, b.objects, "{engine}");
            assert_eq!(rec.stats().flag_tests, ref_rec.stats().flag_tests, "{engine}");
        }
    }

    #[test]
    fn incrementality_holds_across_engines() {
        for engine in Engine::ALL {
            let (mut heap, roots) = world();
            let mut backend = GenericBackend::new(engine, heap.registry());
            backend.checkpoint(&mut heap, &roots).unwrap();
            heap.set_field(roots[3], 0, Value::Int(99)).unwrap();
            let rec = backend.checkpoint(&mut heap, &roots).unwrap();
            assert_eq!(rec.stats().objects_recorded, 1, "{engine}");
            // The journal fast path visits only the dirty object and
            // prunes the other 19 reachable ones.
            assert_eq!(rec.stats().objects_visited, 1, "{engine}");
            assert_eq!(rec.stats().journal_hits, 1, "{engine}");
            assert_eq!(rec.stats().subtrees_pruned, 19, "{engine}");
            assert_eq!(rec.seq(), 1);
        }
    }

    #[test]
    fn engine_accessor_reports_configuration() {
        let (heap, _) = world();
        let backend = GenericBackend::new(Engine::HotSpot, heap.registry());
        assert_eq!(backend.engine(), Engine::HotSpot);
    }
}
