//! The execution-engine axis of the paper's evaluation.

use std::fmt;

/// An execution engine emulating one of the paper's three Java runtimes.
///
/// The paper measures every configuration under three engines whose
/// essential difference is *how much dispatch overhead survives into
/// steady-state execution*. We reproduce that axis with three genuinely
/// different dispatch implementations (measured, not modelled):
///
/// * [`Engine::Jdk12`] — the JDK 1.2 JIT: no devirtualization, no
///   inlining. Generic checkpointing dispatches through a hash-table
///   method lookup per call (interface-table search); specialized plans
///   run as *threaded code*, one boxed-closure indirection per residual
///   instruction.
/// * [`Engine::HotSpot`] — the HotSpot dynamic compiler: after a warmup
///   period it devirtualizes hot call sites. Generic checkpointing uses a
///   monomorphic inline cache; specialized plans run threaded during
///   warmup, then switch to the direct interpreter — but keep their
///   run-time class guards, as managed runtimes must.
/// * [`Engine::Harissa`] — the Harissa ahead-of-time Java→C compiler:
///   direct table dispatch for generic code, and for specialized code the
///   fully compiled plan with guards elided (the paper's generated C
///   trusts the specializer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// JDK 1.2 JIT-style execution.
    Jdk12,
    /// JDK 1.2 + HotSpot dynamic compiler.
    HotSpot,
    /// Harissa ahead-of-time compilation.
    Harissa,
}

impl Engine {
    /// All engines, in the paper's presentation order.
    pub const ALL: [Engine; 3] = [Engine::Jdk12, Engine::HotSpot, Engine::Harissa];

    /// Checkpoints executed threaded before HotSpot "compiles" the plan.
    pub const HOTSPOT_WARMUP: u64 = 2;
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Jdk12 => write!(f, "JDK 1.2"),
            Engine::HotSpot => write!(f, "JDK 1.2 + HotSpot"),
            Engine::Harissa => write!(f, "Harissa"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_enumerate_and_display() {
        assert_eq!(Engine::ALL.len(), 3);
        for e in Engine::ALL {
            assert!(!e.to_string().is_empty());
        }
        assert_ne!(Engine::Jdk12, Engine::Harissa);
    }
}
