//! The parallel sharded engine as a fourth implementation point.
//!
//! The paper's engine axis (Figures 11a/b, Table 2) varies *dispatch*
//! overhead; this backend varies the *execution schedule* instead: generic
//! incremental checkpointing spread over worker threads by
//! `ickp_core::Checkpointer::checkpoint_parallel`. It emits standard
//! `CheckpointRecord`s — byte-identical to the sequential generic driver —
//! so it slots into the same benchmark tables as the other engines.

use crate::barrier_shadow::{BarrierShadow, BarrierShadowReport};
use crate::sanitize::SanitizerReport;
use ickp_core::{
    CheckpointConfig, CheckpointRecord, Checkpointer, CoreError, MethodTable, ParallelPhases,
    RecordSink, TraversalStats,
};
use ickp_heap::{ClassRegistry, Heap, ObjectId};

/// Generic incremental checkpointing parallelized over `workers` threads.
///
/// # Example
///
/// ```
/// use ickp_backend::ParallelBackend;
/// use ickp_heap::{ClassRegistry, FieldType, Heap};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = ClassRegistry::new();
/// let node = reg.define("Node", None, &[("v", FieldType::Int)])?;
/// let mut heap = Heap::new(reg);
/// let roots: Vec<_> = (0..8).map(|_| heap.alloc(node)).collect::<Result<_, _>>()?;
///
/// let mut backend = ParallelBackend::new(4, heap.registry());
/// let record = backend.checkpoint(&mut heap, &roots)?;
/// assert_eq!(record.stats().objects_recorded, 8);
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct ParallelBackend {
    workers: usize,
    table: MethodTable,
    driver: Checkpointer,
    /// Access-sanitizer verdict of the most recent checkpoint; populated
    /// only when the `sanitize` feature traces the engine.
    last_sanitize: Option<SanitizerReport>,
    /// Differential journal sanitizer; populated (and fed) only when the
    /// `barrier-sanitize` feature arms it.
    shadow: Option<BarrierShadow>,
    /// Shadow verdict of the most recent checkpoint.
    last_barrier: Option<BarrierShadowReport>,
}

impl ParallelBackend {
    /// Builds the backend for a class registry. `workers` of 0 or 1 run a
    /// single worker thread.
    pub fn new(workers: usize, registry: &ClassRegistry) -> ParallelBackend {
        ParallelBackend::with_config(workers, registry, CheckpointConfig::incremental())
    }

    /// [`ParallelBackend::new`] with an explicit driver configuration —
    /// e.g. `CheckpointConfig::incremental().without_journal()` so every
    /// round exercises the shard workers (the scaling harness needs this:
    /// with the journal on, steady-state rounds ride the sequential fast
    /// path), or a different [`ickp_core::ShardBalance`].
    pub fn with_config(
        workers: usize,
        registry: &ClassRegistry,
        config: CheckpointConfig,
    ) -> ParallelBackend {
        ParallelBackend {
            workers,
            table: MethodTable::derive(registry),
            driver: Checkpointer::new(config),
            last_sanitize: None,
            #[cfg(feature = "barrier-sanitize")]
            shadow: Some(BarrierShadow::new(registry)),
            #[cfg(not(feature = "barrier-sanitize"))]
            shadow: None,
            last_barrier: None,
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Aligns the sequence counter with a store that already holds records
    /// from another driver (mirrors `ickp_core::Checkpointer::set_next_seq`),
    /// so engines can be mixed within one contiguous store.
    ///
    /// # Example
    ///
    /// ```
    /// use ickp_backend::ParallelBackend;
    /// use ickp_heap::{ClassRegistry, FieldType, Heap};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut reg = ClassRegistry::new();
    /// let node = reg.define("Node", None, &[("v", FieldType::Int)])?;
    /// let mut heap = Heap::new(reg);
    /// let root = heap.alloc(node)?;
    ///
    /// // A store that already holds records with seq 0 and 1:
    /// let mut backend = ParallelBackend::new(2, heap.registry());
    /// backend.set_next_seq(2);
    /// let record = backend.checkpoint(&mut heap, &[root])?;
    /// assert_eq!(record.seq(), 2);
    /// # Ok(()) }
    /// ```
    pub fn set_next_seq(&mut self, seq: u64) {
        self.driver.set_next_seq(seq);
    }

    /// Takes one incremental checkpoint of `roots` across the worker pool.
    ///
    /// With the `sanitize` cargo feature enabled, the engine additionally
    /// records each shard's object-access set and reconciles them at
    /// merge time; the verdict is available from
    /// [`ParallelBackend::sanitizer_report`] until the next checkpoint.
    /// With `barrier-sanitize`, the record is additionally folded into a
    /// [`BarrierShadow`] and digest-compared against the live heap
    /// ([`ParallelBackend::barrier_report`]). The record bytes are
    /// identical either way.
    ///
    /// # Errors
    ///
    /// Fails like `ickp_core::Checkpointer::checkpoint_parallel`.
    pub fn checkpoint(
        &mut self,
        heap: &mut Heap,
        roots: &[ObjectId],
    ) -> Result<CheckpointRecord, CoreError> {
        #[cfg(feature = "sanitize")]
        let record = {
            let (record, trace) =
                self.driver.checkpoint_parallel_traced(heap, &self.table, roots, self.workers)?;
            self.last_sanitize = Some(SanitizerReport::from_trace(&trace));
            record
        };
        #[cfg(not(feature = "sanitize"))]
        let record = self.driver.checkpoint_parallel(heap, &self.table, roots, self.workers)?;

        if let Some(shadow) = self.shadow.as_mut() {
            let fast_path = self.driver.parallel_phases().map(|p| p.fast_path).unwrap_or(false);
            shadow.absorb(&record)?;
            self.last_barrier = Some(shadow.verify(heap, roots, fast_path)?);
        }
        Ok(record)
    }

    /// The differential sanitizer's verdict on the most recent checkpoint,
    /// or `None` before the first checkpoint or when the `barrier-sanitize`
    /// feature is off (the unarmed backend verifies nothing).
    pub fn barrier_report(&self) -> Option<&BarrierShadowReport> {
        self.last_barrier.as_ref()
    }

    /// The access-sanitizer verdict of the most recent checkpoint, or
    /// `None` before the first checkpoint or when the `sanitize` feature
    /// is off (the untraced engine observes nothing).
    pub fn sanitizer_report(&self) -> Option<&SanitizerReport> {
        self.last_sanitize.as_ref()
    }

    /// Per-shard traversal counters of the most recent checkpoint, in
    /// shard order (see `ickp_core::Checkpointer::shard_stats`). Available
    /// regardless of the `sanitize` feature.
    pub fn shard_stats(&self) -> &[TraversalStats] {
        self.driver.shard_stats()
    }

    /// Wall-clock phase breakdown (plan / traverse / merge) of the most
    /// recent checkpoint (see `ickp_core::Checkpointer::parallel_phases`),
    /// or `None` before the first one.
    pub fn phases(&self) -> Option<&ParallelPhases> {
        self.driver.parallel_phases()
    }

    /// Takes one incremental checkpoint and streams the record straight
    /// into `sink` — a `CheckpointStore`, or a durable store writing to
    /// disk — returning the traversal statistics.
    ///
    /// The record is handed to the sink even if the sink then fails, so
    /// a storage error means the checkpoint was *taken* (flags reset,
    /// sequence advanced) but not *stored*; callers that must not lose
    /// it re-dirty the captured objects and retry.
    ///
    /// # Errors
    ///
    /// Fails like [`ParallelBackend::checkpoint`], or with the sink's
    /// error (for the durable store, [`CoreError::Storage`]).
    pub fn checkpoint_into(
        &mut self,
        heap: &mut Heap,
        roots: &[ObjectId],
        sink: &mut dyn RecordSink,
    ) -> Result<TraversalStats, CoreError> {
        let record = self.checkpoint(heap, roots)?;
        let stats = record.stats();
        sink.append_record(record)?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, GenericBackend};
    use ickp_core::decode;
    use ickp_heap::{FieldType, Value};

    fn world() -> (Heap, Vec<ObjectId>) {
        let mut reg = ClassRegistry::new();
        let node = reg
            .define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let mut heap = Heap::new(reg);
        let mut roots = Vec::new();
        for i in 0..12 {
            let tail = heap.alloc(node).unwrap();
            let head = heap.alloc(node).unwrap();
            heap.set_field(head, 0, Value::Int(i)).unwrap();
            heap.set_field(head, 1, Value::Ref(Some(tail))).unwrap();
            roots.push(head);
        }
        (heap, roots)
    }

    #[test]
    fn parallel_backend_matches_the_sequential_engines() {
        for workers in [1, 2, 4] {
            let (mut heap, roots) = world();
            let (mut ref_heap, ref_roots) = world();
            let mut parallel = ParallelBackend::new(workers, heap.registry());
            let mut reference = GenericBackend::new(Engine::Harissa, ref_heap.registry());
            let a = parallel.checkpoint(&mut heap, &roots).unwrap();
            let b = reference.checkpoint(&mut ref_heap, &ref_roots).unwrap();
            let da = decode(a.bytes(), heap.registry()).unwrap();
            let db = decode(b.bytes(), ref_heap.registry()).unwrap();
            assert_eq!(da.objects, db.objects, "{workers} workers");
            assert_eq!(a.stats(), b.stats(), "{workers} workers");
        }
    }

    #[test]
    fn checkpoint_into_streams_to_a_sink() {
        use ickp_core::CheckpointStore;
        let (mut heap, roots) = world();
        let mut backend = ParallelBackend::new(2, heap.registry());
        let mut store = CheckpointStore::new();
        let full = backend.checkpoint_into(&mut heap, &roots, &mut store).unwrap();
        assert_eq!(full.objects_recorded, 24);
        heap.set_field(roots[3], 0, Value::Int(-1)).unwrap();
        let incr = backend.checkpoint_into(&mut heap, &roots, &mut store).unwrap();
        assert_eq!(incr.objects_recorded, 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.latest().unwrap().seq(), 1);
    }

    #[test]
    fn per_shard_stats_are_surfaced_regardless_of_the_sanitize_feature() {
        let (mut heap, roots) = world();
        let mut backend = ParallelBackend::new(3, heap.registry());
        assert!(backend.shard_stats().is_empty(), "no stats before the first checkpoint");
        let record = backend.checkpoint(&mut heap, &roots).unwrap();
        let shard_stats = backend.shard_stats();
        assert_eq!(shard_stats.len(), 3);
        assert_eq!(
            shard_stats.iter().map(|s| s.objects_recorded).sum::<u64>(),
            record.stats().objects_recorded
        );
        // Shard bodies sum to the stream minus its header and footer.
        let body: u64 = shard_stats.iter().map(|s| s.bytes_written).sum();
        assert!(0 < body && body < record.stats().bytes_written);
        #[cfg(not(feature = "sanitize"))]
        assert!(backend.sanitizer_report().is_none(), "untraced engines observe nothing");
    }

    #[test]
    fn no_journal_config_reruns_shard_workers_every_round() {
        use ickp_core::ShardBalance;
        let (mut heap, roots) = world();
        let config = CheckpointConfig::incremental().without_journal();
        let mut backend = ParallelBackend::with_config(3, heap.registry(), config);
        assert!(backend.phases().is_none());
        backend.checkpoint(&mut heap, &roots).unwrap();
        heap.set_field(roots[1], 0, Value::Int(7)).unwrap();
        backend.checkpoint(&mut heap, &roots).unwrap();
        let phases = *backend.phases().unwrap();
        // Without the journal the second round still runs the shard
        // workers (no fast path), with the plan served from cache.
        assert!(!phases.fast_path);
        assert!(phases.plan_cached);
        assert_eq!(backend.shard_stats().len(), 3);

        // The count-balanced strategy emits the same bytes.
        let (mut heap2, roots2) = world();
        let mut counted = ParallelBackend::with_config(
            3,
            heap2.registry(),
            config.balanced_by(ShardBalance::RootCount),
        );
        let (mut heap3, roots3) = world();
        let mut weighted = ParallelBackend::with_config(3, heap3.registry(), config);
        let a = counted.checkpoint(&mut heap2, &roots2).unwrap();
        let b = weighted.checkpoint(&mut heap3, &roots3).unwrap();
        assert_eq!(a.bytes(), b.bytes());
    }

    #[test]
    fn incrementality_holds_across_rounds() {
        let (mut heap, roots) = world();
        let mut backend = ParallelBackend::new(4, heap.registry());
        assert_eq!(backend.workers(), 4);
        backend.checkpoint(&mut heap, &roots).unwrap();
        heap.set_field(roots[5], 0, Value::Int(99)).unwrap();
        let rec = backend.checkpoint(&mut heap, &roots).unwrap();
        assert_eq!(rec.stats().objects_recorded, 1);
        // Served from the dirty-set journal: one visit, 23 reachable
        // objects pruned without traversal.
        assert_eq!(rec.stats().objects_visited, 1);
        assert_eq!(rec.stats().subtrees_pruned, 23);
        assert_eq!(rec.seq(), 1);
    }
}
