//! Differential journal sanitizer: shadow-verify checkpoints end to end.
//!
//! The `barrier-sanitize` cargo feature arms every backend checkpoint
//! with a [`BarrierShadow`]: a second heap folded purely from the emitted
//! checkpoint records. After each checkpoint, the shadow absorbs the new
//! record and both heaps are digested with
//! [`ickp_core::state_digest`] — a cheap full traversal over the logical
//! state the stream format records. If the write-barrier journal is sound
//! the digests agree by construction; an under-journaling barrier (a
//! byte change the fast path never saw) surfaces as a digest mismatch on
//! the very checkpoint that shipped the incomplete stream, instead of as
//! a silently wrong restore much later.
//!
//! This is the dynamic, whole-system counterpart of the static
//! barrier-coverage pass in `ickp-audit` (`AUD301`–`AUD306`): the audit
//! proves each mutator honours the protocol in isolation; the shadow
//! proves the composed system — barrier, journal, traversal-order cache,
//! stream encoder — preserved the state, record by record.
//!
//! The types are always compiled (so reports can cross feature
//! boundaries in tests and tools); only the per-checkpoint wiring inside
//! the backends is feature-gated.

use ickp_core::{decode, state_digest, CheckpointRecord, CoreError};
use ickp_heap::{ClassRegistry, Heap, ObjectId, StableId, Value};
use std::collections::HashMap;

/// A shadow heap accumulated from checkpoint records alone.
///
/// The shadow can only rebuild state it has seen recorded, so the first
/// checkpoint an armed backend takes must be a full base (every live
/// object dirty — true for a freshly allocated heap, or after
/// [`Heap::mark_all_modified`]); this is the same recovery-line
/// discipline `RestorePolicy::RequireFullBase` enforces for restores.
/// Verifying against a shadow that missed its base fails with
/// [`CoreError::MissingObject`] for the never-recorded roots.
#[derive(Debug)]
pub struct BarrierShadow {
    heap: Heap,
    by_stable: HashMap<StableId, ObjectId>,
    roots: Vec<StableId>,
    records_absorbed: u64,
    last_seq: u64,
    missing_refs: u64,
}

impl BarrierShadow {
    /// Creates an empty shadow sharing the live heap's class registry.
    pub fn new(registry: &ClassRegistry) -> BarrierShadow {
        BarrierShadow {
            heap: Heap::new(registry.clone()),
            by_stable: HashMap::new(),
            roots: Vec::new(),
            records_absorbed: 0,
            last_seq: 0,
            missing_refs: 0,
        }
    }

    /// Folds one checkpoint record into the shadow: decode, upsert every
    /// recorded object by stable id, resolve references.
    ///
    /// Two passes, because an incremental record may reference an object
    /// allocated later in the same record: all fresh objects are allocated
    /// first, then fields are written. A reference to a stable id the
    /// shadow has never seen (possible only if the stream is incomplete —
    /// the very defect being hunted) is folded as `null` and counted in
    /// [`BarrierShadowReport::missing_refs`].
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError`] if the record fails to decode or a
    /// recorded class is unknown to the registry.
    pub fn absorb(&mut self, record: &CheckpointRecord) -> Result<(), CoreError> {
        let decoded = decode(record.bytes(), self.heap.registry())?;
        for obj in &decoded.objects {
            if !self.by_stable.contains_key(&obj.stable) {
                let handle = self.heap.alloc_restored(obj.class, obj.stable, false)?;
                self.by_stable.insert(obj.stable, handle);
            }
        }
        for obj in &decoded.objects {
            let handle = self.by_stable[&obj.stable];
            for (slot, field) in obj.fields.iter().enumerate() {
                use ickp_core::RecordedValue as R;
                let value = match *field {
                    R::Int(v) => Value::Int(v),
                    R::Long(v) => Value::Long(v),
                    R::Double(v) => Value::Double(v),
                    R::Bool(v) => Value::Bool(v),
                    R::Ref(None) => Value::Ref(None),
                    R::Ref(Some(child)) => match self.by_stable.get(&child) {
                        Some(&target) => Value::Ref(Some(target)),
                        None => {
                            self.missing_refs += 1;
                            Value::Ref(None)
                        }
                    },
                };
                // The shadow heap is never itself checkpointed, so its
                // own barrier flags are irrelevant — the restore-path
                // store is the right tool.
                self.heap.set_field_unbarriered(handle, slot, value)?;
            }
        }
        self.roots = decoded.roots;
        self.last_seq = decoded.seq;
        self.records_absorbed += 1;
        Ok(())
    }

    /// Digests the live heap and the shadow and compares.
    ///
    /// `fast_path` annotates the report with which checkpoint path
    /// produced the record being verified (the journal fast path is the
    /// one a broken barrier corrupts; slow-path disagreement implicates
    /// the traversal or encoder instead).
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::Heap`] if either heap's roots dangle —
    /// including a recorded root stable id the shadow never saw.
    pub fn verify(
        &self,
        live: &Heap,
        live_roots: &[ObjectId],
        fast_path: bool,
    ) -> Result<BarrierShadowReport, CoreError> {
        let shadow_roots: Vec<ObjectId> = self
            .roots
            .iter()
            .map(|stable| {
                self.by_stable.get(stable).copied().ok_or(CoreError::MissingObject(*stable))
            })
            .collect::<Result<_, _>>()?;
        Ok(BarrierShadowReport {
            seq: self.last_seq,
            fast_path,
            live_digest: state_digest(live, live_roots)?,
            shadow_digest: state_digest(&self.heap, &shadow_roots)?,
            missing_refs: self.missing_refs,
            records_absorbed: self.records_absorbed,
        })
    }
}

/// The verdict of one shadow verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierShadowReport {
    /// Sequence number of the checkpoint record last absorbed.
    pub seq: u64,
    /// Whether that record came off the journal fast path.
    pub fast_path: bool,
    /// [`ickp_core::state_digest`] of the live heap from the live roots.
    pub live_digest: u64,
    /// The same digest over the shadow heap from the recorded roots.
    pub shadow_digest: u64,
    /// References to never-recorded stable ids seen while absorbing (an
    /// incomplete stream), cumulative.
    pub missing_refs: u64,
    /// Checkpoint records folded into the shadow so far.
    pub records_absorbed: u64,
}

impl BarrierShadowReport {
    /// `true` if the shadow reproduces the live state exactly: digests
    /// agree and every reference resolved.
    pub fn is_clean(&self) -> bool {
        self.live_digest == self.shadow_digest && self.missing_refs == 0
    }

    /// Renders the verdict as one line.
    pub fn render(&self) -> String {
        format!(
            "seq {} ({} path, {} record(s)): live {:016x} vs shadow {:016x}, {} missing ref(s) => {}",
            self.seq,
            if self.fast_path { "journal-fast" } else { "slow" },
            self.records_absorbed,
            self.live_digest,
            self.shadow_digest,
            self.missing_refs,
            if self.is_clean() { "clean" } else { "DIGEST MISMATCH" }
        )
    }
}
