//! The dynamic shard-access sanitizer.
//!
//! The static shard audit (`ickp-audit`'s `audit_shards`) proves, per
//! plan, that no object can be emitted by two shards. This module is the
//! runtime probe backing that proof in real executions: built from the
//! traced parallel engine's [`ShardTrace`], a [`SanitizerReport`]
//! summarizes what each shard actually touched and surfaces any
//! cross-shard overlap — a data race the static pass claimed impossible.
//!
//! The types are always compiled (so overlap detection itself is unit
//! tested everywhere); [`ParallelBackend`](crate::ParallelBackend) only
//! *produces* reports when the `sanitize` cargo feature is enabled, since
//! tracing every access costs memory proportional to the reachable set.

use ickp_core::ShardTrace;
use ickp_heap::ObjectId;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One cross-shard access conflict: `object` was visited by both shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOverlap {
    /// The object touched twice.
    pub object: ObjectId,
    /// The two offending shards, lowest first.
    pub shards: (usize, usize),
}

/// What the access sanitizer observed during one parallel checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerReport {
    /// `true` when the checkpoint rode the journal fast path: no shard
    /// workers ran, so there is nothing to race.
    pub fast_path: bool,
    /// Number of shard workers that ran.
    pub shards: usize,
    /// Objects each shard visited, in shard order.
    pub objects_per_shard: Vec<usize>,
    /// Every object visited by more than one shard. A sound plan makes
    /// this empty; any entry is a data race.
    pub overlaps: Vec<AccessOverlap>,
}

impl SanitizerReport {
    /// Builds the report from a traced parallel checkpoint.
    pub fn from_trace(trace: &ShardTrace) -> SanitizerReport {
        let mut touched: HashMap<ObjectId, usize> = HashMap::new();
        let mut overlaps = Vec::new();
        let mut objects_per_shard = Vec::with_capacity(trace.shards.len());
        for (shard, access) in trace.shards.iter().enumerate() {
            objects_per_shard.push(access.visited.len());
            for &id in &access.visited {
                match touched.get(&id) {
                    Some(&first) if first != shard => {
                        overlaps.push(AccessOverlap { object: id, shards: (first, shard) });
                    }
                    Some(_) => {}
                    None => {
                        touched.insert(id, shard);
                    }
                }
            }
        }
        SanitizerReport {
            fast_path: trace.fast_path,
            shards: trace.shards.len(),
            objects_per_shard,
            overlaps,
        }
    }

    /// `true` when no object was touched by two shards.
    pub fn is_clean(&self) -> bool {
        self.overlaps.is_empty()
    }

    /// Renders the report: one line per overlap plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for overlap in &self.overlaps {
            let _ = writeln!(
                out,
                "overlap: object {:?} visited by shard {} and shard {}",
                overlap.object, overlap.shards.0, overlap.shards.1
            );
        }
        if self.fast_path {
            out.push_str("fast path: no shard workers ran, 0 overlap(s)");
        } else {
            let _ = write!(
                out,
                "{} shard(s), {} object(s) visited, {} overlap(s)",
                self.shards,
                self.objects_per_shard.iter().sum::<usize>(),
                self.overlaps.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_core::{ShardAccess, TraversalStats};
    use ickp_heap::{ClassRegistry, FieldType, Heap};

    fn ids(n: usize) -> Vec<ObjectId> {
        let mut reg = ClassRegistry::new();
        let class = reg.define("N", None, &[("v", FieldType::Int)]).unwrap();
        let mut heap = Heap::new(reg);
        (0..n).map(|_| heap.alloc(class).unwrap()).collect()
    }

    fn access(visited: Vec<ObjectId>) -> ShardAccess {
        ShardAccess { recorded: visited.clone(), visited, stats: TraversalStats::default() }
    }

    #[test]
    fn disjoint_traces_are_clean() {
        let objects = ids(4);
        let trace = ShardTrace {
            fast_path: false,
            shards: vec![access(objects[..2].to_vec()), access(objects[2..].to_vec())],
        };
        let report = SanitizerReport::from_trace(&trace);
        assert!(report.is_clean());
        assert_eq!(report.objects_per_shard, vec![2, 2]);
        assert!(report.render().contains("4 object(s) visited, 0 overlap(s)"));
    }

    #[test]
    fn a_cross_shard_access_is_reported_with_both_shards() {
        let objects = ids(3);
        let trace = ShardTrace {
            fast_path: false,
            shards: vec![
                access(vec![objects[0], objects[1]]),
                access(vec![objects[2]]),
                access(vec![objects[1], objects[2]]),
            ],
        };
        let report = SanitizerReport::from_trace(&trace);
        assert!(!report.is_clean());
        assert_eq!(report.overlaps.len(), 2);
        assert_eq!(report.overlaps[0].shards, (0, 2));
        assert_eq!(report.overlaps[1].shards, (1, 2));
        assert!(report.render().contains("visited by shard 1 and shard 2"));
    }

    #[test]
    fn revisits_within_one_shard_are_not_overlaps() {
        let objects = ids(1);
        let trace =
            ShardTrace { fast_path: false, shards: vec![access(vec![objects[0], objects[0]])] };
        assert!(SanitizerReport::from_trace(&trace).is_clean());
    }

    #[test]
    fn fast_path_traces_are_trivially_clean() {
        let trace = ShardTrace { fast_path: true, shards: Vec::new() };
        let report = SanitizerReport::from_trace(&trace);
        assert!(report.is_clean() && report.fast_path);
        assert!(report.render().contains("fast path"));
    }
}
