//! Specialized checkpointing under each engine.
//!
//! The same compiled [`Plan`] executes three ways:
//!
//! * `Jdk12` — threaded code (one dynamic call per residual instruction)
//!   with class guards on: a weak JIT can neither fuse the instruction
//!   stream nor prove the casts away.
//! * `HotSpot` — threaded for the first
//!   [`Engine::HOTSPOT_WARMUP`] checkpoints, then "compiled"
//!   (the direct interpreter), but the class guards stay: a managed
//!   runtime keeps its checkcasts.
//! * `Harissa` — the direct interpreter with guards elided from the
//!   start: the paper's generated C trusts the specializer.

use crate::engine::Engine;
use crate::threaded::ThreadedPlan;
use ickp_core::{
    CheckpointKind, CheckpointRecord, CoreError, MethodTable, StreamWriter, TraversalStats,
};
use ickp_heap::{Heap, ObjectId, StableId};
use ickp_spec::{GuardMode, Plan};
use std::collections::HashSet;

/// Specialized incremental checkpointing under a selected engine.
#[derive(Debug)]
pub struct SpecializedBackend {
    engine: Engine,
    plan: Plan,
    threaded: ThreadedPlan,
    next_seq: u64,
    /// Key of the last successful run — `(structure_version, roots,
    /// objects the plan visited)` — enabling the empty-dirty-set shortcut:
    /// if nothing in the journal is dirty and the graph shape and roots
    /// are unchanged, the plan's guards would pass exactly as before and
    /// every `TestModified` would skip, so the stream is just the header
    /// and footer and the plan need not run at all.
    last_good: Option<(u64, Vec<ObjectId>, u64)>,
}

impl SpecializedBackend {
    /// Builds the backend around a compiled plan.
    pub fn new(engine: Engine, plan: Plan) -> SpecializedBackend {
        let threaded = ThreadedPlan::compile(&plan);
        SpecializedBackend { engine, plan, threaded, next_seq: 0, last_good: None }
    }

    /// The engine in force.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The plan being executed.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Aligns the sequence counter with a store that already holds records
    /// from another driver (mirrors `ickp_core::Checkpointer::set_next_seq`).
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    /// `true` once HotSpot has "compiled" the plan (after warmup).
    pub fn warmed_up(&self) -> bool {
        match self.engine {
            Engine::HotSpot => self.next_seq >= Engine::HOTSPOT_WARMUP,
            Engine::Harissa => true,
            Engine::Jdk12 => false,
        }
    }

    /// Takes one incremental checkpoint of `roots` under the engine's
    /// execution regime.
    ///
    /// # Errors
    ///
    /// Fails like `ickp_spec::SpecializedCheckpointer::checkpoint`; no
    /// sequence number is consumed on failure.
    pub fn checkpoint(
        &mut self,
        heap: &mut Heap,
        roots: &[ObjectId],
        methods: Option<&MethodTable>,
    ) -> Result<CheckpointRecord, CoreError> {
        let seq = self.next_seq;
        let root_ids: Vec<StableId> =
            roots.iter().map(|&r| heap.stable_id(r)).collect::<Result<_, _>>()?;
        if let Some((version, good_roots, visited)) = &self.last_good {
            if *version == heap.structure_version()
                && good_roots == roots
                && !heap.journal_has_dirty()
            {
                // Every record in a specialized plan sits behind a
                // modified-flag test (unconditionally-frozen nodes emit
                // nothing), so with zero dirty objects the plan would emit
                // an empty stream — which we can write directly.
                let writer = StreamWriter::new(seq, CheckpointKind::Incremental, &root_ids);
                let mut stats = TraversalStats {
                    flag_tests: heap.journal().len() as u64,
                    subtrees_pruned: *visited,
                    ..TraversalStats::default()
                };
                stats.bytes_written = writer.len() as u64;
                let bytes = writer.finish();
                self.next_seq += 1;
                heap.finish_journal_epoch();
                return Ok(CheckpointRecord::from_parts(
                    seq,
                    CheckpointKind::Incremental,
                    root_ids,
                    bytes,
                    stats,
                ));
            }
        }
        let mut writer = StreamWriter::new(seq, CheckpointKind::Incremental, &root_ids);
        let mut stats = TraversalStats::default();

        let (threaded_mode, guard) = match self.engine {
            Engine::Jdk12 => (true, GuardMode::Checked),
            Engine::HotSpot => (!self.warmed_up(), GuardMode::Checked),
            Engine::Harissa => (false, GuardMode::Trusting),
        };

        if threaded_mode {
            let mut regs = vec![None; self.threaded.num_regs() as usize];
            let mut scratch = Vec::new();
            let mut seen = HashSet::new();
            for &root in roots {
                regs.fill(None);
                self.threaded.run(
                    heap,
                    root,
                    &mut writer,
                    guard,
                    methods,
                    &mut regs,
                    &mut scratch,
                    &mut seen,
                    &mut stats,
                )?;
            }
        } else {
            let mut exec = self.plan.executor();
            for &root in roots {
                exec.run(heap, root, &mut writer, guard, methods, &mut stats)?;
            }
        }

        stats.bytes_written = writer.len() as u64;
        let bytes = writer.finish();
        self.next_seq += 1;
        // A completed run is the proof the shortcut needs: guards passed
        // on this shape, so an unchanged shape with nothing dirty would
        // reproduce an empty stream.
        self.last_good = Some((heap.structure_version(), roots.to_vec(), stats.objects_visited));
        heap.finish_journal_epoch();
        Ok(CheckpointRecord::from_parts(seq, CheckpointKind::Incremental, root_ids, bytes, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_core::decode;
    use ickp_heap::{ClassRegistry, FieldType, Value};
    use ickp_spec::{ListPattern, NodePattern, SpecShape, Specializer};

    fn world(n: usize) -> (Heap, Plan, Vec<ObjectId>, Vec<Vec<ObjectId>>) {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
        let shape = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![(0, SpecShape::list(elem, 1, 4, ListPattern::MayModify))],
        );
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        let mut heap = Heap::new(reg);
        let mut roots = Vec::new();
        let mut lists = Vec::new();
        for _ in 0..n {
            let mut ids = Vec::new();
            let mut next = None;
            for _ in 0..4 {
                let e = heap.alloc(elem).unwrap();
                heap.set_field(e, 1, Value::Ref(next)).unwrap();
                next = Some(e);
                ids.push(e);
            }
            ids.reverse();
            let h = heap.alloc(holder).unwrap();
            heap.set_field(h, 0, Value::Ref(Some(ids[0]))).unwrap();
            roots.push(h);
            lists.push(ids);
        }
        heap.reset_all_modified();
        (heap, plan, roots, lists)
    }

    #[test]
    fn all_engines_record_the_same_objects() {
        let mut reference: Option<Vec<_>> = None;
        for engine in Engine::ALL {
            let (mut heap, plan, roots, lists) = world(5);
            heap.set_field(lists[2][3], 0, Value::Int(7)).unwrap();
            heap.set_field(lists[4][0], 0, Value::Int(8)).unwrap();
            let mut backend = SpecializedBackend::new(engine, plan);
            let rec = backend.checkpoint(&mut heap, &roots, None).unwrap();
            let d = decode(rec.bytes(), heap.registry()).unwrap();
            let stables: Vec<_> = d.objects.iter().map(|o| o.stable).collect();
            assert_eq!(d.objects.len(), 2, "{engine}");
            match &reference {
                None => reference = Some(stables),
                Some(r) => assert_eq!(&stables, r, "{engine}"),
            }
        }
    }

    #[test]
    fn hotspot_switches_from_threaded_to_compiled_after_warmup() {
        let (mut heap, plan, roots, lists) = world(3);
        let mut backend = SpecializedBackend::new(Engine::HotSpot, plan);
        assert!(!backend.warmed_up());
        for round in 0..4 {
            heap.set_field(lists[0][0], 0, Value::Int(round)).unwrap();
            backend.checkpoint(&mut heap, &roots, None).unwrap();
        }
        assert!(backend.warmed_up());
        // Jdk12 never warms up; Harissa is always compiled.
        let (_, plan2, _, _) = world(1);
        assert!(!SpecializedBackend::new(Engine::Jdk12, plan2).warmed_up());
        let (_, plan3, _, _) = world(1);
        assert!(SpecializedBackend::new(Engine::Harissa, plan3).warmed_up());
    }

    #[test]
    fn results_are_identical_before_and_after_warmup() {
        let (mut heap, plan, roots, lists) = world(4);
        let mut backend = SpecializedBackend::new(Engine::HotSpot, plan);
        let mut sizes = Vec::new();
        for round in 0..4 {
            heap.set_field(lists[1][2], 0, Value::Int(round)).unwrap();
            let rec = backend.checkpoint(&mut heap, &roots, None).unwrap();
            sizes.push(rec.len_bytes());
        }
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
    }

    #[test]
    fn harissa_trusting_mode_skips_class_guards_but_not_null_checks() {
        let (mut heap, plan, roots, _) = world(1);
        heap.set_field(roots[0], 0, Value::Ref(None)).unwrap();
        let mut backend = SpecializedBackend::new(Engine::Harissa, plan);
        let err = backend.checkpoint(&mut heap, &roots, None).unwrap_err();
        assert!(matches!(err, CoreError::GuardFailed { .. }));
        assert_eq!(backend.next_seq, 0, "failed checkpoint consumes no seq");
    }

    #[test]
    fn dynamic_fallback_plans_run_under_every_engine() {
        use ickp_core::MethodTable;
        use ickp_spec::SpecShape;
        // Holder whose child shape is undeclared: the plan carries a
        // generic fallback, which must work threaded (Jdk12), warmed
        // (HotSpot) and compiled (Harissa).
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
        let shape =
            SpecShape::object(holder, NodePattern::MayModify, vec![(0, SpecShape::Dynamic)]);
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        assert!(plan.has_dynamic());

        for engine in Engine::ALL {
            let mut heap = Heap::new(reg.clone());
            let e2 = heap.alloc(elem).unwrap();
            let e1 = heap.alloc(elem).unwrap();
            heap.set_field(e1, 1, Value::Ref(Some(e2))).unwrap();
            let h = heap.alloc(holder).unwrap();
            heap.set_field(h, 0, Value::Ref(Some(e1))).unwrap();
            heap.reset_all_modified();
            heap.set_field(e2, 0, Value::Int(5)).unwrap();

            let table = MethodTable::derive(heap.registry());
            let mut backend = SpecializedBackend::new(engine, plan.clone());
            let rec = backend.checkpoint(&mut heap, &[h], Some(&table)).unwrap();
            let d = decode(rec.bytes(), heap.registry()).unwrap();
            assert_eq!(d.objects.len(), 1, "{engine}");
            assert!(rec.stats().virtual_calls > 0, "{engine}: fallback dispatched");
        }
    }

    #[test]
    fn plan_accessor_round_trips() {
        let (_, plan, _, _) = world(1);
        let ops = plan.ops().len();
        let backend = SpecializedBackend::new(Engine::Jdk12, plan);
        assert_eq!(backend.plan().ops().len(), ops);
        assert_eq!(backend.engine(), Engine::Jdk12);
    }
}
