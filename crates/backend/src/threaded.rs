//! Threaded-code execution of specialized plans.
//!
//! A non-optimizing JIT (the paper's JDK 1.2) runs the specialized
//! checkpointing *method* but cannot remove its own per-bytecode
//! interpretation overhead. We model that faithfully: every plan
//! instruction becomes one boxed closure, and executing the plan makes
//! one dynamic call per instruction — the specialized program with
//! engine-level indirection still on top.

use ickp_core::{CoreError, MethodTable, StreamWriter, TraversalStats};
use ickp_heap::{Heap, ObjectId, Value};
use ickp_spec::{
    generic_incremental_into, record_with_template, GuardMode, Op, Plan, RecordTemplate,
};
use std::collections::HashSet;

/// Execution context threaded through the closure chain.
pub struct Ctx<'a> {
    /// Virtual registers.
    pub regs: &'a mut [Option<ObjectId>],
    /// The heap being checkpointed.
    pub heap: &'a mut Heap,
    /// The checkpoint stream.
    pub writer: &'a mut StreamWriter,
    /// Counters.
    pub stats: &'a mut TraversalStats,
    /// Method table for generic fallbacks.
    pub methods: Option<&'a MethodTable>,
    /// Guard strictness.
    pub mode: GuardMode,
    /// Scratch for generic fallbacks.
    pub scratch: &'a mut Vec<ObjectId>,
    /// Scratch visited-set for generic fallbacks.
    pub seen: &'a mut HashSet<ObjectId>,
    /// The plan root for this run.
    pub root: ObjectId,
}

type ThreadedOp = Box<dyn Fn(&mut Ctx<'_>) -> Result<u32, CoreError> + Send + Sync>;

/// A plan compiled to threaded code: one boxed closure per instruction.
pub struct ThreadedPlan {
    ops: Vec<ThreadedOp>,
    num_regs: u32,
    has_dynamic: bool,
}

impl std::fmt::Debug for ThreadedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedPlan")
            .field("ops", &self.ops.len())
            .field("num_regs", &self.num_regs)
            .finish()
    }
}

fn reg(ctx: &Ctx<'_>, r: u32) -> Result<ObjectId, CoreError> {
    ctx.regs[r as usize].ok_or_else(|| CoreError::GuardFailed {
        expected: format!("register r{r} bound"),
        found: "unbound register".into(),
    })
}

impl ThreadedPlan {
    /// Compiles a plan into threaded code.
    pub fn compile(plan: &Plan) -> ThreadedPlan {
        let templates: Vec<RecordTemplate> = plan.templates().to_vec();
        let ops = plan
            .ops()
            .iter()
            .map(|op| -> ThreadedOp {
                match op.clone() {
                    Op::LoadRoot { dst, class } => Box::new(move |ctx| {
                        if ctx.mode == GuardMode::Checked {
                            let actual = ctx.heap.class_of(ctx.root)?;
                            if actual != class {
                                return Err(CoreError::GuardFailed {
                                    expected: class.to_string(),
                                    found: actual.to_string(),
                                });
                            }
                        }
                        ctx.regs[dst as usize] = Some(ctx.root);
                        ctx.stats.objects_visited += 1;
                        Ok(0)
                    }),
                    Op::LoadRef { dst, src, slot, class } => Box::new(move |ctx| {
                        let src_obj = reg(ctx, src)?;
                        let child = match ctx.heap.field(src_obj, slot as usize)? {
                            Value::Ref(Some(child)) => child,
                            other => {
                                return Err(CoreError::GuardFailed {
                                    expected: format!("non-null {class} reference"),
                                    found: format!("{other}"),
                                })
                            }
                        };
                        if ctx.mode == GuardMode::Checked {
                            let actual = ctx.heap.class_of(child)?;
                            if actual != class {
                                return Err(CoreError::GuardFailed {
                                    expected: class.to_string(),
                                    found: actual.to_string(),
                                });
                            }
                        }
                        ctx.regs[dst as usize] = Some(child);
                        ctx.stats.refs_followed += 1;
                        ctx.stats.objects_visited += 1;
                        Ok(0)
                    }),
                    Op::LoadDyn { dst, src, slot, skip } => Box::new(move |ctx| {
                        let src_obj = reg(ctx, src)?;
                        match ctx.heap.field(src_obj, slot as usize)? {
                            Value::Ref(Some(child)) => {
                                ctx.regs[dst as usize] = Some(child);
                                ctx.stats.refs_followed += 1;
                                Ok(0)
                            }
                            Value::Ref(None) => Ok(skip),
                            other => Err(CoreError::GuardFailed {
                                expected: "reference field".into(),
                                found: format!("{other}"),
                            }),
                        }
                    }),
                    Op::TestModified { obj, skip } => Box::new(move |ctx| {
                        ctx.stats.flag_tests += 1;
                        let id = reg(ctx, obj)?;
                        Ok(if ctx.heap.is_modified(id)? { 0 } else { skip })
                    }),
                    Op::Record { obj, template } => {
                        let template = templates[template as usize].clone();
                        Box::new(move |ctx| {
                            let id = reg(ctx, obj)?;
                            record_with_template(ctx.heap, id, &template, ctx.writer)?;
                            ctx.heap.reset_modified(id)?;
                            ctx.stats.objects_recorded += 1;
                            Ok(0)
                        })
                    }
                    Op::GuardListEnd { obj, slot } => Box::new(move |ctx| {
                        if ctx.mode == GuardMode::Checked {
                            let tail = reg(ctx, obj)?;
                            if let Value::Ref(Some(_)) = ctx.heap.field(tail, slot as usize)? {
                                return Err(CoreError::GuardFailed {
                                    expected: "end of declared list (null next)".into(),
                                    found: "a further element (list grew)".into(),
                                });
                            }
                        }
                        Ok(0)
                    }),
                    Op::Generic { obj } => Box::new(move |ctx| {
                        let id = reg(ctx, obj)?;
                        let table = ctx.methods.ok_or_else(|| CoreError::GuardFailed {
                            expected: "a method table for generic fallback".into(),
                            found: "none supplied".into(),
                        })?;
                        generic_incremental_into(
                            ctx.heap,
                            table,
                            id,
                            ctx.writer,
                            ctx.stats,
                            ctx.scratch,
                            ctx.seen,
                        )?;
                        Ok(0)
                    }),
                }
            })
            .collect();
        ThreadedPlan { ops, num_regs: plan.num_regs(), has_dynamic: plan.has_dynamic() }
    }

    /// Number of virtual registers required.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// `true` if a generic fallback is present.
    pub fn has_dynamic(&self) -> bool {
        self.has_dynamic
    }

    /// Number of threaded instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` for an empty plan.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Runs the threaded code once for `root`.
    ///
    /// # Errors
    ///
    /// Fails like `ickp_spec::PlanExecutor::run`.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        heap: &mut Heap,
        root: ObjectId,
        writer: &mut StreamWriter,
        mode: GuardMode,
        methods: Option<&MethodTable>,
        regs: &mut [Option<ObjectId>],
        scratch: &mut Vec<ObjectId>,
        seen: &mut HashSet<ObjectId>,
        stats: &mut TraversalStats,
    ) -> Result<(), CoreError> {
        let mut ctx = Ctx { regs, heap, writer, stats, methods, mode, scratch, seen, root };
        let mut pc = 0usize;
        while pc < self.ops.len() {
            // One dynamic call per residual instruction: the threaded-code
            // overhead this executor exists to model.
            let skip = (self.ops[pc])(&mut ctx)?;
            pc += 1 + skip as usize;
        }
        ctx.stats.bytes_written = ctx.writer.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickp_core::{decode, CheckpointKind};
    use ickp_heap::{ClassRegistry, FieldType};
    use ickp_spec::{ListPattern, NodePattern, SpecShape, Specializer};

    fn setup() -> (Heap, Plan, ObjectId, Vec<ObjectId>) {
        let mut reg = ClassRegistry::new();
        let elem = reg
            .define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))])
            .unwrap();
        let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
        let shape = SpecShape::object(
            holder,
            NodePattern::FrozenHere,
            vec![(0, SpecShape::list(elem, 1, 3, ListPattern::MayModify))],
        );
        let plan = Specializer::new(&reg).compile(&shape).unwrap();
        let mut heap = Heap::new(reg);
        let mut ids = Vec::new();
        let mut next = None;
        for _ in 0..3 {
            let e = heap.alloc(elem).unwrap();
            heap.set_field(e, 1, Value::Ref(next)).unwrap();
            next = Some(e);
            ids.push(e);
        }
        ids.reverse();
        let h = heap.alloc(holder).unwrap();
        heap.set_field(h, 0, Value::Ref(Some(ids[0]))).unwrap();
        heap.reset_all_modified();
        (heap, plan, h, ids)
    }

    fn run_threaded(
        heap: &mut Heap,
        plan: &Plan,
        root: ObjectId,
        mode: GuardMode,
    ) -> (Vec<u8>, TraversalStats) {
        let threaded = ThreadedPlan::compile(plan);
        let mut regs = vec![None; threaded.num_regs() as usize];
        let mut scratch = Vec::new();
        let mut seen = HashSet::new();
        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        threaded
            .run(
                heap,
                root,
                &mut writer,
                mode,
                None,
                &mut regs,
                &mut scratch,
                &mut seen,
                &mut stats,
            )
            .unwrap();
        (writer.finish(), stats)
    }

    #[test]
    fn threaded_execution_matches_the_interpreter() {
        let (mut heap, plan, h, ids) = setup();
        heap.set_field(ids[1], 0, Value::Int(5)).unwrap();

        let mut heap2 = heap.clone();
        let (threaded_bytes, threaded_stats) =
            run_threaded(&mut heap, &plan, h, GuardMode::Checked);

        let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
        let mut stats = TraversalStats::default();
        plan.executor()
            .run(&mut heap2, h, &mut writer, GuardMode::Checked, None, &mut stats)
            .unwrap();
        let interp_bytes = writer.finish();

        assert_eq!(threaded_bytes, interp_bytes);
        assert_eq!(threaded_stats, stats);
        let d = decode(&threaded_bytes, heap.registry()).unwrap();
        assert_eq!(d.objects.len(), 1);
    }

    #[test]
    fn guard_modes_behave_like_the_interpreter() {
        let (mut heap, plan, h, _) = setup();
        // Break the shape: null the head.
        heap.set_field(h, 0, Value::Ref(None)).unwrap();
        let threaded = ThreadedPlan::compile(&plan);
        for mode in [GuardMode::Checked, GuardMode::Trusting] {
            let mut regs = vec![None; threaded.num_regs() as usize];
            let mut writer = StreamWriter::new(0, CheckpointKind::Incremental, &[]);
            let mut stats = TraversalStats::default();
            let err = threaded
                .run(
                    &mut heap,
                    h,
                    &mut writer,
                    mode,
                    None,
                    &mut regs,
                    &mut Vec::new(),
                    &mut HashSet::new(),
                    &mut stats,
                )
                .unwrap_err();
            assert!(matches!(err, CoreError::GuardFailed { .. }), "{mode:?}");
        }
    }

    #[test]
    fn compile_preserves_plan_metadata() {
        let (_, plan, _, _) = setup();
        let threaded = ThreadedPlan::compile(&plan);
        assert_eq!(threaded.len(), plan.ops().len());
        assert_eq!(threaded.num_regs(), plan.num_regs());
        assert_eq!(threaded.has_dynamic(), plan.has_dynamic());
        assert!(!threaded.is_empty());
    }
}
