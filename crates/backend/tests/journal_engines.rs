//! Byte-identity of the journal fast path across all four backends.
//!
//! Each backend checkpoints one of a pair of mirrored heaps receiving
//! identical write scripts; the other heap is checkpointed by a
//! journal-free reference driver. Streams must match byte-for-byte every
//! round — including rounds served from the journal, rounds that fall
//! back to traversal after a shape change, and all-clean rounds that hit
//! the specialized backend's empty-dirty shortcut.

use ickp_backend::{Engine, GenericBackend, ParallelBackend, SpecializedBackend};
use ickp_core::{CheckpointConfig, Checkpointer, MethodTable};
use ickp_heap::{ClassRegistry, FieldType, Heap, ObjectId, Value};
use ickp_prng::Prng;
use ickp_spec::{ListPattern, NodePattern, Plan, SpecShape, Specializer};

/// A pair of mirrored list-of-lists heaps. Identical construction order
/// means identical `ObjectId`s, so one id set addresses both.
fn mirrored_world(n: usize) -> (Heap, Heap, Vec<ObjectId>, Vec<Vec<ObjectId>>) {
    let mut reg = ClassRegistry::new();
    let node =
        reg.define("Node", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let build = |reg: &ClassRegistry| {
        let mut heap = Heap::new(reg.clone());
        let mut roots = Vec::new();
        let mut lists = Vec::new();
        for _ in 0..n {
            let mut ids = Vec::new();
            let mut next = None;
            for _ in 0..5 {
                let e = heap.alloc(node).unwrap();
                heap.set_field(e, 1, Value::Ref(next)).unwrap();
                next = Some(e);
                ids.push(e);
            }
            ids.reverse();
            roots.push(ids[0]);
            lists.push(ids);
        }
        (heap, roots, lists)
    };
    let (a, roots_a, lists_a) = build(&reg);
    let (b, roots_b, _) = build(&reg);
    assert_eq!(roots_a, roots_b, "mirrored construction diverged");
    (a, b, roots_a, lists_a)
}

/// Applies the same script of random writes to both mirrors: mostly Int
/// writes (journal-friendly), occasionally a ref rewire that invalidates
/// the cached traversal order and forces the next round to the slow path.
fn mutate(rng: &mut Prng, heaps: [&mut Heap; 2], lists: &[Vec<ObjectId>]) {
    let [a, b] = heaps;
    for _ in 0..1 + rng.index(6) {
        let list = rng.index(lists.len());
        let pos = rng.index(lists[list].len());
        let id = lists[list][pos];
        if rng.ratio(1, 8) {
            let target = if rng.next_bool() { None } else { Some(*rng.choose(&lists[list])) };
            a.set_field(id, 1, Value::Ref(target)).unwrap();
            b.set_field(id, 1, Value::Ref(target)).unwrap();
        } else {
            let v = rng.next_i32();
            a.set_field(id, 0, Value::Int(v)).unwrap();
            b.set_field(id, 0, Value::Int(v)).unwrap();
        }
    }
}

#[test]
fn generic_backends_match_the_reference_stream_every_round() {
    for engine in Engine::ALL {
        let mut rng = Prng::seed_from_u64(0xe9e1_0001);
        let (mut heap, mut ref_heap, roots, lists) = mirrored_world(8);
        let mut backend = GenericBackend::new(engine, heap.registry());
        let table = MethodTable::derive(ref_heap.registry());
        let mut reference = Checkpointer::new(CheckpointConfig::incremental().without_journal());

        let mut journal_rounds = 0u32;
        for round in 0..20 {
            mutate(&mut rng, [&mut heap, &mut ref_heap], &lists);
            let a = backend.checkpoint(&mut heap, &roots).unwrap();
            let b = reference.checkpoint(&mut ref_heap, &table, &roots).unwrap();
            assert_eq!(a.bytes(), b.bytes(), "{engine} round {round}");
            if a.stats().journal_hits > 0 {
                journal_rounds += 1;
            }
        }
        assert!(journal_rounds > 5, "{engine}: only {journal_rounds} journal-served rounds");
    }
}

#[test]
fn parallel_backend_matches_the_reference_stream_every_round() {
    for workers in [1usize, 2, 4] {
        let mut rng = Prng::seed_from_u64(0xe9e1_0002);
        let (mut heap, mut ref_heap, roots, lists) = mirrored_world(10);
        let mut backend = ParallelBackend::new(workers, heap.registry());
        let table = MethodTable::derive(ref_heap.registry());
        let mut reference = Checkpointer::new(CheckpointConfig::incremental().without_journal());

        for round in 0..16 {
            mutate(&mut rng, [&mut heap, &mut ref_heap], &lists);
            let a = backend.checkpoint(&mut heap, &roots).unwrap();
            let b = reference.checkpoint(&mut ref_heap, &table, &roots).unwrap();
            assert_eq!(a.bytes(), b.bytes(), "{workers} workers, round {round}");
        }
    }
}

/// The specialized world from the backend's own test suite: holders over
/// short `MayModify` lists, compilable by the specializer.
fn spec_world(n: usize) -> (Heap, Plan, Vec<ObjectId>, Vec<Vec<ObjectId>>) {
    let mut reg = ClassRegistry::new();
    let elem =
        reg.define("Elem", None, &[("v", FieldType::Int), ("next", FieldType::Ref(None))]).unwrap();
    let holder = reg.define("Holder", None, &[("head", FieldType::Ref(Some(elem)))]).unwrap();
    let shape = SpecShape::object(
        holder,
        NodePattern::FrozenHere,
        vec![(0, SpecShape::list(elem, 1, 4, ListPattern::MayModify))],
    );
    let plan = Specializer::new(&reg).compile(&shape).unwrap();
    let mut heap = Heap::new(reg);
    let mut roots = Vec::new();
    let mut lists = Vec::new();
    for _ in 0..n {
        let mut ids = Vec::new();
        let mut next = None;
        for _ in 0..4 {
            let e = heap.alloc(elem).unwrap();
            heap.set_field(e, 1, Value::Ref(next)).unwrap();
            next = Some(e);
            ids.push(e);
        }
        ids.reverse();
        let h = heap.alloc(holder).unwrap();
        heap.set_field(h, 0, Value::Ref(Some(ids[0]))).unwrap();
        roots.push(h);
        lists.push(ids);
    }
    heap.reset_all_modified();
    (heap, plan, roots, lists)
}

/// All-clean rounds take the empty-dirty shortcut (no plan execution at
/// all) and must still emit exactly the stream a fresh backend — which
/// has no shortcut state and runs the full plan — produces.
#[test]
fn specialized_shortcut_rounds_match_a_fresh_plan_execution() {
    let mut rng = Prng::seed_from_u64(0xe9e1_0003);
    let (mut heap, plan, roots, lists) = spec_world(6);
    let (mut ref_heap, ref_plan, ref_roots, _) = spec_world(6);
    assert_eq!(roots, ref_roots, "mirrored construction diverged");
    let mut backend = SpecializedBackend::new(Engine::Harissa, plan);

    let mut shortcut_rounds = 0u32;
    for round in 0..12 {
        // Half the rounds modify nothing: the long-lived backend may take
        // the shortcut, the fresh one never can.
        if round % 2 == 0 {
            for _ in 0..1 + rng.index(4) {
                let list = rng.index(lists.len());
                let pos = rng.index(lists[list].len());
                let v = rng.next_i32();
                heap.set_field(lists[list][pos], 0, Value::Int(v)).unwrap();
                ref_heap.set_field(lists[list][pos], 0, Value::Int(v)).unwrap();
            }
        }
        let a = backend.checkpoint(&mut heap, &roots, None).unwrap();

        let mut fresh = SpecializedBackend::new(Engine::Harissa, ref_plan.clone());
        fresh.set_next_seq(a.seq());
        let b = fresh.checkpoint(&mut ref_heap, &ref_roots, None).unwrap();

        assert_eq!(a.bytes(), b.bytes(), "round {round}");
        if round % 2 == 1 {
            assert_eq!(a.stats().objects_recorded, 0, "round {round}");
            shortcut_rounds += 1;
        }
    }
    assert!(shortcut_rounds > 0);
}
